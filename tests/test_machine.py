"""End-to-end machine simulator tests."""

import pytest

from repro.core import (
    RunOptions,
    run_layout,
    run_sequential,
    single_core_layout,
)
from repro.lang.errors import ScheduleError
from repro.runtime.machine import MachineConfig, ManyCoreMachine
from repro.schedule.layout import Layout


def quad_layout(compiled):
    mapping = {t: [0] for t in compiled.info.tasks}
    mapping["processText"] = [0, 1, 2, 3]
    return Layout.make(4, mapping)


class TestCorrectness:
    def test_single_core_output_matches_sequential(self, keyword_compiled):
        seq = run_sequential(keyword_compiled, ["5"])
        one = run_layout(keyword_compiled, single_core_layout(keyword_compiled), ["5"])
        assert seq.stdout == one.stdout == "total=10"

    def test_multi_core_output_matches(self, keyword_compiled):
        result = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["5"])
        assert result.stdout == "total=10"

    def test_invocation_counts(self, keyword_compiled):
        result = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["6"])
        assert result.invocations == {
            "startup": 1,
            "processText": 6,
            "mergeIntermediateResult": 6,
        }

    def test_exit_counts(self, keyword_compiled):
        result = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["6"])
        assert result.exit_counts[("mergeIntermediateResult", 1)] == 1
        assert result.exit_counts[("mergeIntermediateResult", 2)] == 5

    def test_deterministic(self, keyword_compiled):
        first = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["6"])
        second = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["6"])
        assert first.total_cycles == second.total_cycles
        assert first.messages == second.messages

    def test_tagged_pipeline_pairs_correctly(self, tagged_compiled):
        # finishsave must receive the Image created for the *same* Drawing.
        mapping = {t: [0] for t in tagged_compiled.info.tasks}
        mapping["compress"] = [1, 2]
        mapping["startsave"] = [1, 2, 3]
        layout = Layout.make(4, mapping)
        result = run_layout(tagged_compiled, layout, ["5"])
        assert result.invocations["finishsave"] == 5

    def test_replicated_tagged_task_completes_all_pairs(self, tagged_compiled):
        # finishsave is replicated; tag hashing must send each Drawing and
        # its Image to the same instance — including the Drawing, whose
        # saveop tag is bound only at startsave's taskexit (regression: the
        # router must hash the *future* tags the pending exit will commit).
        mapping = {t: [0] for t in tagged_compiled.info.tasks}
        mapping["startsave"] = [0, 1, 2]
        mapping["compress"] = [1, 2, 3]
        mapping["finishsave"] = [0, 2, 3]
        layout = Layout.make(4, mapping)
        result = run_layout(tagged_compiled, layout, ["9"])
        assert result.invocations["finishsave"] == 9


class TestPerformanceShape:
    def test_parallel_run_faster(self, keyword_compiled):
        one = run_layout(keyword_compiled, single_core_layout(keyword_compiled), ["8"])
        four = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["8"])
        assert four.total_cycles < one.total_cycles

    def test_messages_only_on_multi_core(self, keyword_compiled):
        one = run_layout(keyword_compiled, single_core_layout(keyword_compiled), ["4"])
        four = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["4"])
        assert one.messages == 0
        assert four.messages > 0

    def test_single_core_busy_nearly_total(self, keyword_compiled):
        from repro.ir import costs

        one = run_layout(keyword_compiled, single_core_layout(keyword_compiled), ["4"])
        # On one core the only non-busy time is runtime initialization.
        assert one.core_busy[0] == pytest.approx(
            one.total_cycles - costs.RUNTIME_INIT_COST, rel=0.05
        )

    def test_bamboo_overhead_over_sequential(self, keyword_compiled):
        # The test fixture's sections are tiny, so per-invocation dispatch
        # overhead is proportionally large; the real benchmark-sized check
        # (paper §5.5 range) lives in test_benchmarks.py.
        seq = run_sequential(keyword_compiled, ["8"])
        one = run_layout(keyword_compiled, single_core_layout(keyword_compiled), ["8"])
        overhead = (one.total_cycles - seq.cycles) / seq.cycles
        assert overhead > 0

    def test_centralized_scheduler_slower_at_scale(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        distributed = run_layout(keyword_compiled, layout, ["12"])
        centralized = run_layout(
            keyword_compiled,
            layout,
            ["12"], options=RunOptions(machine=MachineConfig(centralized_scheduler=True)))
        assert centralized.total_cycles > distributed.total_cycles


class TestAccounting:
    def test_retired_objects(self, keyword_compiled):
        result = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["4"])
        # The StartupObject and all Texts eventually leave the object space;
        # the Results object retires in state {finished}.
        assert result.retired_objects >= 5

    def test_profile_collection(self, keyword_compiled):
        result = run_layout(
            keyword_compiled,
            single_core_layout(keyword_compiled),
            ["4"], options=RunOptions(collect_profile=True))
        profile = result.profile
        assert profile is not None
        assert profile.invocations("processText") == 4
        assert profile.exit_probability("mergeIntermediateResult", 1) == pytest.approx(
            0.25
        )
        assert profile.run_cycles == result.total_cycles

    def test_busy_fraction_bounded(self, keyword_compiled):
        result = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["8"])
        assert 0 < result.busy_fraction() <= 1


class TestLimits:
    def test_invocation_budget_enforced(self, keyword_compiled):
        config = MachineConfig(max_invocations=2)
        with pytest.raises(ScheduleError):
            run_layout(
                keyword_compiled,
                single_core_layout(keyword_compiled),
                ["8"], options=RunOptions(machine=config))

    def test_invalid_layout_rejected_at_construction(self, keyword_compiled):
        layout = Layout.make(1, {"startup": [0]})
        with pytest.raises(ScheduleError):
            ManyCoreMachine(keyword_compiled, layout)


class TestTopology:
    def _chain_layouts(self, keyword_compiled):
        # One worker on the far corner: every Text makes the round trip
        # core 0 -> core 15 -> core 0, so hop latency sits on the critical
        # path (a single section leaves nothing to hide it behind).
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [15]
        near = Layout.make(16, mapping, mesh_width=4)   # 4x4: 6 hops
        far = Layout.make(16, mapping, mesh_width=16)   # 1x16: 15 hops
        return near, far

    def test_wider_mesh_costs_more_cycles(self, keyword_compiled):
        near, far = self._chain_layouts(keyword_compiled)
        near_result = run_layout(keyword_compiled, near, ["1"])
        far_result = run_layout(keyword_compiled, far, ["1"])
        assert near_result.stdout == far_result.stdout
        assert far_result.total_cycles > near_result.total_cycles

    def test_hop_latency_can_hide_behind_work(self, keyword_compiled):
        # With many sections the merge core stays busy while transfers are
        # in flight: identical totals despite different distances.
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [0, 13, 14, 15]
        near = Layout.make(16, mapping, mesh_width=4)
        far = Layout.make(16, mapping, mesh_width=16)
        near_result = run_layout(keyword_compiled, near, ["8"])
        far_result = run_layout(keyword_compiled, far, ["8"])
        assert near_result.total_cycles == far_result.total_cycles

    def test_message_count_independent_of_mesh(self, keyword_compiled):
        near, far = self._chain_layouts(keyword_compiled)
        assert (
            run_layout(keyword_compiled, near, ["3"]).messages
            == run_layout(keyword_compiled, far, ["3"]).messages
        )
