"""Fault injection and transactional task recovery (repro.fault)."""

import pytest

from repro.core import RunOptions, run_layout, run_sequential
from repro.fault import (
    CoreCrash,
    FaultError,
    FaultPlan,
    LinkDegrade,
    TransientStall,
    parse_fault_spec,
)
from repro.fault.recovery import restore_snapshot, snapshot_objects
from repro.runtime.machine import MachineConfig
from repro.runtime.objects import BArray, Heap
from repro.runtime.scheduler import LockManager
from repro.schedule.layout import Layout
from repro.schedule.mapping import with_core_failed


def quad_layout(compiled):
    mapping = {t: [0] for t in compiled.info.tasks}
    mapping["processText"] = [0, 1, 2, 3]
    return Layout.make(4, mapping)


def merge_on_3_layout(compiled):
    """mergeIntermediateResult isolated on core 3 — crashing core 3 forces
    the layout rebuild to reassign a sole-instance task to a survivor."""
    mapping = {t: [0] for t in compiled.info.tasks}
    mapping["processText"] = [1, 2, 3]
    mapping["mergeIntermediateResult"] = [3]
    return Layout.make(4, mapping)


#: Crash cycle that reliably lands while a worker core is mid-invocation on
#: the quad layout with 12 sections (the machine is deterministic, so this
#: is stable; see the in-flight assertion in test_crash_rolls_back_inflight).
MIDRUN_CYCLE = 2000


class TestPlan:
    def test_events_sorted_by_cycle(self):
        plan = FaultPlan.make(
            [CoreCrash(core=1, cycle=500), LinkDegrade(cycle=100, multiplier=2.0)]
        )
        assert plan.events[0].cycle == 100

    def test_single_crash(self):
        plan = FaultPlan.single_crash(2, 1000)
        assert plan.crash_cores() == [2]
        assert not plan.is_empty()

    def test_random_plan_deterministic_and_leaves_survivor(self):
        a = FaultPlan.random_plan(seed=7, num_cores=4, horizon=10_000, crashes=8)
        b = FaultPlan.random_plan(seed=7, num_cores=4, horizon=10_000, crashes=8)
        assert a == b
        assert len(a.crash_cores()) == 3  # never crashes every core

    def test_rejects_bad_events(self):
        with pytest.raises(FaultError):
            FaultPlan.make([CoreCrash(core=0, cycle=-1)])
        with pytest.raises(FaultError):
            FaultPlan.make([TransientStall(core=0, cycle=5, duration=0)])
        with pytest.raises(FaultError):
            FaultPlan.make([LinkDegrade(cycle=5, multiplier=0.0)])

    def test_parse_specs(self):
        assert parse_fault_spec("core=3@1500") == CoreCrash(core=3, cycle=1500)
        assert parse_fault_spec("stall=1@200:50") == TransientStall(
            core=1, cycle=200, duration=50
        )
        assert parse_fault_spec("link=2.5@900") == LinkDegrade(
            cycle=900, multiplier=2.5
        )
        with pytest.raises(FaultError):
            parse_fault_spec("core=1")
        with pytest.raises(FaultError):
            parse_fault_spec("meteor=1@5")

    def test_describe_lists_events(self):
        plan = FaultPlan.parse(["core=1@500", "stall=0@100:20", "link=2@50"])
        text = plan.describe()
        assert "crash core 1" in text
        assert "stall core 0" in text
        assert "link degrade" in text


class TestZeroOverhead:
    def test_none_plan_is_bit_identical(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        plain = run_layout(keyword_compiled, layout, ["12"])
        gated = run_layout(
            keyword_compiled,
            layout,
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=None, validate=True)))
        assert plain.total_cycles == gated.total_cycles
        assert plain.messages == gated.messages
        assert plain.invocations == gated.invocations
        assert plain.stdout == gated.stdout
        assert gated.recovery is None

    def test_empty_plan_is_bit_identical(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        plain = run_layout(keyword_compiled, layout, ["12"])
        gated = run_layout(
            keyword_compiled,
            layout,
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=FaultPlan.make([]))))
        assert plain.total_cycles == gated.total_cycles
        assert gated.recovery is None


class TestCrashRecovery:
    def test_crash_rolls_back_inflight_and_completes(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        seq = run_sequential(keyword_compiled, ["12"])
        plan = FaultPlan.single_crash(1, MIDRUN_CYCLE)
        result = run_layout(
            keyword_compiled,
            layout,
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
        rec = result.recovery
        assert rec is not None
        assert rec.crashes == 1 and rec.dead_cores == [1]
        # The crash landed mid-invocation: the in-flight task rolled back,
        # was re-routed, and re-executed on a survivor.
        assert rec.tasks_replayed > 0
        assert rec.commits_dropped == rec.tasks_replayed
        assert rec.locks_reclaimed > 0
        assert rec.objects_migrated > 0
        assert rec.downtime_cycles > 0
        # Exactly-once: every logical invocation committed once — the counts
        # match a fault-free run, and the final answer is correct.
        assert result.invocations == {
            "startup": 1,
            "processText": 12,
            "mergeIntermediateResult": 12,
        }
        assert rec.commits_applied == 25
        assert rec.exactly_once()
        assert result.stdout == seq.stdout == "total=24"

    def test_final_flag_states_correct(self, keyword_compiled):
        from repro.runtime.machine import ManyCoreMachine

        plan = FaultPlan.single_crash(1, MIDRUN_CYCLE)
        machine = ManyCoreMachine(
            keyword_compiled,
            quad_layout(keyword_compiled),
            config=MachineConfig(fault_plan=plan, validate=True),
        )
        result = machine.run(["12"])
        assert result.stdout == "total=24"
        results_objs = [
            o for o in machine.heap.objects.values() if o.class_name == "Results"
        ]
        assert len(results_objs) == 1
        assert results_objs[0].flags == {"finished"}
        for obj in machine.heap.objects.values():
            if obj.class_name == "Text":
                assert "process" not in obj.flags and "submit" not in obj.flags

    def test_crash_of_sole_task_host_reassigns_task(self, keyword_compiled):
        layout = merge_on_3_layout(keyword_compiled)
        for cycle in (1500, 2000, 2500, 3000):
            plan = FaultPlan.single_crash(3, cycle)
            result = run_layout(
                keyword_compiled,
                layout,
                ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
            assert result.stdout == "total=24"
            assert result.recovery.crashes == 1

    def test_double_crash(self, keyword_compiled):
        plan = FaultPlan.make(
            [CoreCrash(core=1, cycle=1600), CoreCrash(core=2, cycle=2100)]
        )
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
        assert result.stdout == "total=24"
        assert result.recovery.dead_cores == [1, 2]
        assert result.recovery.exactly_once()

    def test_crash_before_any_work_is_harmless(self, keyword_compiled):
        plan = FaultPlan.single_crash(3, 1)
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
        assert result.stdout == "total=24"
        assert result.recovery.tasks_replayed == 0

    def test_crash_after_quiescence_is_harmless(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        plan = FaultPlan.single_crash(1, base.total_cycles * 2)
        result = run_layout(
            keyword_compiled,
            layout,
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
        assert result.stdout == base.stdout
        assert result.invocations == base.invocations

    def test_crashing_every_core_rejected(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        plan = FaultPlan.make([CoreCrash(core=c, cycle=100) for c in range(4)])
        with pytest.raises(FaultError):
            run_layout(
                keyword_compiled,
                layout,
                ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan)))

    def test_crash_of_unknown_core_rejected(self, keyword_compiled):
        plan = FaultPlan.single_crash(99, 100)
        with pytest.raises(FaultError):
            run_layout(
                keyword_compiled,
                quad_layout(keyword_compiled),
                ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan)))

    def test_centralized_scheduler_unsupported(self, keyword_compiled):
        config = MachineConfig(
            centralized_scheduler=True, fault_plan=FaultPlan.single_crash(1, 100)
        )
        with pytest.raises(FaultError):
            run_layout(
                keyword_compiled, quad_layout(keyword_compiled), ["12"], options=RunOptions(machine=config))

    def test_tagged_pipeline_survives_crash(self, tagged_compiled):
        # Tag-hashed routing must still pair each Drawing with its Image
        # after the degraded routing table replaces the dead instance.
        mapping = {t: [0] for t in tagged_compiled.info.tasks}
        mapping["compress"] = [1, 2]
        mapping["startsave"] = [1, 2, 3]
        layout = Layout.make(4, mapping)
        base = run_layout(tagged_compiled, layout, ["5"])
        plan = FaultPlan.single_crash(2, base.total_cycles // 2)
        result = run_layout(
            tagged_compiled,
            layout,
            ["5"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
        assert result.invocations["finishsave"] == 5
        assert result.recovery.exactly_once()


class TestStallAndLink:
    def test_stall_delays_completion(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        plan = FaultPlan.make([TransientStall(core=1, cycle=1500, duration=50_000)])
        result = run_layout(
            keyword_compiled,
            layout,
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
        assert result.stdout == base.stdout
        assert result.total_cycles > base.total_cycles
        assert result.recovery.stalls == 1
        assert result.recovery.stall_cycles == 50_000

    def _remote_worker_layout(self, compiled):
        # One worker on the far corner of a 1x16 mesh: every Text makes the
        # 15-hop round trip, so hop latency sits on the critical path (the
        # same construction as test_machine.TestTopology).
        mapping = {t: [0] for t in compiled.info.tasks}
        mapping["processText"] = [15]
        return Layout.make(16, mapping, mesh_width=16)

    def test_link_degrade_slows_messages(self, keyword_compiled):
        layout = self._remote_worker_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["1"])
        plan = FaultPlan.make([LinkDegrade(cycle=0, multiplier=50.0)])
        result = run_layout(
            keyword_compiled,
            layout,
            ["1"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
        assert result.stdout == base.stdout
        assert result.total_cycles > base.total_cycles
        assert result.messages == base.messages  # slower, not fewer

    def test_link_restore(self, keyword_compiled):
        layout = self._remote_worker_layout(keyword_compiled)
        degraded = FaultPlan.make([LinkDegrade(cycle=0, multiplier=50.0)])
        restored = FaultPlan.make(
            [
                LinkDegrade(cycle=0, multiplier=50.0),
                LinkDegrade(cycle=2000, multiplier=1.0),
            ]
        )
        slow = run_layout(
            keyword_compiled, layout, ["4"], options=RunOptions(machine=MachineConfig(fault_plan=degraded)))
        fast = run_layout(
            keyword_compiled, layout, ["4"], options=RunOptions(machine=MachineConfig(fault_plan=restored)))
        assert fast.total_cycles < slow.total_cycles


class TestPrimitives:
    def test_lock_manager_release_core(self):
        heap = Heap()
        a = heap.new_object("A", 0)
        b = heap.new_object("B", 0)
        locks = LockManager()
        assert locks.try_lock_all([a], core=1)
        assert locks.try_lock_all([b], core=2)
        assert not locks.try_lock_all([a], core=2)
        assert locks.release_core(1) == 1
        assert locks.try_lock_all([a], core=2)
        assert locks.held_groups()  # core 2 still holds both
        assert locks.release_core(2) == 2
        assert not locks.held_groups()

    def test_snapshot_restores_fields_and_arrays(self):
        heap = Heap()
        obj = heap.new_object("A", 2)
        arr = heap.new_array("int", 3, fill=0)
        obj.fields[0] = arr
        obj.fields[1] = 7
        snap = snapshot_objects([obj])
        obj.fields[1] = 99
        arr.values[2] = 42
        restore_snapshot(snap)
        assert obj.fields[1] == 7
        assert arr.values == [0, 0, 0]
        assert obj.fields[0] is arr  # identity preserved, contents restored

    def test_snapshot_follows_object_references(self):
        heap = Heap()
        outer = heap.new_object("A", 1)
        inner = heap.new_object("B", 1)
        outer.fields[0] = inner
        inner.fields[0] = "x"
        snap = snapshot_objects([outer])
        inner.fields[0] = "mutated"
        restore_snapshot(snap)
        assert inner.fields[0] == "x"

    def test_with_core_failed_moves_to_nearest_survivor(self):
        layout = Layout.make(
            4, {"a": [0, 3], "b": [3], "c": [1]}, mesh_width=2
        )
        degraded = with_core_failed(layout, 3)
        assert 3 not in degraded.cores_used()
        # core 3's nearest survivors at distance 1 are cores 1 and 2 (only
        # 1 is used); 'b' moves there, 'a' keeps its surviving replica
        assert degraded.cores_of("b") == (1,)
        assert degraded.cores_of("a") == (0, 1)

    def test_with_core_failed_requires_survivor(self):
        layout = Layout.make(1, {"a": [0]})
        with pytest.raises(Exception):
            with_core_failed(layout, 0)

    def test_with_core_failed_preserves_topology(self):
        layout = Layout.make(4, {"a": [0, 3], "b": [1]}, topology="torus")
        degraded = with_core_failed(layout, 3)
        assert degraded.topology == "torus"


class TestValidateFlag:
    def test_validate_passes_on_clean_runs(self, keyword_compiled):
        for args in (["1"], ["8"]):
            run_layout(
                keyword_compiled,
                quad_layout(keyword_compiled),
                args, options=RunOptions(machine=MachineConfig(validate=True)))

    def test_validate_detects_leaked_lock(self, keyword_compiled):
        from repro.lang.errors import ScheduleError
        from repro.runtime.machine import ManyCoreMachine

        machine = ManyCoreMachine(
            keyword_compiled,
            quad_layout(keyword_compiled),
            config=MachineConfig(validate=True),
        )
        # Simulate a buggy runtime that forgets to release a lock.
        leaked = machine.heap.new_object("Text", 0)
        machine.locks.try_lock_all([leaked], core=0)
        with pytest.raises(ScheduleError, match="termination invariant"):
            machine.run(["2"])


class TestAdaptiveDegrade:
    def test_degrade_clamps_layout_and_reoptimizes(self, keyword_compiled):
        from repro.core.adaptive import AdaptiveExecutable
        from repro.schedule.anneal import AnnealConfig

        config = AnnealConfig(
            initial_candidates=2, max_iterations=2, max_evaluations=12, patience=1
        )
        executable = AdaptiveExecutable(
            keyword_compiled, num_cores=4, profile_every=1, config=config
        )
        executable.run(["6"])  # profiled run adopts a multi-core layout
        executable.layout = quad_layout(keyword_compiled)
        executable.degrade([1])
        assert 1 not in executable.layout.cores_used()
        result = executable.run(["6"])  # still runs, and re-optimizes
        assert result.stdout == "total=12"


class TestCli:
    def test_inject_fault_flag(self, capsys, keyword_compiled):
        import os
        import tempfile

        from repro.cli import main
        from conftest import KEYWORD_SOURCE

        with tempfile.NamedTemporaryFile(
            "w", suffix=".bam", delete=False
        ) as handle:
            handle.write(KEYWORD_SOURCE)
            path = handle.name
        try:
            code = main(
                [
                    "run",
                    path,
                    "6",
                    "--cores",
                    "4",
                    "--validate",
                    "--inject-fault",
                    "core=1@2000",
                ]
            )
        finally:
            os.unlink(path)
        captured = capsys.readouterr()
        assert code == 0
        assert "total=12" in captured.out
        assert "recovery:" in captured.err

    def test_bad_fault_spec_reports_error(self, capsys, keyword_compiled):
        import os
        import tempfile

        from repro.cli import main
        from conftest import KEYWORD_SOURCE

        with tempfile.NamedTemporaryFile(
            "w", suffix=".bam", delete=False
        ) as handle:
            handle.write(KEYWORD_SOURCE)
            path = handle.name
        try:
            code = main(
                ["run", path, "6", "--cores", "1", "--inject-fault", "bogus"]
            )
        finally:
            os.unlink(path)
        assert code == 1
        assert "bad fault spec" in capsys.readouterr().err


class TestFaultEdgeCases:
    """PR-1 machinery corners the original suite left uncovered."""

    def test_stall_spanning_dispatch_commit_boundary(self, keyword_compiled):
        # MIDRUN_CYCLE lands while core 1 is mid-invocation (asserted by
        # test_crash_rolls_back_inflight_and_completes), so this stall
        # begins after dispatch and ends after the scheduled completion:
        # the commit must still publish exactly once, on time, and the
        # stall may only push back *future* dispatches.
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        plan = FaultPlan.make(
            [TransientStall(core=1, cycle=MIDRUN_CYCLE, duration=3_000)]
        )
        config = MachineConfig(fault_plan=plan, validate=True, record_trace=True)
        first = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        second = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        assert first.stdout == base.stdout
        assert first.invocations == base.invocations
        assert first.recovery.stalls == 1
        assert first.recovery.exactly_once()
        assert first.total_cycles >= base.total_cycles
        # The in-flight invocation still committed (no rollback on stall).
        assert first.recovery.commits_dropped == 0
        # Deterministic across runs, boundary included.
        assert first.trace == second.trace
        assert first.total_cycles == second.total_cycles

    def test_link_restore_before_first_message_is_bit_identical(
        self, keyword_compiled
    ):
        # Degrade-then-restore entirely inside the runtime-init window
        # (before any inter-core message is priced): the run must be
        # bit-identical to fault-free, not merely close.
        from repro.ir import costs

        assert costs.RUNTIME_INIT_COST > 2  # the premise of this test
        layout = quad_layout(keyword_compiled)
        base = run_layout(
            keyword_compiled, layout, ["12"], options=RunOptions(machine=MachineConfig(record_trace=True)))
        plan = FaultPlan.make(
            [
                LinkDegrade(cycle=1, multiplier=9.0),
                LinkDegrade(cycle=2, multiplier=1.0),
            ]
        )
        result = run_layout(
            keyword_compiled, layout, ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True, record_trace=True)))
        assert result.recovery.link_events == 2
        assert result.total_cycles == base.total_cycles
        assert result.messages == base.messages
        assert result.core_busy == base.core_busy
        assert result.stdout == base.stdout
        assert result.trace == base.trace

    def test_link_restore_mid_run_recovers_speed(self, keyword_compiled):
        # Restore to exactly 1.0 mid-run: the remaining messages are priced
        # at nominal cost, so the run beats the never-restored one but
        # cannot beat fault-free.
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [15]
        layout = Layout.make(16, mapping, mesh_width=16)
        base = run_layout(keyword_compiled, layout, ["4"])
        degraded_forever = run_layout(
            keyword_compiled, layout, ["4"], options=RunOptions(machine=MachineConfig(
                fault_plan=FaultPlan.make([LinkDegrade(cycle=0, multiplier=40.0)])
            )))
        restored = run_layout(
            keyword_compiled, layout, ["4"], options=RunOptions(machine=MachineConfig(
                fault_plan=FaultPlan.make(
                    [
                        LinkDegrade(cycle=0, multiplier=40.0),
                        LinkDegrade(cycle=3_000, multiplier=1.0),
                    ]
                ),
                validate=True,
            )))
        assert base.total_cycles <= restored.total_cycles < degraded_forever.total_cycles
        assert restored.stdout == base.stdout
        assert restored.recovery.link_events == 2

    def test_two_crashes_same_cycle(self, keyword_compiled):
        # Same-cycle crashes resolve in deterministic core order; both
        # cores' work migrates to the two survivors and every logical task
        # still commits exactly once.
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        plan = FaultPlan.make(
            [
                CoreCrash(core=2, cycle=MIDRUN_CYCLE),
                CoreCrash(core=1, cycle=MIDRUN_CYCLE),
            ]
        )
        # The plan layer orders the tie by core number.
        assert plan.crash_cores() == [1, 2]
        config = MachineConfig(fault_plan=plan, validate=True, record_trace=True)
        first = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        second = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        rec = first.recovery
        assert rec.crashes == 2
        assert rec.dead_cores == [1, 2]
        assert first.core_death_cycles == {1: MIDRUN_CYCLE, 2: MIDRUN_CYCLE}
        assert first.stdout == base.stdout == "total=24"
        assert first.invocations == base.invocations
        assert rec.exactly_once()
        assert first.trace == second.trace
        # Dead cores stop accruing busy cycles at the crash.
        assert first.core_busy[1] <= MIDRUN_CYCLE
        assert first.core_busy[2] <= MIDRUN_CYCLE
