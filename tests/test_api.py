"""Public API and synthesis pipeline tests."""

import pytest

from repro.core import (
    SynthesisOptions,
    annotated_cstg,
    compile_program,
    profile_program,
    run_layout,
    run_sequential,
    single_core_layout,
    synthesize_layout,
)
from repro.lang.errors import SemanticError
from repro.schedule.anneal import AnnealConfig

from conftest import KEYWORD_SOURCE


class TestCompile:
    def test_compile_produces_all_artifacts(self, keyword_compiled):
        assert keyword_compiled.info is not None
        assert keyword_compiled.ir_program.tasks
        assert keyword_compiled.astgs
        assert keyword_compiled.cstg.nodes
        assert keyword_compiled.lock_plan.tasks

    def test_task_names(self, keyword_compiled):
        assert keyword_compiled.task_names() == [
            "mergeIntermediateResult",
            "processText",
            "startup",
        ]

    def test_compile_errors_propagate(self):
        with pytest.raises(SemanticError):
            compile_program("class A { int x; int x; }")


class TestSequential:
    def test_run_sequential(self, keyword_compiled):
        result = run_sequential(keyword_compiled, ["3"])
        assert result.stdout == "total=6"
        assert result.cycles > 0

    def test_missing_entry_class(self, keyword_compiled):
        with pytest.raises(SemanticError):
            run_sequential(keyword_compiled, ["1"], entry_class="Nope")

    def test_missing_entry_method(self, keyword_compiled):
        with pytest.raises(SemanticError):
            run_sequential(keyword_compiled, ["1"], entry_method="nope")


class TestProfiling:
    def test_profile_program_defaults_to_single_core(self, keyword_compiled):
        profile = profile_program(keyword_compiled, ["4"])
        assert profile.invocations("processText") == 4

    def test_annotated_cstg_is_fresh(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        assert cstg is not keyword_compiled.cstg
        assert any(e.avg_time > 0 for e in cstg.transitions)


class TestSynthesis:
    def test_synthesize_layout_report(self, keyword_compiled, keyword_profile):
        config = AnnealConfig(
            initial_candidates=4, max_iterations=6, max_evaluations=60, patience=1,
            continue_probability=0.1,
        )
        report = synthesize_layout(
            keyword_compiled, keyword_profile, num_cores=4, options=SynthesisOptions(seed=1, anneal=config))
        assert report.estimated_cycles > 0
        assert report.evaluations > 0
        assert report.wall_seconds >= 0
        assert report.group_graph.groups
        assert report.suggestions
        report.layout.validate(keyword_compiled.info)

    def test_synthesized_layout_runs_correctly(
        self, keyword_compiled, keyword_profile
    ):
        config = AnnealConfig(
            initial_candidates=4, max_iterations=6, max_evaluations=60, patience=1,
            continue_probability=0.1,
        )
        report = synthesize_layout(
            keyword_compiled, keyword_profile, num_cores=4, options=SynthesisOptions(seed=1, anneal=config))
        result = run_layout(keyword_compiled, report.layout, ["6"])
        single = run_layout(
            keyword_compiled, single_core_layout(keyword_compiled), ["6"]
        )
        assert result.stdout == single.stdout
        assert result.total_cycles <= single.total_cycles


class TestMultiCoreProfiling:
    def test_profile_from_parallel_run_drives_synthesis(
        self, keyword_compiled
    ):
        # §4.3.1: Bamboo supports single- OR many-core profiling versions.
        from repro.schedule.anneal import AnnealConfig
        from repro.schedule.layout import Layout

        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [0, 1]
        parallel_layout = Layout.make(2, mapping)
        profile = profile_program(
            keyword_compiled, ["6"], layout=parallel_layout
        )
        assert profile.invocations("processText") == 6
        config = AnnealConfig(
            initial_candidates=3, max_iterations=5, max_evaluations=40,
            patience=1, continue_probability=0.1,
        )
        report = synthesize_layout(
            keyword_compiled, profile, num_cores=4, options=SynthesisOptions(seed=2, anneal=config))
        result = run_layout(keyword_compiled, report.layout, ["6"])
        assert result.stdout == "total=12"
