"""Incremental delta re-simulation and the simulation-session API.

The load-bearing contract: **delta-on is bit-identical to delta-off** —
a :class:`DeltaMove` hint may only change wall clock, never a result.
Enforced here at three levels:

* per-benchmark synthesis trajectories (``delta_sim=True`` vs ``False``),
* individual resumed traces against from-scratch simulations
  (event-by-event, on a configuration known to actually resume),
* delta × ``early_cutoff`` interaction (bound cache entries stay bound).

Plus the session API itself (facade argument validation, store LRU,
checkpointed warm sessions) and the legacy ``estimate_layout`` /
``SchedulingSimulator`` shims — exact old semantics behind a
``DeprecationWarning``.
"""

import pytest

from repro.bench import get_spec, load_benchmark
from repro.core import SynthesisOptions, profile_program, synthesize_layout
from repro.lang.errors import ScheduleError
from repro.schedule.anneal import AnnealConfig
from repro.schedule.layout import Layout
from repro.schedule.mapping import with_instance_moved
from repro.schedule.simulator import (
    DeltaMove,
    SchedulingSimulator,
    SessionStore,
    SimSession,
    estimate_layout,
    simulate,
)

from test_search import SMALL_ARGS, SMALL_ANNEAL, report_fingerprint, small_profile


def small_synthesis(name, anneal=None, **options_kw):
    compiled = load_benchmark(name)
    profile = small_profile(name)
    options = SynthesisOptions(
        anneal=anneal or AnnealConfig(seed=7, **SMALL_ANNEAL),
        hints=get_spec(name).hints,
        **options_kw,
    )
    return synthesize_layout(compiled, profile, 4, options=options)


def trace_data(result):
    """A SimResult's complete observable content, as comparable data."""
    return (
        result.total_cycles,
        result.finished,
        result.pruned,
        repr(result.utilization),
        sorted(result.core_busy.items()),
        sorted(result.invocations.items()),
        [
            (e.event_id, e.task, e.core, e.start, e.end, e.exit_id,
             e.data_ready, tuple(e.param_objects), tuple(e.inputs),
             tuple(e.produced))
            for e in result.trace
        ],
    )


@pytest.fixture(scope="module")
def tracking_context():
    compiled = load_benchmark("Tracking")
    profile = profile_program(compiled, SMALL_ARGS["Tracking"])
    return compiled, profile


class TestDeltaIdentity:
    @pytest.mark.parametrize("name", sorted(SMALL_ARGS))
    def test_synthesis_identical_with_and_without_delta(self, name):
        on = small_synthesis(name, delta_sim=True)
        off = small_synthesis(name, delta_sim=False)
        assert report_fingerprint(on) == report_fingerprint(off)

    def test_resumed_traces_equal_full_simulations(self, tracking_context):
        """On a configuration that provably resumes, every child's trace
        is event-for-event identical to a from-scratch simulation."""
        compiled, profile = tracking_context
        session = SimSession(
            compiled, profile, snapshot_interval=32, min_resume_events=16
        )
        parent = Layout.make(4, {t: [0] for t in compiled.info.tasks})
        session.simulate(parent)
        parent_fp = session.fingerprint(parent)
        for task in compiled.info.tasks:
            try:
                child = with_instance_moved(parent, task, 0, 1)
                child.validate(compiled.info)
            except ScheduleError:
                continue
            resumed = session.simulate(
                child, delta=DeltaMove(parent_fp, task)
            )
            fresh = simulate(compiled, child, profile)
            assert trace_data(resumed) == trace_data(fresh)
        stats = session.stats()
        # The configuration is chosen to actually exercise the machinery:
        # at least one warm-up and one real resume must have happened.
        assert stats["parent_warmups"] >= 1
        assert stats["delta_resumes"] >= 1
        assert stats["events_skipped"] > 0

    def test_delta_with_early_cutoff_identical(self):
        anneal = AnnealConfig(seed=7, early_cutoff=True, **SMALL_ANNEAL)
        on = small_synthesis("Tracking", delta_sim=True, anneal=anneal)
        off = small_synthesis("Tracking", delta_sim=False, anneal=anneal)
        assert report_fingerprint(on) == report_fingerprint(off)

    def test_cutoff_resume_matches_cutoff_full_run(self, tracking_context):
        """A delta simulation under a cutoff reproduces the pruned result
        of a full cutoff run exactly (the snapshot-validity rule)."""
        compiled, profile = tracking_context
        session = SimSession(
            compiled, profile, snapshot_interval=32, min_resume_events=16
        )
        parent = Layout.make(4, {t: [0] for t in compiled.info.tasks})
        full = session.simulate(parent)
        parent_fp = session.fingerprint(parent)
        cutoff = full.total_cycles // 2
        for task in compiled.info.tasks:
            try:
                child = with_instance_moved(parent, task, 0, 1)
                child.validate(compiled.info)
            except ScheduleError:
                continue
            resumed = session.simulate(
                child, cutoff=cutoff, delta=DeltaMove(parent_fp, task)
            )
            fresh = simulate(compiled, child, profile, cutoff=cutoff)
            assert trace_data(resumed) == trace_data(fresh)

    def test_bad_hints_are_harmless(self, tracking_context):
        """Wrong parent, unknown task, non-adjacent layouts: every bad
        hint falls back to a full simulation with identical results."""
        compiled, profile = tracking_context
        session = SimSession(
            compiled, profile, snapshot_interval=32, min_resume_events=16
        )
        parent = Layout.make(4, {t: [0] for t in compiled.info.tasks})
        session.simulate(parent)
        parent_fp = session.fingerprint(parent)
        tasks = list(compiled.info.tasks)
        child = with_instance_moved(parent, tasks[0], 0, 2)
        reference = trace_data(simulate(compiled, child, profile))
        for hint in (
            DeltaMove("no-such-parent", tasks[0]),
            DeltaMove(parent_fp, "no-such-task"),
            DeltaMove(parent_fp, tasks[-1]),  # names the wrong move
        ):
            got = session.simulate(child, delta=hint)
            assert trace_data(got) == reference


class TestSessionApi:
    def test_facade_rejects_per_call_knobs_with_session(
        self, tracking_context
    ):
        compiled, profile = tracking_context
        session = SimSession(compiled, profile)
        layout = Layout.make(4, {t: [0] for t in compiled.info.tasks})
        other_profile = profile_program(compiled, SMALL_ARGS["Tracking"])
        with pytest.raises(ScheduleError, match="session"):
            simulate(compiled, layout, other_profile, session=session)
        with pytest.raises(ScheduleError, match="session"):
            simulate(
                compiled, layout, session=session, hints={"x": "per_object"}
            )
        with pytest.raises(ScheduleError, match="profile"):
            simulate(compiled, layout)

    def test_facade_with_session_matches_sessionless(self, tracking_context):
        compiled, profile = tracking_context
        session = SimSession(compiled, profile)
        layout = Layout.make(4, {t: [0] for t in compiled.info.tasks})
        with_session = simulate(compiled, layout, session=session)
        without = simulate(compiled, layout, profile)
        assert trace_data(with_session) == trace_data(without)

    def test_store_is_lru_bounded(self, tracking_context):
        compiled, profile = tracking_context
        store = SessionStore(max_parents=2)
        session = SimSession(
            compiled, profile, store=store,
            snapshot_interval=32, min_resume_events=16,
        )
        layouts = [
            Layout.make(4, {t: [core] for t in compiled.info.tasks})
            for core in range(4)
        ]
        for layout in layouts:
            session.simulate(layout)
        assert len(store) <= 2

    def test_store_state_round_trip(self, tracking_context):
        compiled, profile = tracking_context
        store = SessionStore()
        session = SimSession(
            compiled, profile, store=store,
            snapshot_interval=32, min_resume_events=16,
        )
        parent = Layout.make(4, {t: [0] for t in compiled.info.tasks})
        session.simulate(parent)
        restored = SessionStore()
        restored.restore(store.state())
        assert len(restored) == len(store)
        fp = session.fingerprint(parent)
        assert restored.get(fp) is not None

    def test_all_public_symbols_import(self):
        import repro
        import repro.schedule
        import repro.search
        import repro.serve

        for module in (repro, repro.schedule, repro.search, repro.serve):
            for name in module.__all__:
                assert not name.startswith("_"), (module.__name__, name)
                assert hasattr(module, name), (module.__name__, name)
        # The session API is part of the top-level surface.
        for name in ("simulate", "SimSession", "DeltaMove", "SimResult"):
            assert name in repro.__all__
            assert name in repro.schedule.__all__


class TestWarmSessionCheckpoint:
    def test_resume_with_warm_sessions_is_bit_identical(self, tmp_path):
        """An interrupted search resumed from its checkpoint — session
        store included — retraces the uninterrupted run exactly."""
        compiled = load_benchmark("Tracking")
        profile = small_profile("Tracking")
        anneal = AnnealConfig(seed=7, checkpoint_every=1, **SMALL_ANNEAL)
        baseline = synthesize_layout(
            compiled, profile, 4,
            options=SynthesisOptions(
                anneal=anneal, hints=get_spec("Tracking").hints
            ),
        )
        short = AnnealConfig(
            seed=7, checkpoint_every=1,
            **{**SMALL_ANNEAL, "max_iterations": 1},
        )
        path = str(tmp_path / "search.ckpt")
        synthesize_layout(
            compiled, profile, 4,
            options=SynthesisOptions(
                anneal=short, hints=get_spec("Tracking").hints,
                checkpoint_path=path,
            ),
        )
        resumed = synthesize_layout(
            compiled, profile, 4,
            options=SynthesisOptions(
                anneal=anneal, hints=get_spec("Tracking").hints,
                checkpoint_path=path, resume=path,
            ),
        )
        assert report_fingerprint(resumed) == report_fingerprint(baseline)

    def test_checkpoint_carries_session_state(self, tmp_path):
        from repro.search.checkpoint import read_checkpoint

        compiled = load_benchmark("Tracking")
        profile = small_profile("Tracking")
        path = str(tmp_path / "search.ckpt")
        synthesize_layout(
            compiled, profile, 4,
            options=SynthesisOptions(
                anneal=AnnealConfig(
                    seed=7, checkpoint_every=1, **SMALL_ANNEAL
                ),
                hints=get_spec("Tracking").hints,
                checkpoint_path=path,
            ),
        )
        state = read_checkpoint(path)
        assert state.cache_state is not None
        assert "sessions" in state.cache_state
        assert state.candidate_deltas is not None
        assert len(state.candidate_deltas) == len(state.candidates)


class TestLegacyShims:
    def test_estimate_layout_warns_and_matches(self, tracking_context):
        compiled, profile = tracking_context
        layout = Layout.make(4, {t: [0] for t in compiled.info.tasks})
        with pytest.warns(DeprecationWarning, match="estimate_layout"):
            legacy = estimate_layout(compiled, layout, profile)
        assert trace_data(legacy) == trace_data(
            simulate(compiled, layout, profile)
        )

    def test_scheduling_simulator_warns_and_matches(self, tracking_context):
        compiled, profile = tracking_context
        layout = Layout.make(4, {t: [0] for t in compiled.info.tasks})
        with pytest.warns(DeprecationWarning, match="SchedulingSimulator"):
            sim = SchedulingSimulator(compiled, layout, profile)
        assert trace_data(sim.run()) == trace_data(
            simulate(compiled, layout, profile)
        )

    def test_removal_version_is_stated(self):
        import warnings

        from repro.core.options import SHIM_REMOVAL_VERSION

        compiled = load_benchmark("Keyword")
        layout = Layout.make(
            1, {t: [0] for t in compiled.info.tasks}
        )
        profile = small_profile("Keyword")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            estimate_layout(compiled, layout, profile)
        assert any(
            SHIM_REMOVAL_VERSION in str(w.message) for w in caught
        )
