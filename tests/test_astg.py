"""Dependence analysis (ASTG) tests."""

from repro.analysis.astate import AState
from repro.analysis.astg import build_all_astgs, build_astg
from repro.core import compile_program


def astgs_of(source: str):
    compiled = compile_program(source)
    return compiled, build_all_astgs(compiled.info, compiled.ir_program)


class TestKeywordASTGs:
    def test_text_states(self, keyword_compiled):
        astg = keyword_compiled.astgs["Text"]
        labels = {s.label() for s in astg.states}
        assert labels == {"{process}", "{submit}", "{}"}

    def test_text_initial_state(self, keyword_compiled):
        astg = keyword_compiled.astgs["Text"]
        initial = list(astg.initial)
        assert len(initial) == 1
        assert initial[0] == AState.make(["process"])

    def test_text_transitions(self, keyword_compiled):
        astg = keyword_compiled.astgs["Text"]
        edges = {(e.src.label(), e.task, e.dst.label()) for e in astg.edges}
        assert ("{process}", "processText", "{submit}") in edges
        assert ("{submit}", "mergeIntermediateResult", "{}") in edges

    def test_results_self_loop(self, keyword_compiled):
        astg = keyword_compiled.astgs["Results"]
        loops = [e for e in astg.edges if e.src == e.dst]
        assert any(e.task == "mergeIntermediateResult" for e in loops)

    def test_startup_object_astg(self, keyword_compiled):
        astg = keyword_compiled.astgs["StartupObject"]
        assert AState.make(["initialstate"]) in astg.initial
        assert astg.initial[AState.make(["initialstate"])] == [-1]

    def test_exit_ids_recorded_on_edges(self, keyword_compiled):
        astg = keyword_compiled.astgs["Text"]
        merge_exits = {
            e.exit_id for e in astg.edges if e.task == "mergeIntermediateResult"
        }
        assert merge_exits == {1, 2}


class TestTagStates:
    def test_tagged_allocation_state(self, tagged_compiled):
        astg = tagged_compiled.astgs["Image"]
        initial = list(astg.initial)
        assert len(initial) == 1
        assert initial[0].tag_count("saveop") == 1
        assert "uncompressed" in initial[0].flags

    def test_tag_add_transition(self, tagged_compiled):
        astg = tagged_compiled.astgs["Drawing"]
        # startsave adds the saveop tag while moving dirty -> saving.
        saving = [
            e for e in astg.edges if e.task == "startsave"
        ]
        assert saving
        assert all(e.dst.tag_count("saveop") == 1 for e in saving)


class TestWorklist:
    def test_unreached_states_not_materialized(self):
        source = """
        class F { flag a; flag b; flag c; }
        task startup(StartupObject s in initialstate) {
            F f = new F(){a := true};
            taskexit(s: initialstate := false);
        }
        task step(F f in a) {
            taskexit(f: a := false, b := true);
        }
        """
        _, astgs = astgs_of(source)
        labels = {s.label() for s in astgs["F"].states}
        # flag c is never set; no state containing c should exist.
        assert labels == {"{a}", "{b}"}

    def test_unreachable_exit_ignored(self):
        source = """
        class F { flag a; flag b; }
        task startup(StartupObject s in initialstate) {
            F f = new F(){a := true};
            taskexit(s: initialstate := false);
        }
        task step(F f in a) {
            if (true) {
                taskexit(f: a := false);
            }
            taskexit(f: b := true);
        }
        """
        # Both exits are syntactically reachable in the CFG (the analysis
        # does not evaluate conditions), so both transitions appear.
        _, astgs = astgs_of(source)
        labels = {s.label() for s in astgs["F"].states}
        assert "{a,b}" in labels or "{b}" in labels

    def test_method_allocations_do_not_seed_states(self):
        source = """
        class F { flag a; }
        class Maker {
            Maker() { }
            F make() { return new F(); }
        }
        task startup(StartupObject s in initialstate) {
            Maker m = new Maker();
            F f = m.make();
            taskexit(s: initialstate := false);
        }
        task consume(F f in a) { taskexit(f: a := false); }
        """
        _, astgs = astgs_of(source)
        # The only F allocation is inside a method: the global object space
        # never sees it, so F has no initial states.
        assert astgs["F"].initial == {}

    def test_build_astg_single_class(self, keyword_compiled):
        astg = build_astg(
            keyword_compiled.info, keyword_compiled.ir_program, "Text"
        )
        assert astg.class_name == "Text"
        assert astg.states
