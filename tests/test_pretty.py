"""Pretty-printer round-trip tests: parse → print → parse is a fixpoint."""

import pytest

from repro.bench import benchmark_names, load_source
from repro.lang.parser import parse_program
from repro.lang.pretty import format_program, format_task_signature

from conftest import KEYWORD_SOURCE, TAGGED_SOURCE

SNIPPETS = [
    "class A { }",
    "class A { flag f; int x; A() { this.x = 0; } }",
    "task t(StartupObject s in initialstate) { taskexit(s: initialstate := false); }",
    """
    class B {
        float[] data;
        B(int n) { this.data = new float[n]; }
        float sum() {
            float acc = 0.0;
            for (int i = 0; i < this.data.length; i++) acc = acc + this.data[i];
            return acc;
        }
    }
    """,
    """
    task t(StartupObject s in initialstate) {
        tag g = new tag(grp);
        int[][] m = new int[2][3];
        m[1][2] = -5 % 3;
        String msg = "v=" + (1.5 * 2.0) + " b=" + (true == false);
        if (msg.length() > 0 && !(1 >= 2)) { }
        else { while (false) { break; } }
        taskexit(s: initialstate := false, add g);
    }
    """,
]


@pytest.mark.parametrize("snippet", SNIPPETS)
def test_round_trip_fixpoint(snippet):
    once = format_program(parse_program(snippet))
    twice = format_program(parse_program(once))
    assert once == twice


@pytest.mark.parametrize("source", [KEYWORD_SOURCE, TAGGED_SOURCE])
def test_round_trip_fixtures(source):
    once = format_program(parse_program(source))
    twice = format_program(parse_program(once))
    assert once == twice


@pytest.mark.parametrize("name", benchmark_names())
def test_round_trip_benchmarks(name):
    source = load_source(name)
    once = format_program(parse_program(source))
    twice = format_program(parse_program(once))
    assert once == twice


def test_task_signature_includes_guards():
    program = parse_program(
        "task t(Foo f in ready and !done with grp g) { }"
    )
    text = format_task_signature(program.tasks[0])
    assert "task t(" in text
    assert "ready" in text and "done" in text and "grp g" in text


def test_string_escapes_survive_round_trip():
    source = r'''
    task t(StartupObject s in initialstate) {
        String x = "a\nb\t\"c\"\\d";
        taskexit(s: initialstate := false);
    }
    '''
    program = parse_program(source)
    reparsed = parse_program(format_program(program))
    original = program.tasks[0].body.statements[0].init.value
    round_tripped = reparsed.tasks[0].body.statements[0].init.value
    assert original == round_tripped
