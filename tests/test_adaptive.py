"""Tests for the §7 field re-optimization extension."""

import pytest

from repro.core.adaptive import AdaptiveExecutable
from repro.schedule.anneal import AnnealConfig


def small_config():
    return AnnealConfig(
        initial_candidates=3,
        max_iterations=6,
        max_evaluations=50,
        patience=1,
        continue_probability=0.1,
    )


@pytest.fixture
def exe(keyword_compiled):
    return AdaptiveExecutable(
        keyword_compiled,
        num_cores=4,
        profile_every=2,
        config=small_config(),
    )


class TestAdaptation:
    def test_starts_single_core(self, exe):
        assert exe.layout.cores_used() == (0,)

    def test_first_run_triggers_optimization(self, exe):
        result = exe.run(["8"])
        assert result.stdout == "total=16"
        assert len(exe.history) == 1
        assert exe.history[0].adopted
        assert len(exe.layout.cores_used()) > 1

    def test_subsequent_runs_use_new_layout(self, exe):
        first = exe.run(["8"])
        second = exe.run(["8"])
        assert second.total_cycles < first.total_cycles
        assert second.stdout == first.stdout

    def test_reoptimization_cadence(self, exe):
        for _ in range(5):
            exe.run(["8"])
        # Profiled at runs 1, 2, 4 (every 2nd run plus the bootstrap).
        assert [r.run_index for r in exe.history] == [1, 2, 4]

    def test_stable_workload_keeps_layout(self, exe):
        for _ in range(4):
            exe.run(["8"])
        layouts = {r.new_layout.canonical_key() for r in exe.history if r.adopted}
        # After the first adoption the layout settles (no gain -> kept old).
        assert len(exe.adaptations) <= 2
        assert layouts

    def test_retarget_clamps_layout(self, exe):
        exe.run(["8"])
        exe.retarget(2)
        assert exe.layout.num_cores == 2
        assert all(c < 2 for c in exe.layout.cores_used())
        # The executable still runs correctly on the clamped layout.
        result = exe.run(["8"])
        assert result.stdout == "total=16"

    def test_retarget_upward_enables_readaptation(self, exe):
        exe.run(["8"])  # adapt for 4 cores
        before = exe.layout
        exe.retarget(8)
        exe.run(["8"])  # run 2: profiled (every 2nd) -> re-optimize for 8
        assert exe.layout.num_cores == 8
        assert exe.layout.canonical_key() != before.canonical_key() or (
            len(exe.layout.cores_used()) >= len(before.cores_used())
        )

    def test_record_fields(self, exe):
        exe.run(["8"])
        record = exe.history[0]
        assert record.workload == ["8"]
        assert record.old_estimate > record.new_estimate
        assert 0 < record.predicted_gain < 1
