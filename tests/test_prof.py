"""The wall-clock profiler (repro.obs.prof) and its exports.

The load-bearing claims:

1. **Off means off.** No profiler is installed by default; every
   instrumentation site guards on one load, and a synthesize run with
   the profiler on is bit-identical to the same run with it off.
2. **Accounting is exact** (under an injectable fake clock): ``total``
   includes children, ``self`` excludes them, exclusive ``add_time``
   subtracts from the parent's self and non-exclusive does not, and
   per-thread trees merge by phase path.
3. **Every export validates.** Snapshots are schema-valid
   ``repro.obs/profile-v1``, span tracks and merged request traces pass
   the Chrome-trace validator, the Prometheus rendering passes the
   exposition lint, and ``repro obs validate`` routes them all.
"""

import json
import threading

import pytest

from conftest import KEYWORD_SOURCE

from repro.core import SynthesisOptions, compile_program, profile_program, synthesize_layout
from repro.obs import prof
from repro.obs.artifacts import (
    ArtifactError,
    summarize_artifact,
    validate_artifact,
)
from repro.obs.export import validate_chrome_trace
from repro.obs.metrics import CYCLE_BUCKETS, Histogram, MetricsRegistry
from repro.obs.promexp import render_prometheus, validate_prometheus_text
from repro.obs.runmeta import run_metadata
from repro.schedule.anneal import AnnealConfig

A = prof.intern_phase("test.a")
B = prof.intern_phase("test.b")
C = prof.intern_phase("test.c")
N = prof.intern_phase("test.n")


class FakeClock:
    def __init__(self):
        self.now = 0

    def __call__(self):
        return self.now

    def advance(self, ns):
        self.now += ns


def by_name(nodes):
    return {node["name"]: node for node in nodes}


def small_synthesis():
    compiled = compile_program(KEYWORD_SOURCE, "keyword-test", optimize=True)
    profile = profile_program(compiled, ["6"])
    return synthesize_layout(
        compiled,
        profile,
        4,
        options=SynthesisOptions(
            anneal=AnnealConfig(seed=7, max_iterations=3, max_evaluations=20)
        ),
    )


# -- exact accounting ----------------------------------------------------------


class TestAccounting:
    def test_nested_phases_split_total_and_self(self):
        clock = FakeClock()
        p = prof.Profiler(clock=clock)
        p.enter(A)
        clock.advance(10)
        p.enter(B)
        clock.advance(5)
        p.exit()
        clock.advance(3)
        p.exit()
        doc = p.snapshot(wall_ns=18)
        a = by_name(doc["phases"])["test.a"]
        assert (a["count"], a["total_ns"], a["self_ns"]) == (1, 18, 13)
        b = by_name(a["children"])["test.b"]
        assert (b["count"], b["total_ns"], b["self_ns"]) == (1, 5, 5)
        assert prof.coverage(doc) == 1.0

    def test_reentering_a_phase_accumulates_one_node(self):
        clock = FakeClock()
        p = prof.Profiler(clock=clock)
        for _ in range(3):
            p.enter(A)
            clock.advance(7)
            p.exit()
        phases = p.snapshot()["phases"]
        assert len(phases) == 1
        assert phases[0]["count"] == 3
        assert phases[0]["total_ns"] == 21

    def test_add_time_exclusive_subtracts_from_parent_self(self):
        clock = FakeClock()
        p = prof.Profiler(clock=clock)
        p.enter(A)
        clock.advance(10)
        p.add_time(C, 4, count=2, exclusive=True)
        p.exit()
        a = by_name(p.snapshot()["phases"])["test.a"]
        assert a["total_ns"] == 10
        assert a["self_ns"] == 6
        c = by_name(a["children"])["test.c"]
        assert (c["count"], c["total_ns"], c["self_ns"]) == (2, 4, 4)

    def test_add_time_non_exclusive_leaves_parent_self(self):
        """Cross-process worker compute overlaps the parent's wait, so
        the parent's self time (the IPC the compute does not explain)
        must stay intact — it can even exceed the parent's wall."""
        clock = FakeClock()
        p = prof.Profiler(clock=clock)
        p.enter(A)
        clock.advance(10)
        p.add_time(C, 15, exclusive=False)
        p.exit()
        a = by_name(p.snapshot()["phases"])["test.a"]
        assert a["self_ns"] == 10
        assert by_name(a["children"])["test.c"]["total_ns"] == 15

    def test_counters_merge_into_snapshot(self):
        p = prof.Profiler(clock=FakeClock())
        p.add_count(N, 3)
        p.add_count(N, 4)
        assert p.snapshot()["counters"] == {"test.n": 7}

    def test_threads_merge_by_phase_path(self):
        clock = FakeClock()
        lock = threading.Lock()

        def tick():
            with lock:
                return clock()

        p = prof.Profiler(clock=tick)

        def body():
            p.enter(A)
            with lock:
                clock.advance(5)
            p.exit()

        body()
        worker = threading.Thread(target=body)
        worker.start()
        worker.join()
        doc = p.snapshot()
        assert doc["threads"] == 2
        a = by_name(doc["phases"])["test.a"]
        assert a["count"] == 2
        assert a["total_ns"] == 10

    def test_interning_is_stable(self):
        key = prof.intern_phase("test.interned")
        assert prof.intern_phase("test.interned") == key
        assert prof.phase_name(key) == "test.interned"


# -- the off mode --------------------------------------------------------------


class TestOffMode:
    def test_no_profiler_by_default(self):
        assert prof.active() is None

    def test_phase_is_a_noop_when_inactive(self):
        with prof.phase(A) as profiler:
            assert profiler is None

    def test_collect_spans_empty_when_inactive(self):
        with prof.collect_spans(reset=True) as spans:
            pass
        assert spans == []

    def test_profiled_installs_and_restores(self):
        with prof.profiled() as profiler:
            assert prof.active() is profiler
            with prof.profiled() as inner:
                assert prof.active() is inner
            assert prof.active() is profiler
        assert prof.active() is None

    def test_synthesize_bit_identical_with_profiler_on(self):
        """The tentpole contract: profiling never changes results."""
        plain = small_synthesis()
        with prof.profiled(record_spans=True) as profiler:
            profiled = small_synthesis()
        assert profiled.estimated_cycles == plain.estimated_cycles
        assert profiled.layout.instances == plain.layout.instances
        assert profiled.history == plain.history
        assert profiled.evaluations == plain.evaluations
        # ... and the profiler actually saw the whole stack.
        doc = profiler.snapshot()
        paths = {row["path"] for row in prof.flatten(doc)}
        assert "pipeline.synthesize" in paths
        assert any(path.endswith("anneal.iteration") for path in paths)
        assert any(path.endswith("search.dispatch") for path in paths)
        assert any(path.endswith("sim.dispatch") for path in paths)
        assert doc["counters"]["sim.events_processed"] > 0


# -- simulator buckets ---------------------------------------------------------


class TestSimulatorBuckets:
    def test_buckets_tile_the_dispatch_wall(self):
        with prof.profiled() as profiler:
            small_synthesis()
        rows = {row["path"]: row for row in prof.flatten(profiler.snapshot())}
        dispatch = next(
            row for path, row in rows.items()
            if path.endswith("search.dispatch")
        )
        buckets = [
            row
            for path, row in rows.items()
            if row["name"].startswith("sim.")
        ]
        assert {row["name"] for row in buckets} == {
            "sim.queue", "sim.arrive", "sim.dispatch", "sim.mail", "sim.form"
        }
        total = sum(row["total_ns"] for row in buckets)
        # The five buckets are normalized to the measured loop wall,
        # which lives inside the serial dispatch phase.
        assert 0 < total <= dispatch["total_ns"]
        assert dispatch["self_ns"] >= 0

    def test_bucket_counts_are_exact(self):
        with prof.profiled() as profiler:
            small_synthesis()
        doc = profiler.snapshot()
        rows = {row["name"]: row for row in prof.flatten(doc)}
        assert rows["sim.queue"]["count"] == doc["counters"][
            "sim.events_processed"
        ]
        assert (
            rows["sim.arrive"]["count"] + rows["sim.dispatch"]["count"]
            <= rows["sim.queue"]["count"]
        )


# -- spans ---------------------------------------------------------------------


class TestSpans:
    def test_spans_balanced_and_bounded(self):
        clock = FakeClock()
        p = prof.Profiler(clock=clock, record_spans=True, max_spans_per_thread=2)
        for _ in range(4):
            p.enter(A)
            clock.advance(1)
            p.exit()
        doc = p.snapshot()
        assert doc["spans_recorded"] == 2
        assert doc["spans_dropped"] == 2

    def test_collect_spans_yields_the_slice(self):
        clock = FakeClock()
        with prof.profiled(record_spans=True, clock=clock):
            with prof.collect_spans(reset=True) as spans:
                with prof.phase(A):
                    clock.advance(10)
                    with prof.phase(B):
                        clock.advance(5)
        names = [(s["name"], s["depth"]) for s in spans]
        assert names == [("test.b", 1), ("test.a", 0)]
        assert all(s["dur_ns"] >= 0 and s["start_ns"] >= 0 for s in spans)

    def test_span_trace_events_merge_validates(self):
        clock = FakeClock()
        with prof.profiled(record_spans=True, clock=clock) as profiler:
            with prof.phase(A):
                clock.advance(10)
        events = prof.span_trace_events(profiler)
        doc = {
            "traceEvents": events,
            "displayTimeUnit": "ms",
            "otherData": {"schema": prof.TRACE_SCHEMA, "time_unit": "us"},
        }
        summary = validate_chrome_trace(doc)
        assert summary["spans"] == 1
        # Wall-clock tracks live far above machine core ids.
        assert all(track >= 10_000 for track in summary["tracks"])

    def test_build_request_trace_validates(self):
        client_span = {"name": "client.synthesize", "start_ns": 0,
                       "dur_ns": 2_000_000}
        server_spans = [
            {"name": "serve.synthesize", "start_ns": 0,
             "dur_ns": 1_000_000, "depth": 0},
            {"name": "pipeline.synthesize", "start_ns": 100_000,
             "dur_ns": 800_000, "depth": 1},
        ]
        doc = prof.build_request_trace("abc123", client_span, server_spans)
        summary = validate_chrome_trace(doc)
        assert summary["spans"] == 3
        assert summary["tracks"] == [0, 1]
        assert doc["otherData"]["trace_id"] == "abc123"


# -- artifacts and reports -----------------------------------------------------


class TestArtifacts:
    def test_snapshot_roundtrips_through_validate(self, tmp_path):
        clock = FakeClock()
        p = prof.Profiler(clock=clock)
        p.enter(A)
        clock.advance(10)
        p.exit()
        doc = p.snapshot(wall_ns=10, meta=run_metadata())
        path = tmp_path / "profile.json"
        prof.write_json(str(path), doc)
        verdict = validate_artifact(str(path))
        assert verdict["schema"] == prof.PROFILE_SCHEMA
        assert verdict["summary"]["coverage"] == 1.0
        assert "test.a" in summarize_artifact(str(path))

    def test_negative_accounting_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({
            "schema": prof.PROFILE_SCHEMA,
            "phases": [{"name": "x", "count": -1, "total_ns": 0,
                        "self_ns": 0, "children": []}],
            "counters": {},
            "threads": 1,
        }))
        with pytest.raises(ArtifactError):
            validate_artifact(str(path))

    def test_unknown_schema_rejected(self, tmp_path):
        path = tmp_path / "mystery.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ArtifactError):
            validate_artifact(str(path))

    def test_prometheus_file_lints(self, tmp_path):
        registry = MetricsRegistry()
        registry.counter("serve_requests").inc()
        path = tmp_path / "metrics.prom"
        path.write_text(render_prometheus(registry))
        verdict = validate_artifact(str(path))
        assert verdict["schema"] == "prometheus-text"
        assert verdict["summary"]["samples"] >= 1

    def test_bench_telemetry_meta_is_checked(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps({
            "schema": "repro.bench/telemetry-v1",
            "experiment": "t",
            "meta": run_metadata(),
        }))
        verdict = validate_artifact(str(path))
        assert verdict["summary"]["stamped"] is True
        # A meta block missing its provenance keys is a violation.
        path.write_text(json.dumps({
            "schema": "repro.bench/telemetry-v1",
            "experiment": "t",
            "meta": {"git_sha": "x"},
        }))
        with pytest.raises(ArtifactError):
            validate_artifact(str(path))

    def test_render_report_mentions_every_phase(self):
        clock = FakeClock()
        p = prof.Profiler(clock=clock)
        p.enter(A)
        clock.advance(10)
        p.enter(B)
        clock.advance(5)
        p.exit()
        p.exit()
        report = prof.render_report(p.snapshot(wall_ns=15))
        assert "test.a" in report and "test.b" in report
        assert "coverage" in report

    def test_run_metadata_has_provenance_keys(self):
        meta = run_metadata(schema="x/y-v1")
        for key in ("git_sha", "timestamp_utc", "python", "platform",
                    "cpu_count"):
            assert key in meta
        assert meta["schema"] == "x/y-v1"


# -- the Prometheus rendering --------------------------------------------------


class TestPrometheus:
    def test_registry_and_profiler_render_lints(self):
        registry = MetricsRegistry()
        registry.counter("serve_requests").inc(3)
        registry.counter("serve_requests[synthesize]").inc(2)
        registry.gauge("serve_inflight").set(1)
        registry.histogram("serve_latency[synthesize]").observe(0.25)
        clock = FakeClock()
        profiler = prof.Profiler(clock=clock)
        profiler.enter(A)
        clock.advance(10)
        profiler.exit()
        profiler.add_count(N, 2)
        text = render_prometheus(
            registry, profiler=profiler,
            extra_gauges={"serve_uptime_seconds": 1.5},
        )
        summary = validate_prometheus_text(text)
        assert summary["histograms"] == 1
        assert 'repro_serve_requests_total{key="synthesize"} 2' in text
        assert 'repro_profile_phase_seconds_total{kind="total",phase="test.a"}' in text
        assert 'repro_profile_counter_total{name="test_n"} 2' in text
        assert "repro_serve_uptime_seconds 1.5" in text

    def test_lint_rejects_malformed_documents(self):
        for bad in (
            "metric_without_type 1\n",
            "# TYPE m counter\nm{unclosed 1\n",
            "# TYPE m counter\nm not-a-number\n",
            "# TYPE h histogram\nh_bucket 1\n",  # bucket without le
        ):
            with pytest.raises(ValueError):
                validate_prometheus_text(bad)

    def test_lint_rejects_non_cumulative_histogram(self):
        bad = (
            "# TYPE h histogram\n"
            'h_bucket{le="1"} 5\n'
            'h_bucket{le="+Inf"} 3\n'
        )
        with pytest.raises(ValueError):
            validate_prometheus_text(bad)

    def test_histogram_custom_buckets_expand(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("queue_wait", buckets=CYCLE_BUCKETS)
        histogram.observe(50)
        histogram.observe(5000)
        text = render_prometheus(registry)
        validate_prometheus_text(text)
        assert 'repro_queue_wait_bucket{le="100"} 1' in text
        assert 'repro_queue_wait_bucket{le="+Inf"} 2' in text


# -- configurable histogram boundaries ----------------------------------------


class TestHistogramBuckets:
    def test_custom_boundaries_and_summary(self):
        histogram = Histogram("h", buckets=(0.001, 0.1, 1.0))
        for value in (0.0005, 0.05, 0.5, 5.0):
            histogram.observe(value)
        counts = histogram.bucket_counts()
        assert counts["0.001"] == 1
        assert counts["0.1"] == 2
        assert counts["1"] == 3
        assert counts["+Inf"] == 4
        assert histogram.summary()["buckets"] == counts

    def test_unsorted_boundaries_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 0.1))


# -- the CLI -------------------------------------------------------------------


class TestCLI:
    def test_profile_command_writes_valid_artifact(self, tmp_path, capsys):
        from repro.cli import main

        source = tmp_path / "prog.bam"
        source.write_text(KEYWORD_SOURCE)
        out = tmp_path / "profile.json"
        code = main([
            "profile", str(source), "6", "--cores", "4",
            "--iterations", "2", "--evaluations", "10",
            "--out", str(out),
        ])
        assert code == 0
        stdout = capsys.readouterr().out
        assert "pipeline.synthesize" in stdout
        assert "hottest by self time" in stdout
        doc = json.loads(out.read_text())
        assert doc["schema"] == prof.PROFILE_SCHEMA
        assert doc["meta"]["python"]
        assert prof.coverage(doc) > 0.5
        assert validate_artifact(str(out))["schema"] == prof.PROFILE_SCHEMA
        # The CLI run uninstalled its profiler on the way out.
        assert prof.active() is None

    def test_profile_command_rejects_unknown_target(self, capsys):
        from repro.cli import main

        assert main(["profile", "NoSuchBenchmark"]) == 2
        assert "neither a file nor a benchmark" in capsys.readouterr().err

    def test_obs_validate_and_summarize(self, tmp_path, capsys):
        from repro.cli import main

        clock = FakeClock()
        p = prof.Profiler(clock=clock)
        p.enter(A)
        clock.advance(10)
        p.exit()
        path = tmp_path / "profile.json"
        prof.write_json(str(path), p.snapshot(wall_ns=10))
        assert main(["obs", "validate", str(path)]) == 0
        assert json.loads(capsys.readouterr().out)["schema"] == (
            prof.PROFILE_SCHEMA
        )
        assert main(["obs", "summarize", str(path)]) == 0
        assert "test.a" in capsys.readouterr().out

    def test_obs_validate_rejects_garbage(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "garbage.json"
        path.write_text('{"schema": "no/such-schema"}')
        assert main(["obs", "validate", str(path)]) == 1
        assert "error" in capsys.readouterr().err
