"""Detection-driven resilience (repro.resilience).

The contract under test: with ``MachineConfig.resilience`` absent or
disabled the machine is bit-identical to the seed; enabled on a healthy
machine it changes nothing observable; under faults, failures are
*discovered* (not announced by the injector), recovery preserves
exactly-once commit, long stalls survive false suspicion, overruns are
preempted and retried, and poison work lands in the dead-letter queue.
"""

import pytest

from repro.core import RunOptions, profile_program, run_layout
from repro.core.adaptive import AdaptiveExecutable
from repro.fault import CoreCrash, FaultError, FaultPlan, TransientStall
from repro.resilience import QuarantineRecord, ResilienceConfig
from repro.runtime.machine import MachineConfig, MachineResult
from repro.schedule.layout import Layout


def quad_layout(compiled):
    mapping = {t: [0] for t in compiled.info.tasks}
    mapping["processText"] = [0, 1, 2, 3]
    return Layout.make(4, mapping)


def fingerprint(result):
    lines = [
        f"cycles={result.total_cycles}",
        f"messages={result.messages}",
        f"busy={sorted(result.core_busy.items())}",
        f"invocations={sorted(result.invocations.items())}",
        f"exits={sorted(result.exit_counts.items())}",
        f"stale={result.stale_invocations}",
        f"lock_failures={result.lock_failures}",
        f"stdout={result.stdout!r}",
    ]
    if result.trace is not None:
        lines.extend(result.trace)
    return "\n".join(lines).encode()


#: Crash cycle landing mid-run on the quad layout with 12 sections.
MIDRUN_CYCLE = 2000


class TestConfig:
    def test_defaults_validate(self):
        ResilienceConfig().validate()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"heartbeat_interval": 0},
            {"suspicion_beats": 0},
            {"heartbeat_cost": -1},
            {"deadline_multiplier": 0.0},
            {"fallback_deadline": 0},
            {"max_retries": -1},
            {"backoff_base": -1},
        ],
    )
    def test_bad_knobs_rejected(self, kwargs):
        with pytest.raises(FaultError):
            ResilienceConfig(**kwargs).validate()

    def test_suspicion_window(self):
        config = ResilienceConfig(heartbeat_interval=100, suspicion_beats=4)
        assert config.suspicion_window == 400

    def test_backoff_doubles(self):
        config = ResilienceConfig(backoff_base=100)
        assert [config.backoff_for(n) for n in (1, 2, 3)] == [100, 200, 400]

    def test_deadline_prefers_profile_over_fallback(self, keyword_compiled):
        profile = profile_program(keyword_compiled, ["4"])
        config = ResilienceConfig(
            deadline_multiplier=2.0, profile=profile, fallback_deadline=77
        )
        expected = max(1, int(profile.avg_task_cycles("processText") * 2.0))
        assert config.deadline_for("processText") == expected
        assert config.deadline_for("noSuchTask") == 77
        assert ResilienceConfig().deadline_for("processText") is None


class TestGating:
    def test_disabled_config_bit_identical(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        config = MachineConfig(record_trace=True)
        plain = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        gated = run_layout(
            keyword_compiled,
            layout,
            ["12"], options=RunOptions(machine=MachineConfig(
                resilience=ResilienceConfig(enabled=False), record_trace=True
            )))
        assert fingerprint(plain) == fingerprint(gated)
        assert gated.recovery is None
        assert gated.quarantined is None

    def test_enabled_healthy_machine_semantically_identical(
        self, keyword_compiled
    ):
        layout = quad_layout(keyword_compiled)
        plain = run_layout(keyword_compiled, layout, ["12"])
        resilient = run_layout(
            keyword_compiled,
            layout,
            ["12"], options=RunOptions(machine=MachineConfig(resilience=ResilienceConfig(), validate=True)))
        assert resilient.stdout == plain.stdout
        assert resilient.invocations == plain.invocations
        assert resilient.exit_counts == plain.exit_counts
        assert resilient.recovery is not None
        assert resilient.recovery.heartbeats > 0
        assert resilient.recovery.suspicions == 0
        assert resilient.quarantined == []
        assert resilient.core_death_cycles is None

    def test_resilient_runs_deterministic(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        plan = FaultPlan.make(
            [
                CoreCrash(core=1, cycle=MIDRUN_CYCLE),
                TransientStall(core=2, cycle=1200, duration=700),
            ]
        )
        config = MachineConfig(
            fault_plan=plan,
            resilience=ResilienceConfig(),
            validate=True,
            record_trace=True,
        )
        first = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        second = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        assert fingerprint(first) == fingerprint(second)
        assert first.recovery == second.recovery


class TestDetection:
    def test_crash_discovered_with_latency(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        resilience = ResilienceConfig(heartbeat_interval=300, suspicion_beats=3)
        config = MachineConfig(
            fault_plan=FaultPlan.single_crash(1, MIDRUN_CYCLE),
            resilience=resilience,
            validate=True,
            record_trace=True,
        )
        result = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        stats = result.recovery
        assert stats.crashes == 1
        assert stats.detections == 1
        assert stats.suspicions == 1
        assert stats.false_suspicions == 0
        # The silence clock starts at the core's *last beat*, which can
        # predate the crash by up to one heartbeat period; detection then
        # lands on a monitor tick. Latency is the window, give or take a
        # couple of periods.
        window = resilience.suspicion_window
        period = resilience.heartbeat_interval
        assert (
            window - 2 * period
            <= stats.detection_latency_cycles
            <= window + 2 * period
        )
        assert stats.mean_detection_latency() == stats.detection_latency_cycles
        trace = "\n".join(result.trace)
        assert "crash core 1" in trace
        assert "detect core 1 dead" in trace
        # Work still finishes, exactly once, with the right answer.
        assert result.stdout == base.stdout
        assert stats.exactly_once()
        assert result.core_death_cycles == {1: MIDRUN_CYCLE}

    def test_short_stall_not_suspected(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        resilience = ResilienceConfig(heartbeat_interval=300, suspicion_beats=3)
        plan = FaultPlan.make(
            [TransientStall(core=1, cycle=1200, duration=500)]
        )
        config = MachineConfig(
            fault_plan=plan, resilience=resilience, validate=True
        )
        result = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        stats = result.recovery
        assert stats.stalls == 1
        assert stats.suspicions == 0
        assert stats.false_suspicions == 0
        assert result.stdout == base.stdout
        assert result.core_death_cycles is None

    def test_long_stall_evicted_then_rejoins(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        resilience = ResilienceConfig(heartbeat_interval=200, suspicion_beats=2)
        # The stall dwarfs the 400-cycle suspicion window: the detector
        # must evict the core, migrate its work, and let it rejoin later.
        plan = FaultPlan.make(
            [TransientStall(core=1, cycle=800, duration=2500)]
        )
        config = MachineConfig(
            fault_plan=plan,
            resilience=resilience,
            validate=True,
            record_trace=True,
        )
        result = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        stats = result.recovery
        assert stats.crashes == 0
        assert stats.suspicions >= 1
        assert stats.false_suspicions >= 1
        assert stats.rejoins == stats.false_suspicions
        assert stats.detections == 0
        trace = "\n".join(result.trace)
        assert "evict core 1" in trace
        assert "rejoin core 1" in trace
        # No double-commit: the evicted core's in-flight work was rolled
        # back before its migrated copy re-executed.
        assert stats.exactly_once()
        assert result.stdout == base.stdout
        # The rejoined core is live again at end of run.
        assert result.core_death_cycles is None

    def test_evicted_core_that_really_dies_stays_dead(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        resilience = ResilienceConfig(heartbeat_interval=200, suspicion_beats=2)
        # Evicted at ~1200 (stall from 800 outlasting the window), then the
        # core truly crashes while still frozen: the eviction must become
        # permanent, with no rejoin and no double recovery.
        plan = FaultPlan.make(
            [
                TransientStall(core=1, cycle=800, duration=2500),
                CoreCrash(core=1, cycle=2200),
            ]
        )
        config = MachineConfig(
            fault_plan=plan, resilience=resilience, validate=True
        )
        result = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        stats = result.recovery
        assert stats.crashes == 1
        assert stats.rejoins == 0
        assert stats.exactly_once()
        assert result.stdout == base.stdout
        assert 1 in (result.core_death_cycles or {})


class TestWatchdog:
    def test_generous_deadline_never_fires(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        base = run_layout(keyword_compiled, layout, ["12"])
        profile = profile_program(keyword_compiled, ["12"])
        resilience = ResilienceConfig(
            deadline_multiplier=100.0, profile=profile
        )
        config = MachineConfig(resilience=resilience, validate=True)
        result = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        assert result.recovery.watchdog_preemptions == 0
        assert result.stdout == base.stdout
        assert result.quarantined == []

    def test_tight_deadline_preempts_retries_then_quarantines(
        self, keyword_compiled
    ):
        layout = quad_layout(keyword_compiled)
        resilience = ResilienceConfig(
            deadline_multiplier=1.0,
            fallback_deadline=5,  # absurdly tight: everything overruns
            max_retries=2,
            backoff_base=64,
        )
        config = MachineConfig(
            resilience=resilience, validate=True, record_trace=True
        )
        result = run_layout(keyword_compiled, layout, ["4"], options=RunOptions(machine=config))
        stats = result.recovery
        assert stats.watchdog_preemptions > 0
        assert stats.retries > 0
        assert stats.backoff_cycles > 0
        assert stats.quarantined_groups == len(result.quarantined) > 0
        # Deterministic re-execution overruns identically, so the retry
        # budget is exactly exhausted before quarantine.
        record = result.quarantined[0]
        assert isinstance(record, QuarantineRecord)
        assert record.attempts == resilience.max_retries + 1
        assert "quarantine" in "\n".join(result.trace)
        # The run still terminates cleanly (validate=True above) and the
        # dropped work published nothing.
        assert stats.exactly_once()

    def test_quarantined_objects_barred_from_schedulers(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        resilience = ResilienceConfig(
            deadline_multiplier=1.0, fallback_deadline=5, max_retries=0
        )
        config = MachineConfig(resilience=resilience, validate=True)
        result = run_layout(keyword_compiled, layout, ["4"], options=RunOptions(machine=config))
        # max_retries=0: first preemption quarantines immediately; nothing
        # is ever retried.
        assert result.recovery.retries == 0
        assert result.recovery.quarantined_groups >= 1
        poisoned = {
            obj_id
            for record in result.quarantined
            for obj_id in record.object_ids
        }
        assert poisoned  # and the run terminated with them dead-lettered


class TestBusyFraction:
    def test_dead_core_excluded_from_denominator(self):
        result = MachineResult(
            total_cycles=100,
            core_busy={0: 50, 1: 10},
            invocations={},
            exit_counts={},
            messages=0,
            retired_objects=0,
            stale_invocations=0,
            lock_failures=0,
            stdout="",
            core_death_cycles={1: 20},
        )
        # Core 1 was only alive for 20 of the 100 cycles.
        assert result.busy_fraction() == pytest.approx(60 / 120)

    def test_no_deaths_matches_naive_mean(self):
        result = MachineResult(
            total_cycles=100,
            core_busy={0: 50, 1: 10},
            invocations={},
            exit_counts={},
            messages=0,
            retired_objects=0,
            stale_invocations=0,
            lock_failures=0,
            stdout="",
        )
        assert result.busy_fraction() == pytest.approx(60 / 200)

    def test_crash_run_populates_death_cycles(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        config = MachineConfig(fault_plan=FaultPlan.single_crash(1, MIDRUN_CYCLE))
        result = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        assert result.core_death_cycles == {1: MIDRUN_CYCLE}
        # The fault-aware fraction beats the naive one: the dead core's
        # post-crash idle window no longer dilutes the mean.
        naive = sum(result.core_busy.values()) / (
            len(result.core_busy) * result.total_cycles
        )
        assert result.busy_fraction() > naive


class TestAdaptiveIntegration:
    def test_resilient_adaptive_degrades_after_detected_crash(
        self, keyword_compiled
    ):
        executable = AdaptiveExecutable(
            keyword_compiled,
            num_cores=4,
            profile_every=100,  # keep synthesis out of the picture
            resilience=ResilienceConfig(heartbeat_interval=300),
        )
        executable.layout = quad_layout(keyword_compiled)
        plan = FaultPlan.single_crash(1, MIDRUN_CYCLE)
        result = executable.run(["12"], fault_plan=plan)
        assert result.recovery.detections == 1
        assert result.stdout == "total=24"
        # The next run's layout no longer targets the dead core.
        assert 1 not in executable.layout.cores_used()
        healthy = executable.run(["12"])
        assert healthy.stdout == "total=24"
        assert healthy.core_death_cycles is None

    def test_watchdog_uses_field_profile(self, keyword_compiled):
        executable = AdaptiveExecutable(
            keyword_compiled,
            num_cores=4,
            profile_every=1,
            resilience=ResilienceConfig(deadline_multiplier=100.0),
        )
        executable.layout = quad_layout(keyword_compiled)
        first = executable.run(["8"])  # seeds the field profile
        second = executable.run(["8"])  # watchdog now armed from it
        assert first.stdout == second.stdout == "total=16"
        assert second.recovery.watchdog_preemptions == 0
