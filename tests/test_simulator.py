"""Scheduling simulator tests (paper §4.4)."""

import pytest

from repro.core import run_layout, single_core_layout
from repro.runtime.profiler import ProfileData
from repro.schedule.layout import Layout
from repro.schedule.simulator import ExitChooser, simulate


def quad_layout(compiled):
    mapping = {t: [0] for t in compiled.info.tasks}
    mapping["processText"] = [0, 1, 2, 3]
    return Layout.make(4, mapping)


class TestExitChooser:
    @staticmethod
    def profile_with(task, sequence):
        profile = ProfileData()
        for exit_id in sequence:
            profile.record_invocation(task, exit_id, 10)
        return profile

    def test_single_exit(self):
        profile = self.profile_with("t", [1, 1, 1])
        chooser = ExitChooser(profile)
        assert chooser.choose("t", None) == 1

    def test_sequence_replayed_exactly(self):
        sequence = [2, 2, 2, 1, 2, 2, 3]
        profile = self.profile_with("t", sequence)
        chooser = ExitChooser(profile)
        assert [chooser.choose("t", None) for _ in sequence] == sequence

    def test_terminal_exit_at_period_boundary(self):
        # The keyword/merge pattern: 7 continues then one finish.
        sequence = [2] * 7 + [1]
        profile = self.profile_with("t", sequence)
        chooser = ExitChooser(profile)
        picks = [chooser.choose("t", None) for _ in range(8)]
        assert picks == sequence

    def test_beyond_sequence_falls_back_proportionally(self):
        sequence = [2] * 9 + [1]
        profile = self.profile_with("t", sequence)
        chooser = ExitChooser(profile)
        picks = [chooser.choose("t", None) for _ in range(30)]
        # After the recorded sequence, the chooser keeps the 9:1 mix.
        assert picks[:10] == sequence
        tail = picks[10:]
        assert tail.count(1) in (1, 2, 3)
        assert tail.count(2) > tail.count(1)

    def test_per_object_hint_tracks_objects_independently(self):
        sequence = [2, 1] * 5
        profile = self.profile_with("t", sequence)
        chooser = ExitChooser(profile, hints={"t": "per_object"})
        first_obj = [chooser.choose("t", 100) for _ in range(2)]
        second_obj = [chooser.choose("t", 200) for _ in range(2)]
        assert first_obj == second_obj


class TestEstimates:
    def test_single_core_estimate_close_to_real(
        self, keyword_compiled, keyword_profile
    ):
        layout = single_core_layout(keyword_compiled)
        estimate = simulate(keyword_compiled, layout, keyword_profile)
        real = run_layout(keyword_compiled, layout, ["6"])
        error = abs(estimate.total_cycles - real.total_cycles) / real.total_cycles
        assert error < 0.05

    def test_multi_core_estimate_close_to_real(
        self, keyword_compiled, keyword_profile
    ):
        layout = quad_layout(keyword_compiled)
        estimate = simulate(keyword_compiled, layout, keyword_profile)
        real = run_layout(keyword_compiled, layout, ["6"])
        error = abs(estimate.total_cycles - real.total_cycles) / real.total_cycles
        assert error < 0.15

    def test_invocation_counts_match_profile(
        self, keyword_compiled, keyword_profile
    ):
        result = simulate(
            keyword_compiled, quad_layout(keyword_compiled), keyword_profile
        )
        assert result.invocations == {
            "startup": 1,
            "processText": 6,
            "mergeIntermediateResult": 6,
        }

    def test_simulation_terminates_and_is_finished(
        self, keyword_compiled, keyword_profile
    ):
        result = simulate(
            keyword_compiled, quad_layout(keyword_compiled), keyword_profile
        )
        assert result.finished
        assert 0 < result.utilization <= 1

    def test_deterministic(self, keyword_compiled, keyword_profile):
        layout = quad_layout(keyword_compiled)
        first = simulate(keyword_compiled, layout, keyword_profile)
        second = simulate(keyword_compiled, layout, keyword_profile)
        assert first.total_cycles == second.total_cycles


class TestTrace:
    def test_trace_events_well_formed(self, keyword_compiled, keyword_profile):
        result = simulate(
            keyword_compiled, quad_layout(keyword_compiled), keyword_profile
        )
        assert result.trace
        for event in result.trace:
            assert event.end > event.start
            assert event.data_ready <= event.start
            assert 0 <= event.core < 4

    def test_no_core_overlap(self, keyword_compiled, keyword_profile):
        result = simulate(
            keyword_compiled, quad_layout(keyword_compiled), keyword_profile
        )
        for core in range(4):
            events = result.events_on_core(core)
            for before, after in zip(events, events[1:]):
                assert before.end <= after.start

    def test_data_edges_reference_earlier_events(
        self, keyword_compiled, keyword_profile
    ):
        result = simulate(
            keyword_compiled, quad_layout(keyword_compiled), keyword_profile
        )
        by_id = {e.event_id: e for e in result.trace}
        for event in result.trace:
            for producer_id, _ in event.inputs:
                if producer_id is not None:
                    assert by_id[producer_id].end <= event.start

    def test_total_is_last_end(self, keyword_compiled, keyword_profile):
        result = simulate(
            keyword_compiled, quad_layout(keyword_compiled), keyword_profile
        )
        assert result.total_cycles == max(e.end for e in result.trace)


class TestStaleHandling:
    def test_max_events_marks_unfinished(self, keyword_compiled, keyword_profile):
        result = simulate(
            keyword_compiled,
            single_core_layout(keyword_compiled),
            keyword_profile,
            max_events=3,
        )
        assert not result.finished
