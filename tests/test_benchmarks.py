"""Benchmark program validation.

Each of the paper's six benchmarks (plus the §2 example) must compute the
same answer in all three execution modes: sequential (the C-baseline
substitute), single-core Bamboo, and multi-core Bamboo. Small inputs keep
these tests fast; the full-size runs live in ``benchmarks/``.
"""

import pytest

from repro.bench import PAPER_BENCHMARKS, benchmark_names, get_spec, load_benchmark
from repro.core import (
    SynthesisOptions,
    profile_program,
    run_layout,
    run_sequential,
    single_core_layout,
    synthesize_layout,
)
from repro.schedule.anneal import AnnealConfig

#: Reduced workloads for fast test runs (same shape, less work).
SMALL_ARGS = {
    "Tracking": ["12", "6"],
    "KMeans": ["6", "8", "3"],
    "MonteCarlo": ["10", "40"],
    "FilterBank": ["8", "24"],
    "Fractal": ["16"],
    "Series": ["10", "12"],
    "Keyword": ["8"],
}


@pytest.mark.parametrize("name", benchmark_names())
def test_compiles_and_analyzes(name):
    compiled = load_benchmark(name)
    assert compiled.ir_program.tasks
    assert "startup" in compiled.info.tasks


@pytest.mark.parametrize("name", benchmark_names())
def test_sequential_matches_single_core(name):
    compiled = load_benchmark(name)
    args = SMALL_ARGS[name]
    seq = run_sequential(compiled, args)
    one = run_layout(compiled, single_core_layout(compiled), args)
    assert seq.stdout == one.stdout
    assert seq.stdout  # every benchmark prints its result


@pytest.mark.parametrize("name", benchmark_names())
def test_multi_core_matches_sequential(name):
    compiled = load_benchmark(name)
    args = SMALL_ARGS[name]
    seq = run_sequential(compiled, args)
    profile = profile_program(compiled, args)
    config = AnnealConfig(
        initial_candidates=3, max_iterations=4, max_evaluations=40, patience=1,
        continue_probability=0.1,
    )
    report = synthesize_layout(compiled, profile, num_cores=8, options=SynthesisOptions(seed=0, anneal=config))
    many = run_layout(compiled, report.layout, args)
    assert many.stdout == seq.stdout


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_benchmark_overhead_in_paper_range(name):
    # §5.5: Bamboo overhead vs the C baseline between 0.1% and 10.6% at
    # benchmark-scale inputs. Use the real workloads but only for the two
    # cheap single-core runs.
    compiled = load_benchmark(name)
    args = list(get_spec(name).args)
    seq = run_sequential(compiled, args)
    one = run_layout(compiled, single_core_layout(compiled), args)
    overhead = (one.total_cycles - seq.cycles) / seq.cycles
    assert 0.0 < overhead < 0.15


@pytest.mark.parametrize("name", PAPER_BENCHMARKS)
def test_benchmark_tasks_have_fine_grained_locks(name):
    # All six ports keep task parameters disjoint, like the paper's.
    compiled = load_benchmark(name)
    assert compiled.lock_plan.shared_lock_tasks() == []


def test_invocation_counts_fractal():
    compiled = load_benchmark("Fractal")
    result = run_layout(compiled, single_core_layout(compiled), ["16"])
    assert result.invocations["computeRow"] == 16
    assert result.invocations["mergeRow"] == 16


def test_invocation_counts_kmeans():
    compiled = load_benchmark("KMeans")
    result = run_layout(compiled, single_core_layout(compiled), ["6", "8", "3"])
    assert result.invocations["computeChunk"] == 18  # chunks * rounds
    assert result.invocations["aggregate"] == 18
    assert result.invocations["refresh"] == 12  # chunks * (rounds - 1)


def test_invocation_counts_tracking():
    compiled = load_benchmark("Tracking")
    result = run_layout(compiled, single_core_layout(compiled), ["12", "6"])
    assert result.invocations["blurStrip"] == 12
    assert result.invocations["gradientStrip"] == 12
    assert result.invocations["scoreStrip"] == 12
    assert result.invocations["collectFeatures"] == 12
    assert result.invocations["trackFeatures"] == 6
    assert result.invocations["mergeTracks"] == 6


def test_montecarlo_deterministic_across_modes():
    compiled = load_benchmark("MonteCarlo")
    args = ["10", "40"]
    outputs = {
        run_sequential(compiled, args).stdout,
        run_layout(compiled, single_core_layout(compiled), args).stdout,
    }
    assert len(outputs) == 1  # the in-language LCG makes runs reproducible


def test_workload_scaling_monotone():
    compiled = load_benchmark("Series")
    small = run_sequential(compiled, ["6", "10"])
    large = run_sequential(compiled, ["12", "10"])
    assert large.cycles > small.cycles
