"""The distributed layout search (:mod:`repro.search.dist`).

Contract under test, mirroring the suite layering of
``test_search_resilience.py`` one level up: shards are pure, the
reduction is input-deterministic, and therefore the distributed search
is **bit-identical to the single-host serial baseline** no matter how
many workers run, steal, crash, or disconnect — and a coordinator
killed mid-job resumes from its frontier checkpoint to the same answer.

The full fault matrix (worker SIGKILL, dropped/garbled connections,
forced lease expiries, interrupt + resume) lives in the
machine-checked harness :func:`repro.search.dist.chaos.run_dist_chaos`,
driven by CI; here we keep per-test workloads tiny and use in-thread
workers wherever the fault does not require killing a real process.
"""

import dataclasses
import hashlib
import threading

import pytest

from test_search import report_fingerprint

from repro.bench import get_spec, load_source
from repro.core import (
    DistOptions,
    SynthesisOptions,
    compile_program,
    profile_program,
    synthesize_layout,
)
from repro.schedule.anneal import AnnealConfig
from repro.search import DistChaosPlan, DistFault
from repro.search.dist import (
    DistCoordinator,
    DistError,
    DistProtocolError,
    JobContext,
    LeasePolicy,
    describe_dist_result,
    execute_shard,
    make_restart_shards,
    merge_shard_results,
    result_key,
    run_dist_search,
    run_dist_worker,
    run_serial_baseline,
)
from repro.search.dist.messages import (
    DIST_PROTOCOL,
    JOB_FORMAT,
    SHARD_FORMAT,
    check_hello,
    pack_payload,
    unpack_payload,
)

#: one shard finishes well under a second with this schedule
SMALL_TEMPLATE = AnnealConfig(
    initial_candidates=1,
    max_iterations=3,
    max_evaluations=30,
    patience=2,
    continue_probability=0.2,
)

_JOB = {}


def small_job(restarts=4):
    """A cached (context, shards) pair for the Keyword benchmark."""
    if "context" not in _JOB:
        spec = get_spec("Keyword")
        source = load_source("Keyword")
        compiled = compile_program(source, spec.filename)
        profile = profile_program(compiled, ["8"])
        _JOB["context"] = JobContext(
            compiled=compiled,
            profile=profile,
            num_cores=4,
            source_digest=hashlib.sha256(source.encode()).hexdigest(),
        )
    context = _JOB["context"]
    key = ("shards", restarts)
    if key not in _JOB:
        _JOB[key] = make_restart_shards(
            SMALL_TEMPLATE, restarts, base_seed=1234
        )
    return context, _JOB[key]


def baseline_key(restarts=4):
    key = ("baseline", restarts)
    if key not in _JOB:
        context, shards = small_job(restarts)
        _JOB[key] = run_serial_baseline(context, shards).key()
    return _JOB[key]


def worker_thread(port, name="t0"):
    """A real protocol worker, in-process (no crash faults here)."""
    thread = threading.Thread(
        target=run_dist_worker,
        args=("127.0.0.1", port, name),
        kwargs=dict(idle_timeout=30.0),
        daemon=True,
    )
    thread.start()
    return thread


class TestMessages:
    def test_payload_round_trip(self):
        packed = pack_payload(JOB_FORMAT, {"answer": 42})
        assert unpack_payload(packed, JOB_FORMAT) == {"answer": 42}

    def test_garbled_payload_refused_before_unpickling(self):
        import base64

        record = bytearray(
            base64.b64decode(pack_payload(JOB_FORMAT, {"answer": 42}))
        )
        record[-1] ^= 0xFF  # flip one pickle byte; digest must catch it
        garbled = base64.b64encode(bytes(record)).decode("ascii")
        with pytest.raises(DistProtocolError) as excinfo:
            unpack_payload(garbled, JOB_FORMAT)
        assert "digest" in str(excinfo.value)

    def test_cross_format_payload_names_both_formats(self):
        packed = pack_payload(JOB_FORMAT, {"answer": 42})
        with pytest.raises(DistProtocolError) as excinfo:
            unpack_payload(packed, SHARD_FORMAT)
        assert excinfo.value.code == "format_mismatch"
        assert JOB_FORMAT in str(excinfo.value)
        assert SHARD_FORMAT in str(excinfo.value)

    def test_non_base64_payload_refused(self):
        with pytest.raises(DistProtocolError) as excinfo:
            unpack_payload("!!! not base64 !!!", JOB_FORMAT)
        assert excinfo.value.code == "not_record"

    def test_hello_validation(self):
        assert check_hello(
            {"op": "hello", "proto": DIST_PROTOCOL, "worker": "w0", "pid": 7}
        ) == ("w0", 7)
        with pytest.raises(DistProtocolError) as excinfo:
            check_hello({"op": "hello", "proto": "repro.search/dist-v0"})
        assert excinfo.value.code == "proto_mismatch"
        assert DIST_PROTOCOL in str(excinfo.value)
        with pytest.raises(DistProtocolError) as excinfo:
            check_hello({"op": "result"})
        assert excinfo.value.code == "bad_hello"


class TestShards:
    def test_make_restart_shards_is_deterministic(self):
        a = make_restart_shards(SMALL_TEMPLATE, 6, base_seed=1234)
        b = make_restart_shards(SMALL_TEMPLATE, 6, base_seed=1234)
        assert [s.shard_id for s in a] == list(range(6))
        assert [s.config.seed for s in a] == [s.config.seed for s in b]
        assert len({s.config.seed for s in a}) == 6
        other = make_restart_shards(SMALL_TEMPLATE, 6, base_seed=99)
        assert [s.config.seed for s in a] != [s.config.seed for s in other]

    def test_shard_execution_is_pure(self):
        context, shards = small_job()
        first = execute_shard(context, shards[0])
        again = execute_shard(context, shards[0])
        assert result_key(first) == result_key(again)
        assert first.wall_seconds >= 0.0

    def test_merge_is_order_independent_and_tie_breaks_low(self):
        context, shards = small_job(3)
        results = {
            s.shard_id: execute_shard(context, s) for s in shards
        }
        forward = merge_shard_results(dict(sorted(results.items())), 3)
        backward = merge_shard_results(
            dict(sorted(results.items(), reverse=True)), 3
        )
        assert forward.key() == backward.key()
        # A manufactured tie: shard 2 claims shard 0's winning cycles.
        tied = dict(results)
        tied[2] = dataclasses.replace(
            results[2], best_cycles=forward.best_cycles
        )
        merged = merge_shard_results(tied, 3)
        lowest = min(
            sid
            for sid, r in tied.items()
            if r.best_cycles == merged.best_cycles
        )
        assert (
            merged.best_layout.as_dict()
            == tied[lowest].best_layout.as_dict()
        )

    def test_describe_has_no_wall_clocks(self):
        # CI diffs this output across execution modes byte for byte.
        context, shards = small_job(2)
        text = describe_dist_result(run_serial_baseline(context, shards))
        assert "wall" not in text and "second" not in text


class TestBitIdentity:
    def test_zero_worker_dist_matches_serial(self):
        context, shards = small_job()
        result = run_dist_search(context, shards, workers=0)
        assert result.key() == baseline_key()
        assert result.stats["local_executions"] == len(shards)
        assert result.stats["dispatches"] == 0

    def test_threaded_workers_match_serial(self):
        context, shards = small_job()
        coordinator = DistCoordinator(
            context, shards, expect_workers=2, degrade_after=30.0
        )
        host, port = coordinator.start()
        threads = [worker_thread(port, f"t{i}") for i in range(2)]
        try:
            result = coordinator.run()
        finally:
            coordinator.stop()
        for thread in threads:
            thread.join(timeout=10.0)
        assert result.key() == baseline_key()
        assert result.stats["workers_joined"] == 2
        assert result.stats["shards_completed"] == len(shards)

    def test_subprocess_workers_under_chaos_match_serial(self):
        # Real worker processes, a crash and a forced lease expiry: the
        # canonical smoke the CI job runs through the CLI.
        context, shards = small_job()
        plan = DistChaosPlan.scripted(crash=(2,), expire=(3,))
        result = run_dist_search(
            context,
            shards,
            workers=2,
            lease=LeasePolicy(timeout_floor=2.0),
            chaos_plan=plan,
        )
        assert result.key() == baseline_key()
        stats = result.stats
        assert stats["injected_crashes"] == 1
        assert stats["worker_crashes"] >= 1
        assert stats["retries"] >= 1
        assert stats["forced_lease_expiries"] == 1
        assert stats["steals"] >= 1


class TestLeases:
    def test_lease_policy_validates(self):
        with pytest.raises(ValueError):
            LeasePolicy(timeout_floor=0.0).validate()
        with pytest.raises(ValueError):
            LeasePolicy(ewma_alpha=0.0).validate()
        with pytest.raises(ValueError):
            LeasePolicy(max_retries=0).validate()

    def test_deadline_floor_and_ewma(self):
        policy = LeasePolicy(timeout_floor=10.0, timeout_mult=8.0)
        assert policy.deadline_seconds(None) == 10.0
        assert policy.deadline_seconds(0.5) == 10.0  # floor dominates
        assert policy.deadline_seconds(5.0) == 40.0

    def test_forced_expiry_steals_and_discards_duplicate(self):
        context, shards = small_job()
        coordinator = DistCoordinator(
            context,
            shards,
            lease=LeasePolicy(timeout_floor=2.0),
            expect_workers=1,
            degrade_after=30.0,
            chaos_plan=DistChaosPlan.scripted(expire=(1,)),
        )
        host, port = coordinator.start()
        thread = worker_thread(port)
        try:
            result = coordinator.run()
        finally:
            coordinator.stop()
        thread.join(timeout=10.0)
        assert result.key() == baseline_key()
        stats = result.stats
        assert stats["forced_lease_expiries"] == 1
        assert stats["lease_expiries"] >= 1
        assert stats["steals"] >= 1
        # First result per shard won; any second execution of the stolen
        # shard was discarded or abandoned, never double-counted.
        assert stats["shards_completed"] == len(shards)
        assert coordinator.stats.check_accounting() == []


class TestDegradation:
    def test_empty_worker_set_degrades_to_local(self):
        context, shards = small_job()
        coordinator = DistCoordinator(
            context, shards, expect_workers=2, degrade_after=0.2
        )
        try:
            result = coordinator.run()
        finally:
            coordinator.stop()
        assert result.key() == baseline_key()
        assert result.stats["degraded"] is True
        assert result.stats["local_executions"] == len(shards)
        assert result.stats["workers_joined"] == 0


class TestFrontierResume:
    def _interrupted_coordinator(self, context, shards, path, completed=2):
        """Runs ``completed`` shards locally, then vanishes without a
        clean shutdown — the coordinator-kill scenario."""
        first = DistCoordinator(
            context, shards, checkpoint_path=path, expect_workers=0
        )
        while first.stats.shards_completed < completed:
            assert first._maybe_run_local()
        assert first.stats.frontier_checkpoints >= 1
        return first

    def test_killed_coordinator_resumes_bit_identically(self, tmp_path):
        context, shards = small_job()
        path = str(tmp_path / "frontier.ckpt")
        self._interrupted_coordinator(context, shards, path)
        second = DistCoordinator(
            context,
            shards,
            checkpoint_path=path,
            resume=True,
            expect_workers=0,
        )
        try:
            result = second.run()
        finally:
            second.stop()
        assert result.stats["resumed_shards"] == 2
        assert result.stats["local_executions"] == len(shards) - 2
        assert result.key() == baseline_key()

    def test_foreign_frontier_refused_with_typed_error(self, tmp_path):
        context, shards = small_job()
        path = str(tmp_path / "frontier.ckpt")
        self._interrupted_coordinator(context, shards, path)
        # A different shard list is a different job digest.
        with pytest.raises(DistError, match="different"):
            DistCoordinator(
                context,
                shards[:-1],
                checkpoint_path=path,
                resume=True,
            )

    def test_resume_without_checkpoint_path_refused(self):
        context, shards = small_job()
        with pytest.raises(DistError, match="checkpoint path"):
            DistCoordinator(context, shards, resume=True)


class TestDistChaosPlan:
    def test_sweep_plans_are_deterministic(self):
        for index in range(4):
            a = DistChaosPlan.make(index, seed=index, horizon=6)
            b = DistChaosPlan.make(index, seed=index, horizon=6)
            assert a == b

    def test_plan_zero_is_the_control(self):
        plan = DistChaosPlan.make(0, seed=7, horizon=6)
        assert plan.is_empty()
        assert plan.dispatch_faults == () and plan.wire_faults == ()
        assert not plan.kill_worker

    def test_scripted_maps_cli_flags(self):
        plan = DistChaosPlan.scripted(
            crash=(2,), hang=(4,), expire=(5,), hang_seconds=1.5
        )
        assert plan.dispatch_fault(2) == ("crash_worker", None)
        assert plan.dispatch_fault(4) == ("hang_worker", 1.5)
        assert plan.dispatch_fault(5) == ("expire_lease", None)
        assert plan.dispatch_fault(1) is None
        assert not plan.is_empty()

    def test_fault_families_rotate_across_a_sweep(self):
        plans = [
            DistChaosPlan.make(index, seed=index, horizon=8)
            for index in range(6)
        ]
        assert any(p.wire_faults for p in plans)
        assert any(p.kill_worker for p in plans)
        assert any(p.dispatch_faults for p in plans)


class TestPipelineIntegration:
    def _dist_report(self, **dist_kw):
        context, _ = small_job()
        options = SynthesisOptions(
            anneal=SMALL_TEMPLATE,
            dist=DistOptions(restarts=3, **dist_kw),
        )
        return synthesize_layout(
            context.compiled, context.profile, 4, options=options
        )

    def test_dist_options_route_through_the_pipeline(self):
        report = self._dist_report()
        dist = report.search_metrics["dist"]
        assert dist["shards_completed"] == 3
        assert report.history  # merged incumbent trajectory
        assert report.estimated_cycles > 0

    def test_pipeline_dist_runs_are_bit_identical(self):
        first = self._dist_report()
        second = self._dist_report()
        assert report_fingerprint(first) == report_fingerprint(second)


class TestCli:
    def test_dist_parser_registers_all_three_commands(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["dist-coordinator", "Keyword", "--serial", "--restarts", "2"]
        )
        assert args.serial and args.restarts == 2
        args = parser.parse_args(["dist-worker", "--port", "9999"])
        assert args.port == 9999
        args = parser.parse_args(["dist-chaos", "2", "--seed", "5"])
        assert args.plans == 2 and args.seed == 5

    def test_serial_cli_run(self, capsys, tmp_path):
        from repro.cli import main

        metrics = tmp_path / "metrics.json"
        assert (
            main(
                [
                    "dist-coordinator",
                    "Keyword",
                    "8",
                    "--serial",
                    "--cores",
                    "4",
                    "--restarts",
                    "2",
                    "--initial-candidates",
                    "1",
                    "--max-iterations",
                    "2",
                    "--max-evaluations",
                    "20",
                    "--metrics-out",
                    str(metrics),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "best" in out or "cycles" in out
        import json

        snapshot = json.loads(metrics.read_text())
        assert "dist" in snapshot
