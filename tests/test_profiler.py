"""Profile data model tests."""

import pytest

from repro.runtime.profiler import ProfileData


def small_profile():
    profile = ProfileData()
    profile.record_invocation("t", 1, 100, {0: 2})
    profile.record_invocation("t", 1, 120, {0: 2})
    profile.record_invocation("t", 2, 50)
    profile.record_invocation("u", 1, 10)
    profile.run_cycles = 1234
    return profile


class TestRecording:
    def test_invocations(self):
        profile = small_profile()
        assert profile.invocations("t") == 3
        assert profile.invocations("u") == 1
        assert profile.invocations("missing") == 0

    def test_exit_ids(self):
        assert small_profile().exit_ids("t") == [1, 2]

    def test_probabilities(self):
        profile = small_profile()
        assert profile.exit_probability("t", 1) == pytest.approx(2 / 3)
        assert profile.exit_probability("t", 2) == pytest.approx(1 / 3)
        assert profile.exit_probability("t", 9) == 0.0
        assert profile.exit_probability("missing", 1) == 0.0

    def test_avg_cycles(self):
        profile = small_profile()
        assert profile.avg_cycles("t", 1) == pytest.approx(110.0)
        assert profile.avg_cycles("t", 2) == pytest.approx(50.0)
        assert profile.avg_cycles("t", 9) == 0.0

    def test_avg_task_cycles_weighted(self):
        profile = small_profile()
        assert profile.avg_task_cycles("t") == pytest.approx((100 + 120 + 50) / 3)

    def test_avg_allocs(self):
        profile = small_profile()
        assert profile.avg_allocs("t", 1) == {0: 2.0}
        assert profile.avg_allocs("t", 2) == {}

    def test_exit_sequence(self):
        assert small_profile().exit_sequence("t") == [1, 1, 2]

    def test_exit_count(self):
        assert small_profile().exit_count("t", 1) == 2


class TestSerialization:
    def test_round_trip(self):
        profile = small_profile()
        restored = ProfileData.from_dict(profile.to_dict())
        assert restored.run_cycles == 1234
        assert restored.invocations("t") == 3
        assert restored.exit_sequence("t") == [1, 1, 2]
        assert restored.avg_cycles("t", 1) == pytest.approx(110.0)
        assert restored.avg_allocs("t", 1) == {0: 2.0}

    def test_round_trip_is_fixpoint(self):
        profile = small_profile()
        once = ProfileData.from_dict(profile.to_dict()).to_dict()
        twice = ProfileData.from_dict(once).to_dict()
        assert once == twice


class TestRealProfile(object):
    def test_keyword_profile_contents(self, keyword_profile):
        assert keyword_profile.invocations("startup") == 1
        assert keyword_profile.invocations("processText") == 6
        assert keyword_profile.invocations("mergeIntermediateResult") == 6
        # startup allocates 6 Texts and 1 Results at two distinct sites.
        allocs = keyword_profile.avg_allocs("startup", 1)
        assert sorted(allocs.values()) == [1.0, 6.0]

    def test_merge_sequence_ends_with_finishing_exit(self, keyword_profile):
        sequence = keyword_profile.exit_sequence("mergeIntermediateResult")
        assert sequence == [2, 2, 2, 2, 2, 1]
