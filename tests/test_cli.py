"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main

from conftest import KEYWORD_SOURCE


@pytest.fixture
def program_file(tmp_path):
    path = tmp_path / "keyword.bam"
    path.write_text(KEYWORD_SOURCE)
    return str(path)


class TestCompileCommand:
    def test_prints_tasks_and_locks(self, program_file, capsys):
        assert main(["compile", program_file]) == 0
        out = capsys.readouterr().out
        assert "processText" in out
        assert "lock plan" in out
        assert "fine-grained" in out

    def test_missing_file(self, capsys):
        assert main(["compile", "/nonexistent.bam"]) == 2
        assert "error" in capsys.readouterr().err

    def test_bad_program_reports_error(self, tmp_path, capsys):
        path = tmp_path / "bad.bam"
        path.write_text("class A { int x; int x; }")
        assert main(["compile", str(path)]) == 1
        assert "duplicate field" in capsys.readouterr().err


class TestSeqCommand:
    def test_runs_and_prints(self, program_file, capsys):
        assert main(["seq", program_file, "4"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "total=8"
        assert "cycles" in captured.err


class TestRunCommand:
    def test_single_core(self, program_file, capsys):
        assert main(["run", program_file, "4", "--cores", "1"]) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "total=8"

    def test_multi_core_with_synthesis(self, program_file, capsys):
        assert main(
            ["run", program_file, "6", "--cores", "4", "--verbose"]
        ) == 0
        captured = capsys.readouterr()
        assert captured.out.strip() == "total=12"
        assert "Layout on 4 cores" in captured.err
        assert "synthesis" in captured.err

    def test_checkpoint_then_resume_reproduces_the_run(
        self, program_file, tmp_path, capsys
    ):
        checkpoint = str(tmp_path / "search.ckpt")
        assert main(
            ["run", program_file, "6", "--cores", "4",
             "--checkpoint", checkpoint]
        ) == 0
        first = capsys.readouterr()
        assert (tmp_path / "search.ckpt").exists()
        assert main(
            ["run", program_file, "6", "--cores", "4",
             "--resume", checkpoint]
        ) == 0
        second = capsys.readouterr()
        assert second.out == first.out
        # the resumed synthesis lands on the same machine execution
        assert "cycles on 4 cores" in second.err

    def test_resume_from_missing_checkpoint_fails_cleanly(
        self, program_file, tmp_path, capsys
    ):
        missing = str(tmp_path / "absent.ckpt")
        assert main(
            ["run", program_file, "6", "--cores", "4", "--resume", missing]
        ) == 1
        assert "cannot read checkpoint" in capsys.readouterr().err

    def test_resume_from_corrupt_checkpoint_fails_cleanly(
        self, program_file, tmp_path, capsys
    ):
        path = tmp_path / "corrupt.ckpt"
        path.write_bytes(b"not a checkpoint at all\n")
        assert main(
            ["run", program_file, "6", "--cores", "4",
             "--resume", str(path)]
        ) == 1
        assert "error" in capsys.readouterr().err

    def test_host_chaos_sweep(self, program_file, capsys):
        assert main(
            ["run", program_file, "6", "--cores", "4", "--host-chaos", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert "host chaos" in out
        assert "all invariants held" in out

    def test_interrupt_reports_checkpoint_and_exits_130(
        self, program_file, tmp_path, capsys, monkeypatch
    ):
        import repro.core.pipeline as pipeline

        def interrupt(*args, **kwargs):
            raise KeyboardInterrupt

        monkeypatch.setattr(pipeline, "synthesize_layout", interrupt)
        monkeypatch.setattr("repro.cli.synthesize_layout", interrupt)
        checkpoint = str(tmp_path / "search.ckpt")
        assert main(
            ["run", program_file, "6", "--cores", "4",
             "--checkpoint", checkpoint]
        ) == 130
        err = capsys.readouterr().err
        assert "interrupted" in err
        assert f"--resume {checkpoint}" in err


class TestCstgCommand:
    def test_text_output(self, program_file, capsys):
        assert main(["cstg", program_file, "4"]) == 0
        out = capsys.readouterr().out
        assert "CSTG:" in out
        assert "Text:{process}" in out

    def test_dot_output(self, program_file, capsys):
        assert main(["cstg", program_file, "4", "--dot"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")


class TestBenchCommand:
    def test_unknown_benchmark(self, capsys):
        assert main(["bench", "Nope"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_small_bench_run(self, capsys):
        # Keyword is the cheapest benchmark; 4 cores keeps synthesis small.
        assert main(["bench", "Keyword", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "speedup vs Bamboo" in out
        assert "outputs match       : True" in out
