"""Visualization output tests."""

from repro.core import annotated_cstg
from repro.schedule.coregroup import build_group_graph, build_task_edges
from repro.schedule.critpath import compute_critical_path
from repro.schedule.layout import Layout
from repro.schedule.simulator import simulate
from repro.viz import (
    cstg_to_dot,
    render_critical_path,
    render_histogram,
    render_table,
    render_trace,
    taskflow_to_dot,
    trace_to_dot,
)


def test_cstg_dot_structure(keyword_compiled, keyword_profile):
    cstg = annotated_cstg(keyword_compiled, keyword_profile)
    dot = cstg_to_dot(cstg, title="keyword")
    assert dot.startswith('digraph "keyword"')
    assert dot.rstrip().endswith("}")
    assert "doublecircle" in dot  # allocatable states
    assert "processText" in dot
    assert "style=dashed" in dot  # new-object edges


def test_trace_dot_marks_critical_path(keyword_compiled, keyword_profile):
    layout = Layout.single_core(keyword_compiled.info.tasks)
    result = simulate(keyword_compiled, layout, keyword_profile)
    path = compute_critical_path(result)
    dot = trace_to_dot(result, path)
    assert "color=red" in dot
    assert "startup" in dot


def test_taskflow_dot(keyword_compiled, keyword_profile):
    cstg = annotated_cstg(keyword_compiled, keyword_profile)
    edges = build_task_edges(keyword_compiled.info, cstg, keyword_profile)
    groups = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
    dot = taskflow_to_dot(edges, groups)
    assert '"startup" -> "processText"' in dot
    assert "cluster_g" in dot  # merged locality group box


def test_render_trace_text(keyword_compiled, keyword_profile):
    layout = Layout.single_core(keyword_compiled.info.tasks)
    result = simulate(keyword_compiled, layout, keyword_profile)
    text = render_trace(result)
    assert "core 0:" in text
    assert "startup" in text


def test_render_critical_path(keyword_compiled, keyword_profile):
    layout = Layout.single_core(keyword_compiled.info.tasks)
    result = simulate(keyword_compiled, layout, keyword_profile)
    text = render_critical_path(compute_critical_path(result))
    assert "critical path" in text


def test_render_histogram():
    text = render_histogram([1, 1, 1, 2, 5, 9], bins=4, label="demo")
    assert "demo" in text
    assert "#" in text


def test_render_histogram_degenerate():
    assert "(no data)" in render_histogram([], label="empty")
    assert "all 3 values" in render_histogram([2, 2, 2], label="flat")


def test_render_table_alignment():
    text = render_table(["name", "value"], [["a", 1], ["long-name", 22]])
    lines = text.splitlines()
    assert lines[0].startswith("name")
    assert len(lines) == 4
