"""Observability (repro.obs): typed events, metrics, exporters.

The load-bearing claims:

1. **Cycle accounting tiles the run.** For every observed run — every
   benchmark, multi-core layouts, fault runs, resilience runs, chaos
   plans — each core's ``[0, makespan)`` partitions exactly into busy +
   blocked + idle + dead, machine-checked inside ``build_metrics`` (a
   violation raises, so merely finishing an observed run is the assert).
2. **Observation is free when off and inert when on.** ``observe=False``
   runs are bit-identical to the seed machine; ``observe=True`` changes
   nothing about the simulation, only attaches ``events``/``metrics``.
3. **The Chrome trace is schema-valid** — one track per core, properly
   nested spans, a span for every invocation.
4. **The legacy string trace is a pure derivation** of the typed stream.
"""

import json

import pytest

from repro.bench import benchmark_names, load_benchmark
from repro.core import (
    RunOptions,
    profile_program,
    run_layout,
    single_core_layout,
)
from repro.fault import CoreCrash, FaultPlan, LinkDegrade, TransientStall
from repro.lang.errors import ScheduleError
from repro.obs import (
    chrome_trace,
    cycle_accounting,
    legacy_line,
    occupancy_intervals,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from repro.obs.events import QueueDepth, TaskCommit, TaskDispatch, Tracer
from repro.resilience import ResilienceConfig, chaos_plan
from repro.runtime.machine import MachineConfig
from repro.schedule.layout import Layout
from repro.viz import render_machine_timeline

SMALL_ARGS = {
    "Tracking": ["12", "6"],
    "KMeans": ["6", "8", "3"],
    "MonteCarlo": ["10", "40"],
    "FilterBank": ["8", "24"],
    "Fractal": ["16"],
    "Series": ["10", "12"],
    "Keyword": ["8"],
}


def quad_layout(compiled):
    mapping = {t: [0] for t in compiled.info.tasks}
    mapping["processText"] = [0, 1, 2, 3]
    return Layout.make(4, mapping)


def fingerprint(result):
    """The seed-observable state of a run (events/metrics excluded)."""
    return (
        result.total_cycles,
        sorted(result.core_busy.items()),
        sorted(result.invocations.items()),
        sorted(result.exit_counts.items()),
        result.messages,
        result.retired_objects,
        result.stale_invocations,
        result.lock_failures,
        result.stdout,
    )


def accounting_ok(result):
    """True iff the metrics snapshot carries a verified accounting (the
    identity is machine-checked during the run; re-check it here)."""
    acc = result.metrics["accounting"]
    totals = sum(acc["totals"].values())
    assert totals == acc["makespan_x_cores"]
    for core, account in acc["per_core"].items():
        assert sum(account.values()) == result.total_cycles, core
        assert all(value >= 0 for value in account.values()), core
    return True


class TestCycleAccounting:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_every_benchmark_tiles(self, name):
        compiled = load_benchmark(name)
        result = run_layout(
            compiled,
            single_core_layout(compiled),
            SMALL_ARGS[name], options=RunOptions(machine=MachineConfig(observe=True)))
        assert result.events
        assert accounting_ok(result)

    def test_multi_core_tiles(self, keyword_compiled):
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(observe=True)))
        assert accounting_ok(result)
        # A 4-core run has idle somewhere (the merge task serializes).
        assert result.metrics["accounting"]["totals"]["idle"] > 0

    def test_fault_run_tiles_with_dead_cycles(self, keyword_compiled):
        plan = FaultPlan.make(
            [
                CoreCrash(core=1, cycle=2000),
                TransientStall(core=2, cycle=1200, duration=700),
                LinkDegrade(cycle=500, multiplier=2.0),
            ]
        )
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True, observe=True)))
        assert accounting_ok(result)
        acc = result.metrics["accounting"]
        assert acc["per_core"][1]["dead"] == result.total_cycles - 2000
        assert result.metrics["counters"]["crashes"] == 1
        assert result.metrics["counters"]["stalls"] == 1
        assert result.metrics["counters"]["link_events"] == 1

    def test_resilient_run_tiles(self, keyword_compiled):
        plan = FaultPlan.make(
            [
                CoreCrash(core=1, cycle=2000),
                TransientStall(core=2, cycle=1200, duration=2500),
            ]
        )
        config = MachineConfig(
            fault_plan=plan,
            resilience=ResilienceConfig(
                heartbeat_interval=300, suspicion_beats=3
            ),
            validate=True,
            observe=True,
        )
        result = run_layout(
            keyword_compiled, quad_layout(keyword_compiled), ["12"], options=RunOptions(machine=config))
        assert accounting_ok(result)
        counters = result.metrics["counters"]
        assert counters["heartbeats"] == result.recovery.heartbeats
        assert counters["detections"] == result.recovery.detections
        assert counters["crashes"] == result.recovery.crashes

    def test_watchdog_quarantine_run_tiles(self, keyword_compiled):
        resilience = ResilienceConfig(
            deadline_multiplier=1.0,
            fallback_deadline=5,
            max_retries=2,
            backoff_base=64,
        )
        config = MachineConfig(
            resilience=resilience, validate=True, observe=True
        )
        result = run_layout(
            keyword_compiled, quad_layout(keyword_compiled), ["4"], options=RunOptions(machine=config))
        assert accounting_ok(result)
        counters = result.metrics["counters"]
        assert counters["task_preemptions"] == result.recovery.watchdog_preemptions
        assert counters["task_retries"] == result.recovery.retries
        assert counters["quarantines"] == len(result.quarantined)

    @pytest.mark.parametrize("index", range(6))
    def test_chaos_plans_tile(self, index, keyword_compiled):
        resilience = ResilienceConfig()
        plan = chaos_plan(
            index,
            seed=1000 + index,
            cores=[0, 1, 2, 3],
            horizon=5000,
            suspicion_window=resilience.suspicion_window,
        )
        config = MachineConfig(
            fault_plan=plan,
            resilience=resilience,
            validate=True,
            observe=True,
        )
        result = run_layout(
            keyword_compiled, quad_layout(keyword_compiled), ["8"], options=RunOptions(machine=config))
        assert accounting_ok(result)

    def test_busy_fraction_agrees_with_metrics(self, keyword_compiled):
        # build_metrics recomputes busy_fraction term for term and raises
        # on disagreement; assert the published value matches too, in a
        # run with a real dead window (the live-window denominator path).
        plan = FaultPlan.single_crash(1, 2000)
        config = MachineConfig(
            fault_plan=plan,
            resilience=ResilienceConfig(heartbeat_interval=300, suspicion_beats=3),
            validate=True,
            observe=True,
        )
        result = run_layout(
            keyword_compiled, quad_layout(keyword_compiled), ["12"], options=RunOptions(machine=config))
        assert result.core_death_cycles == {1: 2000}
        assert result.metrics["busy_fraction"] == result.busy_fraction()

    def test_violations_raise(self):
        # Overlapping occupancy on one core must be rejected.
        events = [
            TaskDispatch(time=0, core=0, task="a", span=1, start=0, end=100,
                         formed_at=0, objects=1),
            TaskDispatch(time=50, core=0, task="b", span=2, start=50, end=150,
                         formed_at=0, objects=1),
        ]
        with pytest.raises(ScheduleError, match="overlapping"):
            cycle_accounting(events, 200, [0], {})
        # Negative queue depth must be rejected.
        with pytest.raises(ScheduleError, match="negative queue depth"):
            cycle_accounting(
                [QueueDepth(time=10, core=0, depth=-1)], 100, [0], {}
            )


class TestOffModeIdentity:
    def test_observe_off_bit_identical(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        plain = run_layout(keyword_compiled, layout, ["12"])
        observed = run_layout(
            keyword_compiled, layout, ["12"], options=RunOptions(machine=MachineConfig(observe=True)))
        assert fingerprint(plain) == fingerprint(observed)
        assert plain.events is None and plain.metrics is None
        assert observed.events and observed.metrics

    def test_observe_off_bit_identical_under_faults(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        plan = FaultPlan.make(
            [
                CoreCrash(core=1, cycle=2000),
                TransientStall(core=2, cycle=1200, duration=700),
            ]
        )
        plain = run_layout(
            keyword_compiled, layout, ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True)))
        observed = run_layout(
            keyword_compiled, layout, ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True, observe=True)))
        assert fingerprint(plain) == fingerprint(observed)
        assert plain.recovery == observed.recovery

    def test_default_config_has_no_tracer(self):
        assert MachineConfig().observe is False

    def test_event_stream_deterministic(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        config = MachineConfig(observe=True)
        first = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        second = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        assert first.events == second.events
        assert first.metrics == second.metrics


class TestLegacyTrace:
    def test_trace_derived_from_events(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        plan = FaultPlan.make(
            [
                CoreCrash(core=1, cycle=2000),
                TransientStall(core=2, cycle=1200, duration=700),
            ]
        )
        config = MachineConfig(
            fault_plan=plan, validate=True, record_trace=True, observe=True
        )
        result = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        derived = [
            line
            for line in (legacy_line(e) for e in result.events)
            if line is not None
        ]
        assert result.trace == derived
        joined = "\n".join(result.trace)
        assert "crash core 1" in joined
        assert "stall core 2 until 1900" in joined

    def test_commit_lines_exact_format(self, keyword_compiled):
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["4"], options=RunOptions(machine=MachineConfig(record_trace=True)))
        assert result.events is None  # record_trace alone stays legacy-only
        commits = [l for l in result.trace if " commit core " in l]
        assert len(commits) == sum(result.invocations.values())
        for line in commits:
            parts = line.split()
            assert parts[1] == "commit" and parts[2] == "core"
            int(parts[0]), int(parts[3]), int(parts[-1])  # numeric fields


class TestChromeExport:
    def test_schema_and_tracks(self, keyword_compiled, tmp_path):
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(observe=True)))
        path = tmp_path / "trace.json"
        write_chrome_trace(
            str(path), result.events, sorted(result.core_busy),
            makespan=result.total_cycles,
        )
        doc = json.loads(path.read_text())
        summary = validate_chrome_trace(doc)
        assert summary["tracks"] == [0, 1, 2, 3]
        # One span per invocation (no stalls/heartbeats in a clean run).
        assert summary["spans"] == sum(result.invocations.values())
        assert doc["otherData"]["makespan"] == result.total_cycles

    def test_fault_run_exports_instants(self, keyword_compiled):
        plan = FaultPlan.make(
            [
                CoreCrash(core=1, cycle=2000),
                TransientStall(core=2, cycle=1200, duration=700),
            ]
        )
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True, observe=True)))
        doc = chrome_trace(
            result.events, sorted(result.core_busy),
            makespan=result.total_cycles,
        )
        summary = validate_chrome_trace(doc)
        assert summary["instants"] >= 1  # the crash
        names = {e["name"] for e in doc["traceEvents"] if e["ph"] == "i"}
        assert "crash" in names
        spans = [e for e in doc["traceEvents"] if e["ph"] == "X"]
        assert any(e["cat"] == "stall" for e in spans)

    def test_validator_rejects_malformed(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({})
        with pytest.raises(ValueError, match="missing 'ph'"):
            validate_chrome_trace({"traceEvents": [{"pid": 0, "tid": 0}]})
        with pytest.raises(ValueError, match="missing 'ts'"):
            validate_chrome_trace(
                {"traceEvents": [{"ph": "X", "pid": 0, "tid": 0}]}
            )
        with pytest.raises(ValueError, match="negative span"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "X", "pid": 0, "tid": 0, "ts": 5, "dur": -1,
                         "name": "bad"}
                    ]
                }
            )
        with pytest.raises(ValueError, match="without nesting"):
            validate_chrome_trace(
                {
                    "traceEvents": [
                        {"ph": "X", "pid": 0, "tid": 0, "ts": 0, "dur": 10,
                         "name": "a"},
                        {"ph": "X", "pid": 0, "tid": 0, "ts": 5, "dur": 10,
                         "name": "b"},
                    ]
                }
            )

    def test_metrics_snapshot_roundtrips(self, keyword_compiled, tmp_path):
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(observe=True)))
        path = tmp_path / "metrics.json"
        write_metrics_snapshot(str(path), result.metrics)
        loaded = json.loads(path.read_text())
        assert loaded["schema"] == "repro.obs/metrics-v1"
        assert loaded["makespan"] == result.total_cycles
        assert loaded["counters"]["task_commits"] == sum(
            result.invocations.values()
        )


class TestOccupancyReplay:
    def test_truncate_cuts_intervals(self):
        tracer = Tracer()
        tracer.emit(
            TaskDispatch(time=0, core=0, task="a", span=1, start=0, end=100,
                         formed_at=0, objects=1)
        )
        from repro.obs.events import Truncate

        tracer.emit(Truncate(time=40, core=0, at=40))
        intervals = occupancy_intervals(tracer.events)
        assert intervals == {0: [(0, 40, "a", 1)]}

    def test_queue_samples_dedup(self):
        tracer = Tracer()
        tracer.queue_sample(10, 0, 0)  # implied initial 0: not emitted
        tracer.queue_sample(20, 0, 1)
        tracer.queue_sample(30, 0, 1)  # unchanged: not emitted
        tracer.queue_sample(40, 0, 0)
        depths = [e.depth for e in tracer.events]
        assert depths == [1, 0]


class TestTimelineRenderer:
    def test_renders_all_cores(self, keyword_compiled):
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(observe=True)))
        text = render_machine_timeline(
            result.events, result.total_cycles, cores=sorted(result.core_busy)
        )
        lines = text.splitlines()
        assert len(lines) == 5  # header + 4 cores
        assert all(line.startswith("core ") for line in lines[1:])
        assert "%" in lines[1]

    def test_dead_core_marked(self, keyword_compiled):
        plan = FaultPlan.single_crash(1, 2000)
        result = run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"], options=RunOptions(machine=MachineConfig(fault_plan=plan, validate=True, observe=True)))
        text = render_machine_timeline(
            result.events, result.total_cycles, cores=sorted(result.core_busy)
        )
        core1 = next(l for l in text.splitlines() if l.startswith("core   1"))
        assert "x" in core1


class TestCLI:
    def test_trace_and_metrics_out(self, tmp_path):
        from repro.cli import main

        source = tmp_path / "prog.bam"
        import conftest

        source.write_text(conftest.KEYWORD_SOURCE)
        trace_path = tmp_path / "t.json"
        metrics_path = tmp_path / "m.json"
        code = main(
            [
                "run", str(source), "8", "--cores", "4",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        doc = json.loads(trace_path.read_text())
        summary = validate_chrome_trace(doc)
        metrics = json.loads(metrics_path.read_text())
        # One track per machine core (synthesis may use fewer than --cores).
        assert summary["tracks"] == doc["otherData"]["cores"]
        assert len(summary["tracks"]) == metrics["cores"] >= 1
        assert metrics["schema"] == "repro.obs/metrics-v1"
        totals = metrics["accounting"]["totals"]
        assert sum(totals.values()) == metrics["accounting"]["makespan_x_cores"]


class TestWallClockTrackMerge:
    def test_profiled_run_merges_wall_track(self, keyword_compiled, tmp_path):
        """With a span-recording profiler active, a run's Chrome trace
        gains a wall-clock track (pid 1000, tids >= 10000) alongside the
        simulated per-core tracks — one Perfetto-loadable document."""
        from repro.obs import prof

        path = tmp_path / "trace.json"
        with prof.profiled(record_spans=True):
            result = run_layout(
                keyword_compiled,
                quad_layout(keyword_compiled),
                ["12"],
                options=RunOptions(
                    machine=MachineConfig(observe=True),
                    trace_path=str(path),
                ),
            )
        doc = json.loads(path.read_text())
        summary = validate_chrome_trace(doc)
        sim_tracks = [t for t in summary["tracks"] if t < 10_000]
        wall_tracks = [t for t in summary["tracks"] if t >= 10_000]
        assert sim_tracks == [0, 1, 2, 3]
        assert wall_tracks  # the profiler's track made it in
        names = {
            e["name"]
            for e in doc["traceEvents"]
            if e.get("pid") == 1000 and e["ph"] == "X"
        }
        assert "pipeline.run" in names
        # The simulated spans are still all there.
        machine_spans = [
            e
            for e in doc["traceEvents"]
            if e.get("pid") != 1000 and e["ph"] == "X"
        ]
        assert len(machine_spans) >= sum(result.invocations.values())

    def test_unprofiled_run_trace_unchanged(self, keyword_compiled, tmp_path):
        path = tmp_path / "trace.json"
        run_layout(
            keyword_compiled,
            quad_layout(keyword_compiled),
            ["12"],
            options=RunOptions(
                machine=MachineConfig(observe=True),
                trace_path=str(path),
            ),
        )
        doc = json.loads(path.read_text())
        assert all(e.get("pid") != 1000 for e in doc["traceEvents"])
