"""Combined state transition graph tests (paper Figure 3 structure)."""

import pytest

from repro.analysis.astate import AState
from repro.analysis.cstg import CSTG
from repro.core import annotated_cstg


class TestStructure:
    def test_nodes_cover_all_astg_states(self, keyword_compiled):
        cstg = keyword_compiled.cstg
        for astg in keyword_compiled.astgs.values():
            for state in astg.states:
                assert (astg.class_name, state) in cstg.nodes

    def test_alloc_sites_marked(self, keyword_compiled):
        cstg = keyword_compiled.cstg
        node = cstg.node(("Text", AState.make(["process"])))
        assert node.alloc_sites
        plain = cstg.node(("Text", AState.make([])))
        assert not plain.alloc_sites

    def test_new_edges_point_to_allocation_states(self, keyword_compiled):
        cstg = keyword_compiled.cstg
        startup_edges = cstg.new_edges_of_task("startup")
        destinations = {edge.dst for edge in startup_edges}
        assert ("Text", AState.make(["process"])) in destinations
        assert ("Results", AState.make([])) in destinations

    def test_transitions_of_task(self, keyword_compiled):
        edges = keyword_compiled.cstg.transitions_of_task("processText")
        assert len(edges) == 1
        assert edges[0].src == ("Text", AState.make(["process"]))
        assert edges[0].dst == ("Text", AState.make(["submit"]))

    def test_task_names(self, keyword_compiled):
        assert keyword_compiled.cstg.task_names() == [
            "mergeIntermediateResult",
            "processText",
            "startup",
        ]

    def test_guard_nodes_of_task(self, keyword_compiled):
        nodes = keyword_compiled.cstg.guard_nodes_of_task("mergeIntermediateResult")
        assert nodes[0] == [("Results", AState.make([]))]
        assert nodes[1] == [("Text", AState.make(["submit"]))]


class TestAnnotation:
    def test_probabilities_sum_to_one_per_task(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        merge_edges = [
            e
            for e in cstg.transitions_of_task("mergeIntermediateResult")
            if e.src[0] == "Results"
        ]
        total = sum(e.probability for e in merge_edges)
        assert total == pytest.approx(1.0)

    def test_edge_times_positive(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        for edge in cstg.transitions:
            assert edge.avg_time > 0

    def test_new_edge_counts(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        text_edges = [
            e
            for e in cstg.new_edges_of_task("startup")
            if e.dst[0] == "Text"
        ]
        assert len(text_edges) == 1
        # The profile ran with 6 sections.
        assert text_edges[0].avg_count == pytest.approx(6.0)

    def test_node_time_estimates(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        process_node = cstg.node(("Text", AState.make(["process"])))
        submit_node = cstg.node(("Text", AState.make(["submit"])))
        terminal = cstg.node(("Text", AState.make([])))
        # Estimates accumulate along the processing chain (Figure 3 labels).
        assert terminal.est_time == 0
        assert submit_node.est_time > 0
        assert process_node.est_time > submit_node.est_time

    def test_format_renders(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        text = cstg.format()
        assert "Text:{process}" in text
        assert "new-object edges" in text

    def test_unannotated_graph_builds(self, keyword_compiled):
        cstg = CSTG.build(
            keyword_compiled.info,
            keyword_compiled.ir_program,
            keyword_compiled.astgs,
        )
        assert cstg.transitions
