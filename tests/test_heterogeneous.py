"""Heterogeneous-core tests (the §4.6 extension: 'straightforward to
extend ... heterogeneous cores ... by simply extending the simulation')."""

import pytest

from repro.core import (
    RunOptions,
    SynthesisOptions,
    profile_program,
    run_layout,
    single_core_layout,
    synthesize_layout,
)
from repro.runtime.machine import MachineConfig
from repro.schedule.anneal import AnnealConfig
from repro.schedule.layout import Layout, core_speed, scale_duration
from repro.schedule.simulator import simulate


class TestSpeedHelpers:
    def test_default_speed(self):
        assert core_speed(None, 3) == 1.0
        assert core_speed({}, 3) == 1.0
        assert core_speed({1: 2.0}, 3) == 1.0
        assert core_speed({1: 2.0}, 1) == 2.0

    def test_scale_duration(self):
        assert scale_duration(100, 1.0) == 100
        assert scale_duration(100, 2.0) == 50
        assert scale_duration(100, 0.5) == 200
        assert scale_duration(1, 1000.0) == 1  # never below one cycle

    def test_speed_floor(self):
        assert core_speed({0: 0.0}, 0) > 0  # guards divide-by-zero


class TestMachine:
    def test_slow_machine_slower(self, keyword_compiled):
        layout = single_core_layout(keyword_compiled)
        normal = run_layout(keyword_compiled, layout, ["6"])
        slow = run_layout(
            keyword_compiled,
            layout,
            ["6"], options=RunOptions(machine=MachineConfig(core_speeds={0: 0.5})))
        assert slow.stdout == normal.stdout
        assert slow.total_cycles > normal.total_cycles * 1.5

    def test_fast_core_faster(self, keyword_compiled):
        layout = single_core_layout(keyword_compiled)
        normal = run_layout(keyword_compiled, layout, ["6"])
        fast = run_layout(
            keyword_compiled,
            layout,
            ["6"], options=RunOptions(machine=MachineConfig(core_speeds={0: 2.0})))
        assert fast.total_cycles < normal.total_cycles

    def test_simulator_models_speeds(self, keyword_compiled, keyword_profile):
        layout = single_core_layout(keyword_compiled)
        estimate = simulate(
            keyword_compiled, layout, keyword_profile, core_speeds={0: 0.5}
        )
        real = run_layout(
            keyword_compiled,
            layout,
            ["6"], options=RunOptions(machine=MachineConfig(core_speeds={0: 0.5})))
        error = abs(estimate.total_cycles - real.total_cycles) / real.total_cycles
        assert error < 0.06


class TestSynthesisSteersWork:
    def test_dsa_prefers_fast_cores(self, keyword_compiled, keyword_profile):
        # Cores 2 and 3 are 4x slower: the synthesized layout should place
        # the replicated worker predominantly on the fast half.
        speeds = {2: 0.25, 3: 0.25}
        config = AnnealConfig(
            initial_candidates=6,
            max_iterations=10,
            max_evaluations=150,
            patience=2,
            continue_probability=0.3,
        )
        report = synthesize_layout(
            keyword_compiled,
            keyword_profile,
            num_cores=4, options=SynthesisOptions(seed=3, anneal=config, core_speeds=speeds))
        worker_cores = set(report.layout.cores_of("processText"))
        fast = worker_cores & {0, 1}
        slow = worker_cores & {2, 3}
        assert fast, "workers must use the fast cores"
        # The machine agrees the heterogeneous-aware layout helps.
        hetero_run = run_layout(
            keyword_compiled,
            report.layout,
            ["6"], options=RunOptions(machine=MachineConfig(core_speeds=speeds)))
        slow_only = Layout.make(4, {
            "startup": [2],
            "processText": [2, 3],
            "mergeIntermediateResult": [3],
        })
        slow_run = run_layout(
            keyword_compiled,
            slow_only,
            ["6"], options=RunOptions(machine=MachineConfig(core_speeds=speeds)))
        assert hetero_run.total_cycles < slow_run.total_cycles
        assert hetero_run.stdout == slow_run.stdout
