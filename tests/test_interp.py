"""Interpreter semantics and cycle-accounting tests."""

import pytest

from repro.core import compile_program, run_sequential
from repro.lang.errors import RuntimeBambooError
from repro.runtime.interp import Interpreter, make_startup_object, _int_div, _int_rem
from repro.runtime.objects import Heap


def run_expr_program(body: str, args=("0",)):
    """Runs SeqMain.run with the given body; returns (result, stdout)."""
    source = (
        "class SeqMain { SeqMain() { } void run(String[] args) { %s } }\n"
        "task startup(StartupObject s in initialstate) "
        "{ taskexit(s: initialstate := false); }" % body
    )
    compiled = compile_program(source)
    result = run_sequential(compiled, list(args))
    return result


def run_and_print(body: str, args=("0",)) -> str:
    return run_expr_program(body, args).stdout


class TestIntegerSemantics:
    def test_arithmetic(self):
        assert run_and_print("System.printInt(2 + 3 * 4 - 1);") == "13"

    def test_division_truncates_toward_zero(self):
        assert run_and_print("System.printInt(-7 / 2);") == "-3"
        assert run_and_print("System.printInt(7 / -2);") == "-3"

    def test_remainder_sign_follows_dividend(self):
        assert run_and_print("System.printInt(-7 % 2);") == "-1"
        assert run_and_print("System.printInt(7 % -2);") == "1"

    def test_division_by_zero_raises(self):
        with pytest.raises(RuntimeBambooError):
            run_expr_program("int x = 1 / 0;")

    def test_modulo_by_zero_raises(self):
        with pytest.raises(RuntimeBambooError):
            run_expr_program("int x = 1 % 0;")

    def test_int_div_helper_matches_java(self):
        assert _int_div(7, 2) == 3
        assert _int_div(-7, 2) == -3
        assert _int_div(7, -2) == -3
        assert _int_div(-7, -2) == 3
        assert _int_rem(-7, 2) == -1

    def test_comparison_chain(self):
        assert run_and_print("if (3 <= 3 && 3 != 4) System.printInt(1);") == "1"


class TestFloatSemantics:
    def test_float_arithmetic(self):
        out = run_and_print("System.printFloat(0.5 * 4.0);")
        assert float(out) == 2.0

    def test_float_division_by_zero_raises(self):
        with pytest.raises(RuntimeBambooError):
            run_expr_program("float x = 1.0 / 0.0;")

    def test_cast_truncates(self):
        assert run_and_print("System.printInt((int) 2.9);") == "2"
        assert run_and_print("System.printInt((int) -2.9);") == "-2"

    def test_promotion_in_mixed_expression(self):
        out = run_and_print("System.printFloat(1 + 0.5);")
        assert float(out) == 1.5

    def test_math_builtins(self):
        out = run_and_print("System.printFloat(Math.sqrt(16.0));")
        assert float(out) == 4.0


class TestStrings:
    def test_concat_renders_values(self):
        out = run_and_print('System.printString("v=" + 3 + " b=" + true);')
        assert out == "v=3 b=true"

    def test_length_and_charat(self):
        out = run_and_print('System.printInt("abc".length() + "a".charAt(0));')
        assert out == str(3 + ord("a"))

    def test_split(self):
        out = run_and_print(
            'String[] w = "a bb  ccc".split(); System.printInt(w.length);'
        )
        assert out == "3"

    def test_equals_compares_content(self):
        out = run_and_print(
            'String a = "x" + 1; if (a.equals("x1")) System.printInt(1);'
        )
        assert out == "1"

    def test_parse_int(self):
        out = run_and_print(
            "System.printInt(Integer.parseInt(args[0]) + 1);", args=("41",)
        )
        assert out == "42"


class TestArraysAndObjects:
    def test_array_defaults(self):
        out = run_and_print(
            "int[] a = new int[3]; float[] f = new float[1]; boolean[] b = new boolean[1];"
            "System.printInt(a[0]); System.printFloat(f[0]);"
        )
        assert out == "00.0"

    def test_2d_array(self):
        out = run_and_print(
            "int[][] m = new int[2][3]; m[1][2] = 7; System.printInt(m[1][2]);"
        )
        assert out == "7"

    def test_out_of_bounds_raises(self):
        with pytest.raises(RuntimeBambooError):
            run_expr_program("int[] a = new int[2]; int x = a[2];")

    def test_negative_index_raises(self):
        with pytest.raises(RuntimeBambooError):
            run_expr_program("int[] a = new int[2]; a[-1] = 0;")

    def test_null_array_access_raises(self):
        with pytest.raises(RuntimeBambooError):
            run_expr_program("int[] a = null; int x = a[0];")

    def test_null_field_access_raises(self):
        source = (
            "class A { int x; } "
            "class SeqMain { SeqMain() { } void run(String[] args) "
            "{ A a = null; int v = a.x; } } "
            "task startup(StartupObject s in initialstate) "
            "{ taskexit(s: initialstate := false); }"
        )
        compiled = compile_program(source)
        with pytest.raises(RuntimeBambooError):
            run_sequential(compiled, ["0"])

    def test_object_field_defaults(self):
        source = (
            "class A { int x; float y; boolean b; String s; } "
            "class SeqMain { SeqMain() { } void run(String[] args) { "
            "A a = new A(); System.printInt(a.x); "
            "if (a.s == null) System.printInt(1); } } "
            "task startup(StartupObject s in initialstate) "
            "{ taskexit(s: initialstate := false); }"
        )
        compiled = compile_program(source)
        assert run_sequential(compiled, ["0"]).stdout == "01"


class TestMethodsAndRecursion:
    def test_recursion(self):
        source = (
            "class SeqMain { SeqMain() { } "
            "int fib(int n) { if (n < 2) return n; "
            "return this.fib(n - 1) + this.fib(n - 2); } "
            "void run(String[] args) { System.printInt(this.fib(10)); } } "
            "task startup(StartupObject s in initialstate) "
            "{ taskexit(s: initialstate := false); }"
        )
        compiled = compile_program(source)
        assert run_sequential(compiled, ["0"]).stdout == "55"

    def test_runaway_recursion_raises(self):
        source = (
            "class SeqMain { SeqMain() { } "
            "int loop(int n) { return this.loop(n + 1); } "
            "void run(String[] args) { System.printInt(this.loop(0)); } } "
            "task startup(StartupObject s in initialstate) "
            "{ taskexit(s: initialstate := false); }"
        )
        compiled = compile_program(source)
        with pytest.raises(RuntimeBambooError):
            run_sequential(compiled, ["0"])

    def test_mutual_calls(self):
        out = run_and_print("System.printInt(1);")
        assert out == "1"


class TestCycleAccounting:
    def test_cycles_positive_and_monotone_in_work(self):
        small = run_expr_program(
            "int acc = 0; for (int i = 0; i < 10; i++) acc = acc + i;"
        )
        large = run_expr_program(
            "int acc = 0; for (int i = 0; i < 100; i++) acc = acc + i;"
        )
        assert 0 < small.cycles < large.cycles

    def test_deterministic_cycles(self):
        first = run_expr_program("float x = Math.sin(1.0) * 2.0;")
        second = run_expr_program("float x = Math.sin(1.0) * 2.0;")
        assert first.cycles == second.cycles

    def test_float_work_costs_more_than_int(self):
        int_run = run_expr_program(
            "int acc = 0; for (int i = 0; i < 50; i++) acc = acc + 3;"
        )
        float_run = run_expr_program(
            "float acc = 0.0; for (int i = 0; i < 50; i++) acc = acc + 3.0;"
        )
        assert float_run.cycles > int_run.cycles


class TestTaskExecution:
    def test_task_effects(self, keyword_compiled):
        heap = Heap()
        interp = Interpreter(keyword_compiled.ir_program, keyword_compiled.info, heap)
        startup = make_startup_object(heap, keyword_compiled.info, ["3"])
        effects = interp.run_task("startup", [startup])
        assert effects.exit_id == 1
        assert effects.cycles > 0
        classes = sorted({r.obj.class_name for r in effects.new_objects})
        assert classes == ["Results", "Text"]
        texts = [r for r in effects.new_objects if r.obj.class_name == "Text"]
        assert len(texts) == 3
        # Allocation-site flags applied at creation time.
        assert all("process" in r.obj.flags for r in texts)

    def test_flag_updates_not_applied_by_interpreter(self, keyword_compiled):
        heap = Heap()
        interp = Interpreter(keyword_compiled.ir_program, keyword_compiled.info, heap)
        startup = make_startup_object(heap, keyword_compiled.info, ["1"])
        interp.run_task("startup", [startup])
        # The runtime commits flag changes, not the interpreter.
        assert "initialstate" in startup.flags

    def test_startup_object_args(self, keyword_compiled):
        heap = Heap()
        startup = make_startup_object(heap, keyword_compiled.info, ["a", "b"])
        args_field = startup.fields[0]
        assert args_field.values == ["a", "b"]
        assert startup.flags == {"initialstate"}
