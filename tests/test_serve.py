"""The synthesis service and its persistent, shared SimCache.

The load-bearing contract is **serving transparency**: a served
synthesize result is bit-identical to the same request run through the
offline pipeline — warm cache, cold cache, concurrent clients, daemon
restarts. The cache and the daemon may only change *when* an answer
arrives, never *which* answer arrives. Around that sit the operational
contracts: atomic persistence that survives restarts and refuses damaged
files, admission control that load-sheds instead of queueing unboundedly,
and coalescing that answers identical in-flight requests from one
execution.
"""

import json
import os
import threading
import time

import pytest

from conftest import KEYWORD_SOURCE

from repro.search import SimCache, StorageError, read_record, write_record
from repro.search.storage import (
    payload_digest,
    read_pickle_record,
    write_pickle_record,
)
from repro.serve import (
    SIMCACHE_FORMAT,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeError,
    ServerThread,
    SimCacheStore,
    context_key,
    execute_synthesize,
    request_key,
)
from repro.serve.protocol import decode, encode

ARGS = ["6"]
CORES = 4

#: One small synthesize request, shared across tests so the persistent
#: cache tests exercise real cross-restart reuse.
REQUEST = dict(
    source=KEYWORD_SOURCE,
    args=ARGS,
    optimize=True,
    cores=CORES,
    seed=7,
    max_iterations=3,
    max_evaluations=20,
)


def offline_result(**overrides):
    params = dict(REQUEST, **overrides)
    result, _telemetry = execute_synthesize(params)
    return result


def canonical(result):
    return json.dumps(result, sort_keys=True)


def served_synthesize(client, **overrides):
    params = dict(REQUEST, **overrides)
    response = client.call("synthesize", **params)
    return response["result"], response.get("telemetry", {})


# -- the storage module --------------------------------------------------------


class TestStorage:
    FMT = "repro.test/record-v1"

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "record.bin")
        payload = b"some bytes"
        header = write_record(path, self.FMT, payload, extra_header={"n": 3})
        assert header["format"] == self.FMT
        assert header["n"] == 3
        assert header["digest"] == payload_digest(payload)
        got_header, got_payload = read_record(path, self.FMT)
        assert got_payload == payload
        assert got_header == header

    def test_pickle_round_trip(self, tmp_path):
        path = str(tmp_path / "record.bin")
        obj = {"contexts": {"a": [1, 2, 3]}}
        write_pickle_record(path, self.FMT, obj)
        _header, got = read_pickle_record(path, self.FMT, expected_type=dict)
        assert got == obj

    def test_tampered_payload_refused(self, tmp_path):
        path = str(tmp_path / "record.bin")
        write_record(path, self.FMT, b"payload")
        with open(path, "r+b") as handle:
            handle.seek(-1, os.SEEK_END)
            handle.write(b"X")
        with pytest.raises(StorageError, match="digest mismatch"):
            read_record(path, self.FMT)

    def test_truncated_payload_refused(self, tmp_path):
        path = str(tmp_path / "record.bin")
        write_record(path, self.FMT, b"a longer payload")
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 4)
        with pytest.raises(StorageError, match="digest mismatch"):
            read_record(path, self.FMT)

    def test_foreign_format_refused(self, tmp_path):
        path = str(tmp_path / "record.bin")
        write_record(path, "repro.test/other-v1", b"payload")
        with pytest.raises(StorageError, match="repro.test/other-v1"):
            read_record(path, self.FMT)

    def test_garbage_refused(self, tmp_path):
        path = str(tmp_path / "record.bin")
        with open(path, "wb") as handle:
            handle.write(b"\x00\x01not json at all\n rest")
        with pytest.raises(StorageError, match="is not a record"):
            read_record(path, self.FMT)

    def test_wrong_type_refused(self, tmp_path):
        path = str(tmp_path / "record.bin")
        write_pickle_record(path, self.FMT, [1, 2, 3])
        with pytest.raises(StorageError, match="does not contain a dict"):
            read_pickle_record(
                path, self.FMT, expected_type=dict, long_kind="test record"
            )


# -- the thread-safe SimCache --------------------------------------------------


def _sim_result(cycles):
    from repro.schedule.simulator import SimResult

    return SimResult(
        total_cycles=cycles, finished=True, trace=[], core_busy={},
        invocations={}, utilization=0.5,
    )


class TestConcurrentSimCache:
    def test_concurrent_mutation_stays_consistent(self):
        cache = SimCache(max_entries=64)
        errors = []

        def worker(base):
            try:
                for i in range(200):
                    key = f"fp-{(base * 7 + i) % 100}"
                    if cache.get(key) is None:
                        cache.put(key, _sim_result(i))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [
            threading.Thread(target=worker, args=(n,)) for n in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        stats = cache.cache_stats()
        # The snapshot is taken under the lock: the identity must hold
        # exactly, whatever interleaving happened.
        assert stats["lookups"] == stats["hits"] + stats["misses"]
        assert len(cache) <= 64
        assert stats["entries"] == len(cache)

    def test_cache_stats_is_stats(self):
        cache = SimCache()
        assert cache.cache_stats() == cache.stats()


# -- the persistent store ------------------------------------------------------


def _fill(store, context, n):
    cache = store.cache_for(context)
    for i in range(n):
        cache.put(f"fp-{i}", _sim_result(i))
    store.mark_dirty()


class TestSimCacheStore:
    def test_flush_and_load_round_trip(self, tmp_path):
        path = str(tmp_path / "simcache.bin")
        store = SimCacheStore(path=path)
        _fill(store, "ctx-a", 5)
        _fill(store, "ctx-b", 3)
        assert store.dirty
        header = store.flush()
        assert header["format"] == SIMCACHE_FORMAT
        assert header["contexts"] == 2
        assert header["entries"] == 8
        assert not store.dirty

        fresh = SimCacheStore(path=path)
        report = fresh.load()
        assert report.loaded and not report.refused
        assert report.contexts == 2 and report.entries == 8
        assert fresh.cache_for("ctx-a").get("fp-2") is not None

    def test_missing_file_is_cold(self, tmp_path):
        store = SimCacheStore(path=str(tmp_path / "absent.bin"))
        report = store.load()
        assert not report.loaded and not report.refused
        assert "cold cache" in report.describe()

    def test_no_path_disables_persistence(self):
        store = SimCacheStore()
        assert store.load().path is None
        assert store.flush() is None

    def test_corrupt_file_refused_and_quarantined(self, tmp_path):
        path = str(tmp_path / "simcache.bin")
        with open(path, "wb") as handle:
            handle.write(b"definitely not a cache record")
        store = SimCacheStore(path=path)
        report = store.load()
        assert report.refused and not report.loaded
        assert "is not a persistent simulation cache" in report.error
        assert report.quarantined_to == path + ".corrupt"
        assert os.path.exists(report.quarantined_to)
        assert not os.path.exists(path)
        # The store still works as a fresh cache.
        _fill(store, "ctx", 2)
        assert store.flush() is not None
        assert SimCacheStore(path=path).load().loaded

    def test_quarantine_rotates_newest_first(self, tmp_path):
        path = str(tmp_path / "simcache.bin")

        def refuse(tag):
            with open(path, "wb") as handle:
                handle.write(b"bad cache " + tag)
            report = SimCacheStore(path=path).load()
            assert report.refused
            return report

        refuse(b"first")
        refuse(b"second")
        # Newest refusal sits at .corrupt, the earlier one rotated back.
        assert open(path + ".corrupt", "rb").read().endswith(b"second")
        assert open(path + ".corrupt.1", "rb").read().endswith(b"first")

    def test_quarantine_bound_evicts_oldest(self, tmp_path):
        from repro.obs.metrics import MetricsRegistry

        path = str(tmp_path / "simcache.bin")
        registry = MetricsRegistry()
        store = SimCacheStore(path=path, registry=registry, max_quarantine=2)
        for tag in (b"one", b"two", b"three"):
            with open(path, "wb") as handle:
                handle.write(b"bad cache " + tag)
            assert store.load().refused
        # Only the two newest survive; the oldest was deleted and counted.
        assert open(path + ".corrupt", "rb").read().endswith(b"three")
        assert open(path + ".corrupt.1", "rb").read().endswith(b"two")
        assert not os.path.exists(path + ".corrupt.2")
        assert store.quarantine_evictions == 1
        assert registry.counter("serve_quarantine_evictions").value == 1
        stats = store.stats()
        assert stats["max_quarantine"] == 2
        assert stats["quarantine_evictions"] == 1

    def test_truncated_file_refused(self, tmp_path):
        path = str(tmp_path / "simcache.bin")
        store = SimCacheStore(path=path)
        _fill(store, "ctx", 4)
        store.flush()
        size = os.path.getsize(path)
        with open(path, "r+b") as handle:
            handle.truncate(size - 3)
        report = SimCacheStore(path=path).load()
        assert report.refused
        assert "digest mismatch" in report.error

    def test_foreign_record_refused(self, tmp_path):
        path = str(tmp_path / "simcache.bin")
        write_pickle_record(path, "repro.search/checkpoint-v1", {"x": 1})
        report = SimCacheStore(path=path).load()
        assert report.refused
        assert "repro.search/checkpoint-v1" in report.error

    def test_loaded_counters_do_not_pollute_registry(self, tmp_path):
        from repro.obs import MetricsRegistry

        path = str(tmp_path / "simcache.bin")
        store = SimCacheStore(path=path)
        _fill(store, "ctx", 5)
        cache = store.cache_for("ctx")
        for i in range(5):
            cache.get(f"fp-{i}")
        store.flush()

        registry = MetricsRegistry()
        warm = SimCacheStore(path=path, registry=registry)
        warm.load()
        assert registry.counter("sim_cache_hits").value == 0


# -- protocol framing ----------------------------------------------------------


class TestProtocol:
    def test_encode_decode_round_trip(self):
        message = {"op": "ping", "id": 4, "nested": {"b": 1, "a": [2, 3]}}
        assert decode(encode(message)) == message

    def test_encode_is_byte_stable(self):
        a = encode({"b": 1, "a": 2})
        b = encode({"a": 2, "b": 1})
        assert a == b

    def test_garbage_line_refused(self):
        with pytest.raises(ProtocolError, match="not a JSON line"):
            decode(b"{nope\n")

    def test_non_object_refused(self):
        with pytest.raises(ProtocolError, match="JSON object"):
            decode(b"[1, 2]\n")

    def test_request_key_ignores_param_order(self):
        assert request_key("synthesize", {"a": 1, "b": 2}) == request_key(
            "synthesize", {"b": 2, "a": 1}
        )

    def test_context_key_separates_programs(self):
        base = context_key(KEYWORD_SOURCE, ["6"], True)
        assert context_key(KEYWORD_SOURCE + " ", ["6"], True) != base
        assert context_key(KEYWORD_SOURCE, ["7"], True) != base
        assert context_key(KEYWORD_SOURCE, ["6"], False) != base


# -- the daemon ----------------------------------------------------------------


class TestServing:
    def test_served_equals_offline(self, tmp_path):
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as client:
                result, telemetry = served_synthesize(client)
        assert canonical(result) == canonical(offline_result())
        assert telemetry["evaluations"] > 0

    def test_restart_round_trip_warm_and_identical(self, tmp_path):
        path = str(tmp_path / "simcache.bin")
        with ServerThread(ServeConfig(cache_path=path)) as handle:
            with handle.client() as client:
                cold_result, cold_telemetry = served_synthesize(client)
        # Shutdown flushed the store; the file exists and is well formed.
        header, _payload = read_pickle_record(path, SIMCACHE_FORMAT)
        assert header["entries"] > 0

        with ServerThread(ServeConfig(cache_path=path)) as handle:
            with handle.client() as client:
                assert "warm cache" in client.ping()["cache"]
                warm_result, warm_telemetry = served_synthesize(client)
        # Bit-identical across the restart, answered purely from cache.
        assert canonical(warm_result) == canonical(cold_result)
        assert warm_telemetry["evaluations"] == 0
        assert warm_telemetry["cache_hits"] > 0
        assert cold_telemetry["evaluations"] > 0
        # And both match the offline pipeline.
        assert canonical(cold_result) == canonical(offline_result())

    def test_corrupt_cache_file_on_startup(self, tmp_path):
        path = str(tmp_path / "simcache.bin")
        with open(path, "wb") as handle:
            handle.write(b"garbage, not a simcache record")
        with ServerThread(ServeConfig(cache_path=path)) as handle:
            assert handle.server.load_report.refused
            with handle.client() as client:
                ping = client.ping()
                assert "refused existing cache file" in ping["cache"]
                assert "is not a persistent simulation cache" in ping["cache"]
                # The daemon still serves, building a fresh cache.
                result, _telemetry = served_synthesize(client)
        assert canonical(result) == canonical(offline_result())
        assert os.path.exists(path + ".corrupt")
        # The fresh cache was flushed on shutdown and loads cleanly.
        assert SimCacheStore(path=path).load().loaded

    def test_concurrent_clients_deterministic(self):
        seeds = [1, 2, 3, 4]
        outcomes = {}
        errors = []

        def one_client(handle, seed):
            try:
                with handle.client() as client:
                    result, _telemetry = served_synthesize(client, seed=seed)
                outcomes[seed] = canonical(result)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        with ServerThread(ServeConfig(max_concurrency=2)) as handle:
            threads = [
                threading.Thread(target=one_client, args=(handle, seed))
                for seed in seeds
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
        assert not errors
        for seed in seeds:
            assert outcomes[seed] == canonical(offline_result(seed=seed))

    def _wait_for_admitted(self, client, count, timeout=20.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if client.metrics()["admitted"] >= count:
                return
            time.sleep(0.005)
        raise AssertionError(f"daemon never reached {count} admitted requests")

    def test_admission_control_sheds_excess(self):
        # Capacity 1: one slow request occupies the daemon; a *distinct*
        # second request must be shed, not queued.
        config = ServeConfig(max_concurrency=1, queue_limit=0)
        slow = dict(seed=0, max_iterations=50, max_evaluations=2000)
        with ServerThread(config) as handle:
            background = threading.Thread(
                target=lambda: served_synthesize(handle.client(), **slow)
            )
            background.start()
            with handle.client() as client:
                self._wait_for_admitted(client, 1)
                with pytest.raises(ServeError) as excinfo:
                    served_synthesize(client, seed=99)
                assert excinfo.value.code == "overloaded"
                shed = client.metrics()["counters"]["serve_shed"]
                assert shed == 1
            background.join()
        # The shed client was told to retry; the slow request finished.

    def test_identical_inflight_requests_coalesce(self):
        config = ServeConfig(max_concurrency=1, queue_limit=0)
        slow = dict(seed=0, max_iterations=50, max_evaluations=2000)
        first = {}

        def leader(handle):
            with handle.client() as client:
                result, telemetry = served_synthesize(client, **slow)
            first["result"] = result
            first["telemetry"] = telemetry

        with ServerThread(config) as handle:
            background = threading.Thread(target=leader, args=(handle,))
            background.start()
            with handle.client() as client:
                self._wait_for_admitted(client, 1)
                # Identical request while the first is in flight: coalesces
                # onto the running execution even though the daemon is at
                # capacity (a distinct request would be shed — proven by
                # test_admission_control_sheds_excess).
                result, telemetry = served_synthesize(client, **slow)
                assert telemetry.get("coalesced") is True
                metrics = client.metrics()
                assert metrics["counters"]["serve_coalesced"] == 1
                assert metrics["counters"]["serve_shed"] == 0
            background.join()
        assert canonical(result) == canonical(first["result"])

    def test_compile_profile_simulate_ops(self):
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as client:
                compiled = client.compile(KEYWORD_SOURCE)
                assert "processText" in compiled["tasks"]
                profile = client.profile(KEYWORD_SOURCE, args=ARGS)
                assert profile["run_cycles"] > 0
                synth, _telemetry = served_synthesize(client)
                response = client.simulate(
                    KEYWORD_SOURCE,
                    cores=CORES,
                    args=ARGS,
                    mapping=synth["layout"],
                    mesh_width=synth["mesh_width"],
                )
                sim = response["result"]
                assert sim["cycles"] == synth["estimated_cycles"]
                # The layout was scored during the search: pure cache hit.
                assert response["telemetry"]["cache_hits"] == 1

    def test_unknown_op_and_bad_params(self):
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as client:
                with pytest.raises(ServeError) as excinfo:
                    client.call("transmogrify")
                assert excinfo.value.code == "unknown_op"
                with pytest.raises(ServeError) as excinfo:
                    client.call("synthesize", source=KEYWORD_SOURCE)
                assert excinfo.value.code == "bad_request"
                with pytest.raises(ServeError) as excinfo:
                    client.call(
                        "synthesize", **dict(REQUEST, source="task nope(")
                    )
                assert excinfo.value.code == "program_error"
                # The connection survives error responses.
                assert client.ping()["pong"] is True

    def test_metrics_op_shape(self):
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as client:
                served_synthesize(client)
                metrics = client.metrics()
        assert metrics["schema"] == "repro.obs/serve-metrics-v1"
        assert metrics["counters"]["serve_requests[synthesize]"] == 1
        assert metrics["histograms"]["serve_latency[synthesize]"]["count"] == 1
        assert metrics["store"]["contexts"] == 1
        assert metrics["memo"]["compile_misses"] == 1
        assert 0.0 <= metrics["cache_hit_rate"] <= 1.0

    def test_explicit_flush_op(self, tmp_path):
        path = str(tmp_path / "simcache.bin")
        with ServerThread(
            ServeConfig(cache_path=path, flush_interval=3600.0)
        ) as handle:
            with handle.client() as client:
                served_synthesize(client)
                flushed = client.flush()
                assert flushed["flushed"] is True
                assert os.path.exists(path)

    def test_workers_serve_identically(self):
        with ServerThread(ServeConfig(workers=2)) as handle:
            with handle.client() as client:
                result, _telemetry = served_synthesize(client)
        assert canonical(result) == canonical(offline_result())


# -- the CLI -------------------------------------------------------------------


class TestRequestCli:
    def _program_file(self, tmp_path):
        path = tmp_path / "keyword.bam"
        path.write_text(KEYWORD_SOURCE)
        return str(path)

    def test_offline_request_matches_served(self, tmp_path, capsys):
        from repro.cli import main

        program = self._program_file(tmp_path)
        argv = [
            "request", "synthesize", program, *ARGS,
            "--cores", str(CORES), "--seed", "7",
            "--max-iterations", "3", "--max-evaluations", "20",
            "--offline",
        ]
        assert main(argv) == 0
        offline_stdout = capsys.readouterr().out

        with ServerThread(ServeConfig()) as handle:
            assert main(argv[:-1] + ["--port", str(handle.port)]) == 0
        served_stdout = capsys.readouterr().out
        # The transparency contract, at the CLI layer: byte-equal stdout.
        assert served_stdout == offline_stdout
        assert json.loads(offline_stdout)["estimated_cycles"] > 0

    def test_request_without_port_or_offline_fails(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["request", "ping"]) == 2
        assert "--port" in capsys.readouterr().err


# -- the observability endpoints -----------------------------------------------


class TestObservabilityEndpoints:
    """The HTTP sidecar: /metrics, /healthz, /profilez, and request traces."""

    @staticmethod
    def _fetch(handle, path):
        import urllib.request

        url = f"http://{handle.server.metrics_host}:{handle.metrics_port}{path}"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8")

    def test_metrics_lints_and_carries_serve_series(self):
        from repro.obs.promexp import validate_prometheus_text

        with ServerThread(ServeConfig(metrics_port=0)) as handle:
            with handle.client() as client:
                served_synthesize(client)
            status, text = self._fetch(handle, "/metrics")
        assert status == 200
        summary = validate_prometheus_text(text)
        assert summary["families"] > 0
        assert "repro_serve_requests_total" in text
        assert "repro_serve_uptime_seconds" in text
        # Profiling defaults on, so the profiler series ride along.
        assert 'repro_profile_phase_seconds_total{kind="total",phase="serve.synthesize"}' in text

    def test_healthz_reports_ok(self):
        with ServerThread(ServeConfig(metrics_port=0)) as handle:
            status, body = self._fetch(handle, "/healthz")
        assert status == 200
        doc = json.loads(body)
        assert doc["ok"] is True
        assert doc["draining"] is False
        assert doc["uptime_seconds"] >= 0

    def test_profilez_is_a_valid_profile_snapshot(self, tmp_path):
        from repro.obs import prof
        from repro.obs.artifacts import validate_artifact

        with ServerThread(ServeConfig(metrics_port=0)) as handle:
            with handle.client() as client:
                served_synthesize(client)
            status, body = self._fetch(handle, "/profilez")
        assert status == 200
        doc = json.loads(body)
        assert doc["schema"] == prof.PROFILE_SCHEMA
        path = tmp_path / "profilez.json"
        path.write_text(body)
        assert validate_artifact(str(path))["schema"] == prof.PROFILE_SCHEMA
        names = {node["name"] for node in doc["phases"]}
        assert "serve.synthesize" in names

    def test_unknown_path_and_method(self):
        import socket

        with ServerThread(ServeConfig(metrics_port=0)) as handle:
            status, body = self._fetch(handle, "/nope")
            assert status == 404
            assert "/metrics" in body
            with socket.create_connection(
                (handle.server.metrics_host, handle.metrics_port), timeout=10
            ) as sock:
                sock.sendall(b"POST /metrics HTTP/1.1\r\n\r\n")
                reply = sock.recv(4096).decode("latin-1")
        assert "405" in reply.split("\r\n")[0]

    def test_profiling_off_disables_profilez(self):
        with ServerThread(
            ServeConfig(metrics_port=0, profile=False)
        ) as handle:
            status, _body = self._fetch(handle, "/profilez")
            assert status == 404
            # /metrics still answers, without the profiler families.
            status, text = self._fetch(handle, "/metrics")
        assert status == 200
        assert "repro_profile_phase_seconds_total" not in text

    def test_traced_request_merges_into_one_chrome_trace(self):
        from repro.obs import prof
        from repro.obs.export import validate_chrome_trace

        with ServerThread(ServeConfig()) as handle:
            with handle.client(trace=True) as client:
                result, telemetry = served_synthesize(client)
        assert canonical(result) == canonical(offline_result())
        # The daemon echoed the trace context in its telemetry...
        trace = client.last_trace
        assert trace is not None
        server = trace["server"]
        assert server["trace_id"] == trace["trace_id"]
        assert server["span_id"]
        names = {span["name"] for span in server["spans"]}
        assert "serve.synthesize" in names
        assert "pipeline.synthesize" in names
        # ... and the merged document is one valid two-track trace.
        doc = prof.build_request_trace(
            trace["trace_id"], trace["client_span"], server["spans"]
        )
        summary = validate_chrome_trace(doc)
        assert summary["tracks"] == [0, 1]
        assert doc["otherData"]["trace_id"] == trace["trace_id"]
        assert summary["spans"] == len(server["spans"]) + 1

    def test_trace_id_does_not_split_the_cache(self):
        with ServerThread(ServeConfig()) as handle:
            with handle.client(trace=True) as client:
                _result, first = served_synthesize(client)
                _result, second = served_synthesize(client)
        assert first["evaluations"] > 0
        # Same request, different trace_id: still a pure cache hit.
        assert second["evaluations"] == 0
        assert second["cache_hits"] > 0
        assert second["trace"]["trace_id"] != first["trace"]["trace_id"]
