"""The shared backoff/jitter module (:mod:`repro.search.retry`).

These tests pin the *exact historical values* of the jitter and backoff
math: the module was extracted from
:class:`repro.search.supervise.RetryPolicy` and
:class:`repro.serve.client.ClientRetryPolicy`, and the extraction
contract is that no replayed failure trace sleeps differently than it
did before. The literals below were computed by the pre-extraction
implementations — do not "fix" them to match a changed formula.
"""

import pytest

from repro.search.retry import backoff_delay, capped_backoff, jitter


class TestJitter:
    def test_pinned_values(self):
        # sha256-derived fractions; stable across processes and platforms.
        assert jitter(7, 2) == pytest.approx(0.5529577408451587, abs=1e-15)
        assert jitter("op", 1) == pytest.approx(0.31026955018751323, abs=1e-15)
        assert jitter("shard3", 1) == pytest.approx(
            0.5183497096877545, abs=1e-15
        )

    def test_range_and_determinism(self):
        for key in (0, 1, "synthesize", "shard17", (1, 2)):
            for round_index in range(1, 6):
                value = jitter(key, round_index)
                assert 0.0 <= value < 1.0
                assert value == jitter(key, round_index)

    def test_distinct_keys_and_rounds_spread(self):
        values = {jitter(key, r) for key in range(8) for r in range(1, 4)}
        assert len(values) == 24  # no accidental collisions in this set


class TestCappedBackoff:
    def test_doubles_then_caps(self):
        assert capped_backoff(0.05, 2.0, 1) == 0.05
        assert capped_backoff(0.05, 2.0, 2) == 0.1
        assert capped_backoff(0.05, 2.0, 7) == pytest.approx(2.0)
        assert capped_backoff(0.05, 2.0, 16) == 2.0


class TestBackoffDelay:
    def test_pinned_values(self):
        # Supervisor shape: [1.0, 2.0) of the capped base.
        assert backoff_delay(
            0.05, 2.0, 3, "x", low=1.0, high=2.0
        ) == pytest.approx(0.37870106124319136, abs=1e-15)
        # Client shape: [0.5, 1.0) — exactly half the supervisor shape
        # for the same (key, round).
        assert backoff_delay(
            0.05, 2.0, 3, "x", low=0.5, high=1.0
        ) == pytest.approx(0.18935053062159568, abs=1e-15)

    def test_supervisor_shape_never_below_full_backoff(self):
        for failure in range(1, 10):
            base = capped_backoff(0.05, 2.0, failure)
            delay = backoff_delay(0.05, 2.0, failure, failure)
            assert base <= delay < 2 * base

    def test_client_shape_spreads_below_cap(self):
        for failure in range(1, 10):
            base = capped_backoff(0.05, 2.0, failure)
            delay = backoff_delay(
                0.05, 2.0, failure, "op", low=0.5, high=1.0
            )
            assert base / 2 <= delay < base


class TestDelegation:
    """The three consumer layers must route through this module."""

    def test_client_policy_delegates(self):
        from repro.serve.client import ClientRetryPolicy

        policy = ClientRetryPolicy()
        for failure in (1, 2, 5):
            assert policy.backoff("synthesize", failure) == backoff_delay(
                policy.backoff_base,
                policy.backoff_cap,
                failure,
                "synthesize",
                low=0.5,
                high=1.0,
            )

    def test_supervise_module_aliases_jitter(self):
        from repro.search import supervise

        assert supervise._jitter is jitter

    def test_dist_lease_uses_client_shape(self):
        # The coordinator requeues with backoff_delay(..., low=0.5,
        # high=1.0) keyed by "shard<id>"; pin the value the dist layer
        # sleeps for shard 3's first retry.
        from repro.search.dist.coordinator import LeasePolicy

        policy = LeasePolicy()
        expected = backoff_delay(
            policy.backoff_base,
            policy.backoff_cap,
            1,
            "shard3",
            low=0.5,
            high=1.0,
        )
        assert expected == pytest.approx(
            policy.backoff_base * (0.5 + 0.5 * jitter("shard3", 1))
        )
