"""Critical path analysis tests (paper §4.5.1)."""

from repro.core import annotated_cstg
from repro.schedule.critpath import (
    compute_critical_path,
    spare_cores_during,
    suggest_moves,
)
from repro.schedule.layout import Layout
from repro.schedule.simulator import SimResult, TraceEvent, simulate


def make_event(event_id, task, core, start, end, data_ready=None, inputs=()):
    return TraceEvent(
        event_id=event_id,
        task=task,
        core=core,
        start=start,
        end=end,
        exit_id=1,
        data_ready=data_ready if data_ready is not None else start,
        inputs=list(inputs),
    )


def make_result(trace, num_cores=4):
    total = max(e.end for e in trace)
    busy = {}
    for event in trace:
        busy[event.core] = busy.get(event.core, 0) + event.duration
    return SimResult(
        total_cycles=total,
        finished=True,
        trace=trace,
        core_busy=busy,
        invocations={},
        utilization=0.5,
    )


class TestSyntheticTraces:
    def test_pure_chain_is_whole_path(self):
        # a -> b -> c linked by data edges across cores.
        trace = [
            make_event(0, "a", 0, 0, 10),
            make_event(1, "b", 1, 12, 20, data_ready=12, inputs=[(0, 2)]),
            make_event(2, "c", 2, 22, 30, data_ready=22, inputs=[(1, 2)]),
        ]
        path = compute_critical_path(make_result(trace))
        assert [s.event.task for s in path.steps] == ["a", "b", "c"]
        assert path.total == 30
        assert [s.bound for s in path.steps] == ["start", "data", "data"]

    def test_resource_bound_detected(self):
        # b's data was ready at 0 but core 0 was busy with a until 10.
        trace = [
            make_event(0, "a", 0, 0, 10),
            make_event(1, "b", 0, 10, 25, data_ready=0),
        ]
        path = compute_critical_path(make_result(trace))
        assert [s.event.task for s in path.steps] == ["a", "b"]
        assert path.steps[1].bound == "resource"
        assert path.steps[1].delay == 10

    def test_key_events(self):
        trace = [
            make_event(0, "a", 0, 0, 10),
            make_event(1, "b", 1, 12, 30, data_ready=12, inputs=[(0, 2)]),
        ]
        path = compute_critical_path(make_result(trace))
        assert path.key_event_ids() == {0}

    def test_empty_trace(self):
        result = SimResult(
            total_cycles=0,
            finished=True,
            trace=[],
            core_busy={},
            invocations={},
            utilization=0.0,
        )
        path = compute_critical_path(result)
        assert path.steps == []

    def test_format_renders(self):
        trace = [make_event(0, "a", 0, 0, 10)]
        text = compute_critical_path(make_result(trace)).format()
        assert "critical path" in text and "a" in text


class TestSpareCores:
    def test_idle_core_detected(self):
        trace = [
            make_event(0, "a", 0, 0, 10),
            make_event(1, "b", 1, 0, 5),
        ]
        layout = Layout.make(4, {"a": [0], "b": [1]})
        spare = spare_cores_during(make_result(trace), layout, 0, 10)
        assert spare == [2, 3]

    def test_partial_overlap_excludes(self):
        trace = [make_event(0, "a", 2, 5, 15)]
        layout = Layout.make(4, {"a": [2]})
        assert 2 not in spare_cores_during(make_result(trace), layout, 0, 10)
        assert 2 in spare_cores_during(make_result(trace), layout, 16, 20)


class TestMoveSuggestions:
    def test_delayed_event_suggests_migration_to_spare_core(self):
        trace = [
            make_event(0, "a", 0, 0, 10),
            make_event(1, "b", 0, 10, 40, data_ready=0),
        ]
        layout = Layout.make(4, {"a": [0], "b": [0]})
        moves = suggest_moves(make_result(trace), layout)
        assert moves
        migration = moves[0]
        assert migration.task == "b"
        assert migration.from_core == 0
        assert migration.to_core in (1, 2, 3)

    def test_no_moves_on_tight_schedule(self):
        trace = [
            make_event(0, "a", 0, 0, 10),
            make_event(1, "b", 1, 12, 20, data_ready=12, inputs=[(0, 2)]),
        ]
        layout = Layout.make(2, {"a": [0], "b": [1]})
        moves = suggest_moves(make_result(trace), layout)
        assert moves == []


class TestRealTrace:
    def test_path_on_keyword_simulation(self, keyword_compiled, keyword_profile):
        layout = Layout.single_core(keyword_compiled.info.tasks)
        result = simulate(keyword_compiled, layout, keyword_profile)
        path = compute_critical_path(result)
        assert path.total == result.total_cycles
        assert path.steps[0].event.task == "startup"
        # On one core every event after the first is either resource-bound
        # or immediately follows its data.
        assert all(s.event.core == 0 for s in path.steps)
