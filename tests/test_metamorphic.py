"""Metamorphic properties of the machine: functional behaviour must be
independent of the layout, the core count, and scheduler/bounds-check modes.

These are the strongest correctness checks in the suite: Bamboo's whole
point is that the synthesis pipeline may place and replicate tasks freely
without changing what the program computes.
"""

from hypothesis import given, settings, strategies as st

from repro.core import RunOptions, run_layout, single_core_layout
from repro.runtime.machine import MachineConfig
from repro.schedule.layout import Layout

NUM_CORES = 5


def random_keyword_layout(draw, compiled):
    """Draws a random valid layout for the keyword program."""
    mapping = {}
    for task in compiled.info.tasks:
        task_info = compiled.info.task_info(task)
        multi_param = len(task_info.decl.params) > 1
        if multi_param:
            cores = [draw(st.integers(0, NUM_CORES - 1))]
        else:
            count = draw(st.integers(1, NUM_CORES))
            cores = draw(
                st.lists(
                    st.integers(0, NUM_CORES - 1),
                    min_size=1,
                    max_size=count,
                    unique=True,
                )
            )
        mapping[task] = cores
    return Layout.make(NUM_CORES, mapping)


class TestLayoutIndependence:
    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_output_independent_of_layout(self, data, keyword_compiled):
        layout = random_keyword_layout(data.draw, keyword_compiled)
        result = run_layout(keyword_compiled, layout, ["7"])
        assert result.stdout == "total=14"

    @given(data=st.data())
    @settings(max_examples=25, deadline=None)
    def test_invocation_counts_independent_of_layout(
        self, data, keyword_compiled
    ):
        layout = random_keyword_layout(data.draw, keyword_compiled)
        result = run_layout(keyword_compiled, layout, ["5"])
        assert result.invocations == {
            "startup": 1,
            "processText": 5,
            "mergeIntermediateResult": 5,
        }

    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_exit_counts_independent_of_layout(self, data, keyword_compiled):
        layout = random_keyword_layout(data.draw, keyword_compiled)
        result = run_layout(keyword_compiled, layout, ["6"])
        assert result.exit_counts[("mergeIntermediateResult", 1)] == 1
        assert result.exit_counts[("mergeIntermediateResult", 2)] == 5

    @given(data=st.data())
    @settings(max_examples=10, deadline=None)
    def test_centralized_mode_preserves_semantics(self, data, keyword_compiled):
        layout = random_keyword_layout(data.draw, keyword_compiled)
        result = run_layout(
            keyword_compiled,
            layout,
            ["6"], options=RunOptions(machine=MachineConfig(centralized_scheduler=True)))
        assert result.stdout == "total=12"

    @given(sections=st.integers(1, 12))
    @settings(max_examples=12, deadline=None)
    def test_output_scales_with_workload(self, keyword_compiled, sections):
        layout = single_core_layout(keyword_compiled)
        result = run_layout(keyword_compiled, layout, [str(sections)])
        assert result.stdout == f"total={2 * sections}"


class TestTaggedLayoutIndependence:
    @given(data=st.data())
    @settings(max_examples=15, deadline=None)
    def test_tag_pairing_under_random_layouts(self, data, tagged_compiled):
        mapping = {}
        for task in tagged_compiled.info.tasks:
            count = data.draw(st.integers(1, 3))
            mapping[task] = data.draw(
                st.lists(
                    st.integers(0, NUM_CORES - 1),
                    min_size=1,
                    max_size=count,
                    unique=True,
                )
            )
        layout = Layout.make(NUM_CORES, mapping)
        # finishsave is tag-guarded on every parameter, so replication is
        # always legal — and every Drawing must still complete its save.
        result = run_layout(tagged_compiled, layout, ["6"])
        assert result.invocations["finishsave"] == 6
