"""Determinism: the invariant docs/ARCHITECTURE.md claims, enforced.

Two runs of anything — same program, same seed, same layout — must produce
byte-identical cycle counts and event traces. This holds for fault runs
too: the same fault plan produces the same crash, the same recovery, and
the same final state.
"""

import pytest

from repro.bench import benchmark_names, load_benchmark
from repro.core import RunOptions, run_layout, single_core_layout
from repro.fault import CoreCrash, FaultPlan, LinkDegrade, TransientStall
from repro.runtime.machine import MachineConfig
from repro.schedule.layout import Layout

SMALL_ARGS = {
    "Tracking": ["12", "6"],
    "KMeans": ["6", "8", "3"],
    "MonteCarlo": ["10", "40"],
    "FilterBank": ["8", "24"],
    "Fractal": ["16"],
    "Series": ["10", "12"],
    "Keyword": ["8"],
}


def quad_layout(compiled):
    mapping = {t: [0] for t in compiled.info.tasks}
    mapping["processText"] = [0, 1, 2, 3]
    return Layout.make(4, mapping)


def fingerprint(result):
    """Everything observable about a run, as comparable bytes."""
    lines = [
        f"cycles={result.total_cycles}",
        f"messages={result.messages}",
        f"busy={sorted(result.core_busy.items())}",
        f"invocations={sorted(result.invocations.items())}",
        f"exits={sorted(result.exit_counts.items())}",
        f"stale={result.stale_invocations}",
        f"lock_failures={result.lock_failures}",
        f"stdout={result.stdout!r}",
    ]
    if result.trace is not None:
        lines.extend(result.trace)
    return "\n".join(lines).encode()


class TestMachineDeterminism:
    def test_identical_runs_byte_identical(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        config = MachineConfig(record_trace=True)
        first = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        second = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        assert first.trace  # the trace actually recorded something
        assert fingerprint(first) == fingerprint(second)

    @pytest.mark.parametrize("name", benchmark_names())
    def test_benchmarks_byte_identical(self, name):
        compiled = load_benchmark(name)
        layout = single_core_layout(compiled)
        config = MachineConfig(record_trace=True)
        first = run_layout(compiled, layout, SMALL_ARGS[name], options=RunOptions(machine=config))
        second = run_layout(compiled, layout, SMALL_ARGS[name], options=RunOptions(machine=config))
        assert fingerprint(first) == fingerprint(second)

    def test_trace_off_by_default(self, keyword_compiled):
        result = run_layout(keyword_compiled, quad_layout(keyword_compiled), ["4"])
        assert result.trace is None


class TestFaultDeterminism:
    def test_same_fault_plan_identical_recovery(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        plan = FaultPlan.make(
            [
                CoreCrash(core=1, cycle=2000),
                TransientStall(core=2, cycle=1200, duration=700),
                LinkDegrade(cycle=500, multiplier=2.0),
            ]
        )
        config = MachineConfig(fault_plan=plan, validate=True, record_trace=True)
        first = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        second = run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config))
        assert fingerprint(first) == fingerprint(second)
        assert first.recovery == second.recovery
        assert "crash core 1" in "\n".join(first.trace)

    def test_fault_free_config_matches_no_config(self, keyword_compiled):
        # The fault machinery must be pay-for-what-you-use: an absent plan
        # takes exactly the seed code paths (bit-identical cycle counts).
        layout = quad_layout(keyword_compiled)
        plain = run_layout(keyword_compiled, layout, ["12"])
        gated = run_layout(
            keyword_compiled, layout, ["12"], options=RunOptions(machine=MachineConfig(fault_plan=None)))
        assert fingerprint(plain) == fingerprint(gated)

    @pytest.mark.parametrize("name", ["Keyword", "MonteCarlo", "Series"])
    def test_benchmark_fault_runs_deterministic(self, name):
        compiled = load_benchmark(name)
        layout = single_core_layout(compiled)
        base = run_layout(compiled, layout, SMALL_ARGS[name])
        # Stall the only core mid-run: recovery-adjacent machinery (event
        # interleaving, busy-time bookkeeping) must stay deterministic.
        plan = FaultPlan.make(
            [TransientStall(core=0, cycle=base.total_cycles // 2, duration=911)]
        )
        config = MachineConfig(fault_plan=plan, validate=True, record_trace=True)
        first = run_layout(compiled, layout, SMALL_ARGS[name], options=RunOptions(machine=config))
        second = run_layout(compiled, layout, SMALL_ARGS[name], options=RunOptions(machine=config))
        assert fingerprint(first) == fingerprint(second)
        assert first.stdout == base.stdout

    def test_random_plans_reproducible_end_to_end(self, keyword_compiled):
        layout = quad_layout(keyword_compiled)
        results = []
        for _ in range(2):
            plan = FaultPlan.random_plan(
                seed=3, num_cores=4, horizon=3000, crashes=1, stalls=1
            )
            config = MachineConfig(fault_plan=plan, validate=True)
            results.append(run_layout(keyword_compiled, layout, ["12"], options=RunOptions(machine=config)))
        assert fingerprint(results[0]) == fingerprint(results[1])
        assert results[0].recovery == results[1].recovery
        assert results[0].stdout == "total=24"
