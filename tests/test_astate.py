"""Abstract state and guard evaluation tests."""

from repro.analysis.astate import (
    AState,
    eval_flag_expr,
    guard_matches,
    runtime_guard_matches,
    state_of_object,
)
from repro.lang import ast
from repro.runtime.objects import BObject, TagInstance


def flag_param(guard, tag_guards=()):
    return ast.TaskParam(
        param_type=ast.TypeNode("X"),
        name="x",
        guard=guard,
        tag_guards=list(tag_guards),
    )


class TestAState:
    def test_make_normalizes_tags(self):
        state = AState.make(["a"], {"t": 5, "u": 0})
        assert state.tag_count("t") == 2  # 1-limited: "at least 2"
        assert state.tag_count("u") == 0
        assert state.tags == (("t", 2),)

    def test_equality_and_hash(self):
        a = AState.make(["x", "y"])
        b = AState.make(["y", "x"])
        assert a == b
        assert hash(a) == hash(b)

    def test_with_flag(self):
        state = AState.make(["a"])
        assert state.with_flag("b", True).flags == frozenset({"a", "b"})
        assert state.with_flag("a", False).flags == frozenset()

    def test_with_flags_batch(self):
        state = AState.make(["a", "b"])
        updated = state.with_flags({"a": False, "c": True})
        assert updated.flags == frozenset({"b", "c"})

    def test_with_tag_delta_saturates(self):
        state = AState.make([], {"t": 1})
        assert state.with_tag_delta("t", 1).tag_count("t") == 2
        assert state.with_tag_delta("t", 1).with_tag_delta("t", 1).tag_count("t") == 2
        assert state.with_tag_delta("t", -1).tag_count("t") == 0
        assert state.with_tag_delta("t", -5).tag_count("t") == 0

    def test_label_deterministic(self):
        assert AState.make(["b", "a"]).label() == "{a,b}"
        assert AState.make([]).label() == "{}"

    def test_ordering_defined(self):
        states = sorted([AState.make(["b"]), AState.make(["a"])])
        assert states[0].flags == frozenset({"a"})


class TestFlagExprEval:
    def test_ref_and_const(self):
        state = AState.make(["ready"])
        assert eval_flag_expr(ast.FlagRef("ready"), state)
        assert not eval_flag_expr(ast.FlagRef("done"), state)
        assert eval_flag_expr(ast.FlagConst(True), state)
        assert not eval_flag_expr(ast.FlagConst(False), state)

    def test_not_and_or(self):
        state = AState.make(["a"])
        expr = ast.FlagOr(
            ast.FlagAnd(ast.FlagRef("a"), ast.FlagNot(ast.FlagRef("b"))),
            ast.FlagRef("c"),
        )
        assert eval_flag_expr(expr, state)
        assert not eval_flag_expr(expr, AState.make(["b"]))

    def test_guard_with_tags(self):
        param = flag_param(
            ast.FlagRef("ready"), [ast.TagGuard(tag_type="grp", binding="g")]
        )
        assert not guard_matches(param, AState.make(["ready"]))
        assert guard_matches(param, AState.make(["ready"], {"grp": 1}))


class TestRuntimeStates:
    def test_state_of_object(self):
        obj = BObject(obj_id=1, class_name="X", fields=[])
        obj.set_flag("a", True)
        tag = TagInstance(tag_id=0, tag_type="grp")
        obj.bind_tag(tag)
        state = state_of_object(obj)
        assert state.flags == frozenset({"a"})
        assert state.tag_count("grp") == 1

    def test_runtime_guard_matches(self):
        obj = BObject(obj_id=1, class_name="X", fields=[])
        obj.set_flag("ready", True)
        assert runtime_guard_matches(flag_param(ast.FlagRef("ready")), obj)
        obj.set_flag("ready", False)
        assert not runtime_guard_matches(flag_param(ast.FlagRef("ready")), obj)
