"""Core-group graph and preprocessing tests (paper §4.3.2-4.3.3)."""

from repro.core import annotated_cstg
from repro.schedule.coregroup import (
    build_group_graph,
    build_task_edges,
    task_is_replicable,
)
from repro.schedule.preprocess import build_group_tree, duplication_factors


def group_tasks(graph):
    return {frozenset(g.tasks) for g in graph.groups}


class TestTaskEdges:
    def test_keyword_edges(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        edges = build_task_edges(keyword_compiled.info, cstg, keyword_profile)
        pairs = {(e.src, e.dst, e.kind) for e in edges}
        assert ("startup", "processText", "new") in pairs
        assert ("processText", "mergeIntermediateResult", "transition") in pairs
        assert ("startup", "mergeIntermediateResult", "new") in pairs

    def test_new_edge_weight_is_expected_object_count(
        self, keyword_compiled, keyword_profile
    ):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        edges = build_task_edges(keyword_compiled.info, cstg, keyword_profile)
        text_edge = next(
            e for e in edges if e.src == "startup" and e.dst == "processText"
        )
        assert text_edge.objects_per_invocation == 6.0  # profiled with 6 sections

    def test_self_edge_on_cyclic_merge(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        edges = build_task_edges(keyword_compiled.info, cstg, keyword_profile)
        assert any(
            e.src == e.dst == "mergeIntermediateResult" for e in edges
        )


class TestGrouping:
    def test_replicability(self, keyword_compiled):
        assert task_is_replicable(keyword_compiled.info, "processText")
        assert task_is_replicable(keyword_compiled.info, "startup")
        assert not task_is_replicable(
            keyword_compiled.info, "mergeIntermediateResult"
        )

    def test_tagged_multiparam_replicable(self, tagged_compiled):
        assert task_is_replicable(tagged_compiled.info, "finishsave")

    def test_locality_merges_transition_chain(
        self, keyword_compiled, keyword_profile
    ):
        # processText hands Text objects to merge via a transition edge, so
        # the data-locality rule keeps them in one core group.
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        graph = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
        assert frozenset({"mergeIntermediateResult", "processText"}) in group_tasks(
            graph
        )
        assert frozenset({"startup"}) in group_tasks(graph)

    def test_group_with_any_replicable_task_is_replicable(
        self, keyword_compiled, keyword_profile
    ):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        graph = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
        merged = next(
            g for g in graph.groups if "processText" in g.tasks
        )
        assert merged.replicable  # processText replicates; merge stays pinned

    def test_cyclic_flag(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        graph = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
        merged = next(g for g in graph.groups if "mergeIntermediateResult" in g.tasks)
        assert merged.cyclic  # the Results self-loop
        startup = next(g for g in graph.groups if "startup" in g.tasks)
        assert not startup.cyclic

    def test_group_edges_condensed(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        graph = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
        startup_gid = graph.group_of_task["startup"]
        worker_gid = graph.group_of_task["processText"]
        edges = [
            e
            for e in graph.edges
            if e.src_group == startup_gid and e.dst_group == worker_gid
        ]
        assert edges and all(e.kind == "new" for e in edges)

    def test_roots(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        graph = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
        roots = graph.roots()
        assert graph.group_of_task["startup"] in roots


class TestGroupTree:
    def test_tree_structure(self, keyword_compiled, keyword_profile):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        graph = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
        tree = build_group_tree(graph)
        assert tree.roots
        text = tree.format()
        assert "startup" in text

    def test_duplication_factors_default_one(
        self, keyword_compiled, keyword_profile
    ):
        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        graph = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
        factors = duplication_factors(graph)
        assert all(v >= 1 for v in factors.values())

    def test_multi_source_group_duplicated(self):
        from repro.core import compile_program, profile_program

        source = """
        class W { flag todo; int v; W(int v) { this.v = v; } }
        task startup(StartupObject s in initialstate) {
            W a = new W(1){todo := true};
            W b = new W(2){todo := true};
            taskexit(s: initialstate := false);
        }
        task left(W w in todo) {
            W next = new W(w.v){todo := false};
            taskexit(w: todo := false);
        }
        """
        compiled = compile_program(source)
        profile = profile_program(compiled, ["0"])
        cstg = annotated_cstg(compiled, profile)
        graph = build_group_graph(compiled.info, cstg, profile)
        tree = build_group_tree(graph)
        assert len(tree.nodes) >= len(graph.groups)
