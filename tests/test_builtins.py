"""Coverage of the builtin library surface."""

import math

import pytest

from repro.core import compile_program, run_sequential
from repro.sema import builtins


def run_print(expr: str, kind: str = "Float") -> str:
    source = (
        "class SeqMain { SeqMain() { } void run(String[] args) "
        "{ System.print%s(%s); } } "
        "task startup(StartupObject s in initialstate) "
        "{ taskexit(s: initialstate := false); }" % (kind, expr)
    )
    return run_sequential(compile_program(source), ["0"]).stdout


class TestMathBuiltins:
    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("Math.sqrt(9.0)", 3.0),
            ("Math.sin(0.0)", 0.0),
            ("Math.cos(0.0)", 1.0),
            ("Math.tan(0.0)", 0.0),
            ("Math.atan(1.0)", math.atan(1.0)),
            ("Math.atan2(1.0, 1.0)", math.atan2(1.0, 1.0)),
            ("Math.exp(0.0)", 1.0),
            ("Math.log(1.0)", 0.0),
            ("Math.pow(2.0, 10.0)", 1024.0),
            ("Math.abs(-2.5)", 2.5),
            ("Math.min(1.0, 2.0)", 1.0),
            ("Math.max(1.0, 2.0)", 2.0),
            ("Math.floor(2.7)", 2.0),
            ("Math.ceil(2.2)", 3.0),
        ],
    )
    def test_float_functions(self, expr, expected):
        assert float(run_print(expr)) == pytest.approx(expected)

    @pytest.mark.parametrize(
        "expr,expected",
        [
            ("Math.iabs(-4)", "4"),
            ("Math.imin(3, 7)", "3"),
            ("Math.imax(3, 7)", "7"),
        ],
    )
    def test_int_functions(self, expr, expected):
        assert run_print(expr, kind="Int") == expected


class TestStringBuiltins:
    def test_index_of(self):
        assert run_print('"hello".indexOf("ll")', kind="Int") == "2"
        assert run_print('"hello".indexOf("zz")', kind="Int") == "-1"

    def test_hash_code_deterministic(self):
        first = run_print('"abc".hashCode()', kind="Int")
        second = run_print('"abc".hashCode()', kind="Int")
        assert first == second

    def test_value_of(self):
        assert run_print('String.valueOf(42)', kind="String") == "42"

    def test_substring_bounds(self):
        assert run_print('"abcdef".substring(1, 4)', kind="String") == "bcd"


class TestBuiltinTable:
    def test_all_builtins_have_positive_cost(self):
        for fn in builtins.all_builtins():
            assert fn.cost > 0, fn.key

    def test_keys_unique(self):
        keys = [fn.key for fn in builtins.all_builtins()]
        assert len(keys) == len(set(keys))

    def test_lookup_by_key(self):
        fn = builtins.builtin_by_key("Math.sqrt")
        assert fn.qualifier == "Math"
        with pytest.raises(KeyError):
            builtins.builtin_by_key("Math.nope")

    def test_namespace_lookup(self):
        assert builtins.lookup_namespace_function("Math", "sqrt") is not None
        assert builtins.lookup_namespace_function("Math", "nope") is None
        assert builtins.lookup_string_method("length") is not None
        assert builtins.lookup_string_method("nope") is None

    def test_namespaces_frozen(self):
        assert "Math" in builtins.NAMESPACES
        assert "System" in builtins.NAMESPACES
