"""The serve-layer failure story: retries, deadlines, drain, chaos.

The contract under test extends serving transparency into failure space:
because served results are deterministic, a retry can only *recover* an
answer, never change it — so a client that survives injected connection
drops must return bytes identical to an undisturbed call (and to the
offline pipeline). Around that: per-request deadlines that actually
reclaim the worker thread, graceful drain that answers admitted work and
refuses new work with a typed error, idle-connection reclamation, honest
``degraded`` reporting when the cache cannot be persisted, and a seeded
network-chaos harness whose invariants are machine-checked.
"""

import json
import os
import random
import socket
import threading
import time

import pytest

from conftest import KEYWORD_SOURCE

from repro.search.storage import StorageError
from repro.serve import (
    MAX_LINE_BYTES,
    ChaosProxy,
    ClientRetryPolicy,
    NetChaosPlan,
    NetFault,
    ProtocolError,
    ServeClient,
    ServeConfig,
    ServeError,
    ServeUnavailable,
    ServerThread,
    execute_synthesize,
    run_net_chaos,
    wait_for_server,
)
from repro.serve.client import _jitter
from repro.serve.netchaos import PROXY_FAULT_KINDS
from repro.serve.protocol import decode, encode

ARGS = ["6"]
CORES = 4

#: Small but real synthesize request (mirrors tests/test_serve.py).
REQUEST = dict(
    source=KEYWORD_SOURCE,
    args=ARGS,
    optimize=True,
    cores=CORES,
    seed=7,
    max_iterations=3,
    max_evaluations=20,
)

#: A variant that takes seconds of wall clock (big input, so each
#: candidate simulation is expensive) — long enough to outlive short
#: deadlines and drain timeouts deterministically.
SLOW_REQUEST = dict(
    REQUEST,
    args=["300"],
    cores=8,
    max_iterations=100000,
    max_evaluations=1000000,
)


def canonical(result):
    return json.dumps(result, sort_keys=True)


def offline_result(**overrides):
    result, _telemetry = execute_synthesize(dict(REQUEST, **overrides))
    return result


def fast_policy(**overrides):
    defaults = dict(max_attempts=4, backoff_base=0.01, backoff_cap=0.05)
    defaults.update(overrides)
    return ClientRetryPolicy(**defaults)


# -- the retry policy ----------------------------------------------------------


class TestClientRetryPolicy:
    def test_validate_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_attempts"):
            ClientRetryPolicy(max_attempts=0).validate()
        with pytest.raises(ValueError, match="non-negative"):
            ClientRetryPolicy(backoff_base=-1).validate()
        with pytest.raises(ValueError, match="connect_timeout"):
            ClientRetryPolicy(connect_timeout=0).validate()

    def test_backoff_deterministic_and_capped(self):
        policy = ClientRetryPolicy(backoff_base=0.1, backoff_cap=0.8)
        series = [policy.backoff("synthesize", n) for n in range(1, 8)]
        assert series == [policy.backoff("synthesize", n) for n in range(1, 8)]
        # Jitter keeps each delay in [0.5, 1.0) of the exponential value.
        for failure, delay in enumerate(series, start=1):
            raw = min(0.8, 0.1 * 2 ** (failure - 1))
            assert raw * 0.5 <= delay < raw
        # Distinct ops get distinct jitter (sha256-keyed, not shared).
        assert policy.backoff("ping", 1) != policy.backoff("synthesize", 1)

    def test_jitter_matches_supervise_shape(self):
        from repro.search.supervise import _jitter as supervise_jitter

        # Same construction: sha256(f"{key}:{round}") first 4 bytes / 2^32.
        assert _jitter("7", 3) == supervise_jitter(7, 3)
        assert 0.0 <= _jitter("synthesize", 1) < 1.0


# -- the retrying client -------------------------------------------------------


class TestRetryingClient:
    def test_connection_drops_are_bit_identical_to_clean_call(self, tmp_path):
        """The acceptance property: a client completing through injected
        connection drops returns the same bytes as a clean call (and as
        the offline pipeline)."""
        baseline = canonical(offline_result())
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as clean:
                clean_bytes = canonical(
                    clean.call("synthesize", **REQUEST)["result"]
                )
            assert clean_bytes == baseline
            for kind in ("reset", "truncate", "garbage"):
                proxy = ChaosProxy(handle.port)
                try:
                    proxy.arm(
                        NetChaosPlan(
                            faults=(NetFault(request=0, kind=kind),), seed=0
                        )
                    )
                    with ServeClient(
                        proxy.host,
                        proxy.port,
                        timeout=30.0,
                        retry_policy=fast_policy(),
                    ) as client:
                        response = client.call("synthesize", **REQUEST)
                        assert canonical(response["result"]) == baseline, kind
                        assert client.retries == 1
                        assert proxy.fired == [(0, kind)]
                finally:
                    proxy.close()

    def test_delay_past_timeout_recovers(self, tmp_path):
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as warm:
                warm.call("synthesize", **REQUEST)
            proxy = ChaosProxy(handle.port, delay_seconds=1.0)
            try:
                proxy.arm(
                    NetChaosPlan(
                        faults=(NetFault(request=0, kind="delay"),), seed=0
                    )
                )
                with ServeClient(
                    proxy.host,
                    proxy.port,
                    timeout=0.3,
                    retry_policy=fast_policy(),
                ) as client:
                    response = client.call("synthesize", **REQUEST)
                assert canonical(response["result"]) == canonical(
                    offline_result()
                )
            finally:
                proxy.close()

    def test_deterministic_failures_are_not_retried(self):
        with ServerThread(ServeConfig()) as handle:
            with handle.client(retry_policy=fast_policy()) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.call("synthesize", source="task oops {", cores=4)
                assert excinfo.value.code in ("bad_request", "program_error")
                assert client.retries == 0

    def test_exhausted_retries_raise_serve_unavailable(self):
        # A port nothing listens on: every connect attempt fails.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServeUnavailable) as excinfo:
            ServeClient(
                "127.0.0.1",
                port,
                retry_policy=fast_policy(max_attempts=2),
            )
        assert excinfo.value.last_error is not None

    def test_wait_for_server_raises_serve_unavailable(self):
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ServeUnavailable, match="no daemon answered"):
            wait_for_server("127.0.0.1", port, timeout=0.2, interval=0.05)

    def test_retry_after_hint_is_capped_and_used(self):
        policy = ClientRetryPolicy(retry_after_cap=0.0, backoff_base=0.0)
        error = ServeError("overloaded", "busy", retry_after_ms=60000)
        # The hint (60s) must be capped to retry_after_cap, not slept raw:
        # exercised end-to-end below; here just the attribute surface.
        assert error.retry_after_ms == 60000
        assert policy.retry_after_cap == 0.0


# -- deadlines -----------------------------------------------------------------


class TestRequestDeadlines:
    def test_server_deadline_answers_typed_error_and_reclaims_thread(self):
        config = ServeConfig(request_deadline=0.1)
        with ServerThread(config) as handle:
            with handle.client() as client:
                with pytest.raises(ServeError) as excinfo:
                    client.call("synthesize", **SLOW_REQUEST)
                assert excinfo.value.code == "deadline_exceeded"
                # Cooperative cancellation: the worker thread comes home
                # and the admission slot is released.
                for _ in range(400):
                    metrics = client.metrics()
                    if metrics["admitted"] == 0:
                        break
                    time.sleep(0.01)
                assert metrics["admitted"] == 0
                assert (
                    metrics["counters"]["serve_deadline_exceeded"] == 1
                )
                assert (
                    metrics["counters"]["serve_cancelled_reclaimed"] == 1
                )
                # The daemon still answers real work afterwards.
                response = client.call("synthesize", **REQUEST)
                assert canonical(response["result"]) == canonical(
                    offline_result()
                )

    def test_per_request_deadline_ms(self):
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as client:
                with pytest.raises(ServeError) as excinfo:
                    client.call(
                        "synthesize", deadline_ms=80, **SLOW_REQUEST
                    )
                assert excinfo.value.code == "deadline_exceeded"

    def test_invalid_deadline_ms_rejected(self):
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as client:
                for bad in (0, -5, "soon", True):
                    with pytest.raises(ServeError) as excinfo:
                        client.call("synthesize", deadline_ms=bad, **REQUEST)
                    assert excinfo.value.code == "bad_request"

    def test_deadline_exceeded_is_not_retried(self):
        with ServerThread(ServeConfig(request_deadline=0.1)) as handle:
            with handle.client(retry_policy=fast_policy()) as client:
                with pytest.raises(ServeError) as excinfo:
                    client.call("synthesize", **SLOW_REQUEST)
                assert excinfo.value.code == "deadline_exceeded"
                assert client.retries == 0

    def test_generous_deadline_stays_bit_identical_to_offline(self):
        """Acceptance: fault-free runs with deadlines and retries enabled
        remain byte-identical to the offline pipeline."""
        config = ServeConfig(request_deadline=60.0)
        with ServerThread(config) as handle:
            with handle.client(retry_policy=fast_policy()) as client:
                response = client.call("synthesize", **REQUEST)
                assert client.retries == 0
                assert canonical(response["result"]) == canonical(
                    offline_result()
                )


# -- graceful drain ------------------------------------------------------------


class TestGracefulDrain:
    def _start_slow_call(self, handle, box):
        def body():
            try:
                with handle.client(timeout=60.0) as slow:
                    box["response"] = slow.call("synthesize", **SLOW_REQUEST)
            except (ServeError, ServeUnavailable, ConnectionError, OSError) as exc:
                box["error"] = exc

        thread = threading.Thread(target=body, daemon=True)
        thread.start()
        return thread

    def _wait_admitted(self, client, want=1, timeout=10.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            if client.metrics()["admitted"] >= want:
                return
            time.sleep(0.01)
        raise AssertionError("request was never admitted")

    def test_drain_rejects_new_heavy_work_with_typed_error(self):
        config = ServeConfig(drain_timeout=0.3)
        with ServerThread(config) as handle:
            box = {}
            thread = self._start_slow_call(handle, box)
            with handle.client() as control:
                self._wait_admitted(control)
                shutdown = control.call("shutdown")["result"]
                assert shutdown["stopping"] is True
                assert shutdown["draining"] >= 1
                # New heavy work is refused with the typed drain error
                # and a retry hint for the successor daemon.
                with pytest.raises(ServeError) as excinfo:
                    control.call("synthesize", **REQUEST)
                assert excinfo.value.code == "draining"
                assert excinfo.value.retry_after_ms is not None
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            # The in-flight request outlived drain_timeout, so it was
            # cooperatively cancelled with the draining error — a typed
            # outcome, not a dropped connection or a hang.
            assert "error" in box
            assert isinstance(box["error"], ServeError)
            assert box["error"].code == "draining"

    def test_drain_answers_admitted_work_within_timeout(self):
        config = ServeConfig(drain_timeout=60.0)
        with ServerThread(config) as handle:
            box = {}
            moderate = dict(
                REQUEST, max_iterations=20, max_evaluations=2000
            )

            def body():
                with handle.client(timeout=60.0) as slow:
                    box["response"] = slow.call("synthesize", **moderate)

            thread = threading.Thread(target=body, daemon=True)
            thread.start()
            with handle.client() as control:
                self._wait_admitted(control)
                control.call("shutdown")
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            # Admitted before the drain began → answered, and correctly.
            result, _ = execute_synthesize(dict(moderate))
            assert canonical(box["response"]["result"]) == canonical(result)


# -- connection hygiene --------------------------------------------------------


class TestConnectionHygiene:
    def test_idle_connections_are_closed(self):
        config = ServeConfig(idle_timeout=0.2)
        with ServerThread(config) as handle:
            sock = socket.create_connection(
                (handle.host, handle.port), timeout=10.0
            )
            started = time.monotonic()
            assert sock.makefile("rb").readline() == b""
            assert time.monotonic() - started < 5.0
            sock.close()
            with handle.client() as client:
                counters = client.metrics()["counters"]
                assert counters["serve_idle_closed"] == 1

    def test_overlong_line_gets_typed_error_before_close(self):
        with ServerThread(ServeConfig()) as handle:
            sock = socket.create_connection(
                (handle.host, handle.port), timeout=30.0
            )
            sock.sendall(b"x" * (MAX_LINE_BYTES + 16) + b"\n")
            line = sock.makefile("rb").readline()
            response = decode(line)
            assert response["ok"] is False
            assert response["error"]["code"] == "bad_request"
            assert "exceeds" in response["error"]["message"]
            sock.close()
            with handle.client() as client:
                counters = client.metrics()["counters"]
                assert counters["serve_overlong_lines"] == 1
                assert counters["serve_errors"] >= 1


# -- degradation reporting -----------------------------------------------------


class TestDegradedReporting:
    def test_flush_failure_flips_degraded_until_success(self, tmp_path):
        config = ServeConfig(
            cache_path=str(tmp_path / "cache.bin"), flush_interval=3600.0
        )
        with ServerThread(config) as handle:
            with handle.client() as client:
                client.call("synthesize", **REQUEST)
                assert client.ping()["degraded"] is False
                handle.server.store.fail_flushes = 1
                with pytest.raises(ServeError) as excinfo:
                    client.flush()
                assert excinfo.value.code == "internal_error"
                assert client.ping()["degraded"] is True
                metrics = client.metrics()
                assert metrics["degraded"] is True
                assert "injected flush failure" in str(
                    metrics["last_flush_error"]["error"]
                )
                client.flush()
                assert client.ping()["degraded"] is False
                assert client.metrics()["last_flush_error"] is None

    def test_inject_op_is_gated(self, tmp_path):
        with ServerThread(ServeConfig()) as handle:
            with handle.client() as client:
                with pytest.raises(ServeError) as excinfo:
                    client.call("inject", fault="flush_fail")
                assert excinfo.value.code == "unknown_op"

    def test_inject_op_arms_store_fault_point(self, tmp_path):
        config = ServeConfig(
            cache_path=str(tmp_path / "cache.bin"),
            flush_interval=3600.0,
            allow_fault_injection=True,
        )
        with ServerThread(config) as handle:
            with handle.client() as client:
                armed = client.call("inject", fault="flush_fail", count=2)
                assert armed["result"] == {"armed": "flush_fail", "count": 2}
                assert handle.server.store.fail_flushes == 2
                with pytest.raises(ServeError):
                    client.call("inject", fault="meteor_strike")

    def test_store_fault_point_leaves_store_dirty(self, tmp_path):
        from repro.serve import SimCacheStore

        store = SimCacheStore(path=str(tmp_path / "cache.bin"))
        store.cache_for("ctx")
        store.mark_dirty()
        store.fail_flushes = 1
        with pytest.raises(StorageError, match="injected flush failure"):
            store.flush()
        assert store.dirty  # the failed write persisted nothing
        store.flush()
        assert not store.dirty


# -- cooperative cancellation seam ---------------------------------------------


class TestCancellationSeam:
    def test_cancel_check_stops_search_between_iterations(self):
        from repro.core import compile_program, profile_program, synthesize_layout
        from repro.core.options import SynthesisOptions
        from repro.schedule.anneal import SearchCancelled

        compiled = compile_program(KEYWORD_SOURCE, "<test>", optimize=True)
        profile = profile_program(compiled, ARGS)
        calls = []

        def cancel_after_two():
            calls.append(None)
            return len(calls) > 2

        with pytest.raises(SearchCancelled, match="cancelled"):
            synthesize_layout(
                compiled,
                profile,
                CORES,
                options=SynthesisOptions(
                    seed=7, cancel_check=cancel_after_two
                ),
            )

    def test_service_checks_cancel_before_stages(self):
        event = threading.Event()
        event.set()
        from repro.schedule.anneal import SearchCancelled

        with pytest.raises(SearchCancelled, match="before compile"):
            execute_synthesize(dict(REQUEST), cancel=event)


# -- protocol fuzzing ----------------------------------------------------------


@pytest.mark.timeout(120)
class TestProtocolFuzz:
    def test_mutated_request_lines_never_crash_or_hang(self):
        """Seeded random byte mutations of a valid request line must
        produce a typed error response or a clean close — never a crash
        and never a hang (every socket op is deadline-bounded)."""
        valid = encode(
            {"op": "compile", "source": KEYWORD_SOURCE, "optimize": True}
        )[:-1]  # strip the newline; we re-add after mutation
        with ServerThread(ServeConfig()) as handle:
            rng = random.Random(1234)
            for round_index in range(40):
                line = bytearray(valid)
                for _ in range(rng.randint(1, 8)):
                    line[rng.randrange(len(line))] = rng.randrange(256)
                if rng.random() < 0.3:
                    line = line[: rng.randrange(1, len(line))]
                sock = socket.create_connection(
                    (handle.host, handle.port), timeout=10.0
                )
                try:
                    sock.sendall(bytes(line) + b"\n")
                    response = sock.makefile("rb").readline()
                finally:
                    sock.close()
                if response:
                    decoded = json.loads(response.decode("utf-8"))
                    assert "ok" in decoded, decoded
                    if not decoded["ok"]:
                        assert decoded["error"]["code"], decoded
                if round_index % 10 == 9:
                    with handle.client() as probe:
                        assert probe.ping()["pong"] is True
            with handle.client() as probe:
                assert probe.ping()["pong"] is True

    def test_binary_garbage_and_partial_lines(self):
        with ServerThread(ServeConfig(idle_timeout=0.5)) as handle:
            rng = random.Random(99)
            for payload in (
                b"\x00\x01\x02\xff\xfe\n",
                b"{\"op\": \"ping\"",  # no newline: idle timeout reclaims
                bytes(rng.randrange(256) for _ in range(512)) + b"\n",
            ):
                sock = socket.create_connection(
                    (handle.host, handle.port), timeout=10.0
                )
                sock.settimeout(10.0)
                try:
                    sock.sendall(payload)
                    sock.makefile("rb").readline()  # error line or close
                finally:
                    sock.close()
            with handle.client() as probe:
                assert probe.ping()["pong"] is True


# -- the net-chaos harness -----------------------------------------------------


class TestNetChaosPlans:
    def test_plan_zero_is_control(self):
        plan = NetChaosPlan.make(0, seed=42)
        assert plan.is_empty()
        assert "control" in plan.describe()

    def test_plans_are_seed_deterministic(self):
        for index in range(1, 6):
            assert NetChaosPlan.make(index, seed=7) == NetChaosPlan.make(
                index, seed=7
            )
        assert NetChaosPlan.make(1, seed=7) != NetChaosPlan.make(1, seed=8)

    def test_plans_use_known_kinds_within_horizon(self):
        for index in range(1, 12):
            plan = NetChaosPlan.make(index, seed=index, horizon=3)
            for fault in plan.faults:
                assert fault.kind in PROXY_FAULT_KINDS
                assert 0 <= fault.request < 3

    def test_sweep_covers_server_side_faults(self):
        plans = [NetChaosPlan.make(i, seed=i) for i in range(6)]
        assert any(plan.kill for plan in plans)
        assert any(plan.flush_fail for plan in plans)

    def test_proxy_is_transparent_without_a_plan(self):
        with ServerThread(ServeConfig()) as handle:
            proxy = ChaosProxy(handle.port)
            try:
                with ServeClient(
                    proxy.host, proxy.port, timeout=30.0
                ) as client:
                    response = client.call("synthesize", **REQUEST)
                assert canonical(response["result"]) == canonical(
                    offline_result()
                )
                assert proxy.fired == []
            finally:
                proxy.close()


@pytest.mark.timeout(300)
class TestNetChaosSweep:
    def test_small_sweep_holds_all_invariants(self, tmp_path):
        """Three plans cover the whole fault surface: plan 0 control,
        plan 1 proxy faults + flush failure, plan 2 proxy faults + a
        mid-request SIGKILL with restart."""
        report = run_net_chaos(
            plans=3, base_seed=0, workdir=str(tmp_path)
        )
        assert report.ok, "\n".join(report.violations())
        assert report.shutdown_exit == 0
        assert len(report.runs) == 3
        assert report.runs[0].plan.is_empty()
        assert report.runs[0].retries == 0
        assert report.runs[1].plan.flush_fail
        assert report.runs[2].plan.kill
        assert report.total_fired() >= 1
        payload = report.as_dict()
        assert payload["format"] == "repro.serve/net-chaos-report-v1"
        assert payload["ok"] is True
        json.dumps(payload)  # artifact must be JSON-serializable


# -- observability under chaos -------------------------------------------------


class TestObservabilityUnderChaos:
    """The chaos paths must leave the exports healthy: after a deadline
    kill or mid-drain, /metrics still renders valid Prometheus text and
    the daemon's profiler stacks are balanced (every span closed)."""

    @staticmethod
    def _fetch(handle, path):
        import urllib.request

        url = f"http://{handle.server.metrics_host}:{handle.metrics_port}{path}"
        try:
            with urllib.request.urlopen(url, timeout=10) as response:
                return response.status, response.read().decode("utf-8")
        except urllib.error.HTTPError as exc:
            return exc.code, exc.read().decode("utf-8")

    @staticmethod
    def _stacks_balanced(profiler):
        return all(
            len(state.stack_node) == 1
            for state in profiler._states.values()
        )

    def test_deadline_exceeded_leaves_exports_healthy(self):
        from repro.obs.promexp import validate_prometheus_text

        config = ServeConfig(request_deadline=0.1, metrics_port=0)
        with ServerThread(config) as handle:
            with handle.client() as client:
                with pytest.raises(ServeError) as excinfo:
                    client.call("synthesize", **SLOW_REQUEST)
                assert excinfo.value.code == "deadline_exceeded"
                # Wait for the cancelled worker to come home so its
                # span unwinding has finished before we assert on it.
                for _ in range(400):
                    if client.metrics()["admitted"] == 0:
                        break
                    time.sleep(0.01)
            status, text = self._fetch(handle, "/metrics")
            assert status == 200
            summary = validate_prometheus_text(text)
            assert summary["families"] > 0
            assert "repro_serve_deadline_exceeded_total 1" in text
            # The killed request did not leak an open phase.
            assert self._stacks_balanced(handle.server.profiler)
            status, body = self._fetch(handle, "/profilez")
            assert status == 200
            names = {n["name"] for n in json.loads(body)["phases"]}
            assert "serve.synthesize" in names

    def test_draining_daemon_still_answers_metrics(self):
        from repro.obs.promexp import validate_prometheus_text

        config = ServeConfig(drain_timeout=0.3, metrics_port=0)
        with ServerThread(config) as handle:
            box = {}

            def body():
                try:
                    with handle.client(timeout=60.0) as slow:
                        box["response"] = slow.call(
                            "synthesize", **SLOW_REQUEST
                        )
                except (ServeError, ServeUnavailable, OSError) as exc:
                    box["error"] = exc

            thread = threading.Thread(target=body, daemon=True)
            thread.start()
            with handle.client() as control:
                deadline = time.monotonic() + 10.0
                while time.monotonic() < deadline:
                    if control.metrics()["admitted"] >= 1:
                        break
                    time.sleep(0.01)
                control.call("shutdown")
                # Mid-drain: health honestly reports unready (503) while
                # the scrape endpoint keeps answering valid text —
                # observability must not die before the daemon does.
                status, body_text = self._fetch(handle, "/healthz")
                assert status == 503
                health = json.loads(body_text)
                assert health["ok"] is False
                assert health["draining"] is True
                status, text = self._fetch(handle, "/metrics")
                assert status == 200
                validate_prometheus_text(text)
                assert "repro_serve_draining 1" in text
            thread.join(timeout=30.0)
            assert not thread.is_alive()
            # The cancelled slow call unwound its spans too.
            assert self._stacks_balanced(handle.server.profiler)
