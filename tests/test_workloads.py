"""Workload scaling helper tests."""

import pytest

from repro.bench import BENCHMARKS, benchmark_names
from repro.bench.workloads import double_args, scale_args


@pytest.mark.parametrize("name", benchmark_names())
def test_double_matches_suite_spec(name):
    spec = BENCHMARKS[name]
    assert tuple(double_args(name, spec.args)) == spec.double_args


def test_scale_preserves_other_args():
    scaled = scale_args("KMeans", ["10", "40", "4"], 3.0)
    assert scaled == ["30", "40", "4"]


def test_scale_floor_at_one():
    assert scale_args("Fractal", ["4"], 0.01) == ["1"]


def test_unknown_benchmark_rejected():
    with pytest.raises(KeyError):
        scale_args("Nope", ["1"], 2.0)


def test_fractional_scaling_rounds():
    assert scale_args("Series", ["10", "8"], 1.3) == ["13", "8"]
    assert scale_args("Series", ["10", "8"], 1.24) == ["12", "8"]
