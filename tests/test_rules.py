"""Transformation-rule tests (§4.3.3), including the rate-matching rule on
a synthetic producer/consumer pipeline."""

import pytest

from repro.core import (
    annotated_cstg,
    compile_program,
    profile_program,
    run_layout,
    single_core_layout,
)
from repro.schedule.coregroup import build_group_graph
from repro.schedule.layout import Layout
from repro.schedule.rules import (
    group_cycle_time,
    group_processing_time,
    suggest_replicas,
)

# A generator task cycles on one Gen object, emitting one cheap-to-produce
# but expensive-to-consume Item per trip around the cycle: the shape the
# rate-matching rule exists for.
PIPELINE_SOURCE = """
class Gen {
    flag running;
    flag done;
    int remaining;
    Gen(int n) { this.remaining = n; }
}

class Item {
    flag fresh;
    flag cooked;
    int v;
    int result;
    Item(int v) { this.v = v; this.result = 0; }
    void crunch() {
        int acc = 0;
        for (int i = 0; i < 400; i++) acc = acc + (i * this.v) % 97;
        this.result = acc;
    }
}

class Sink {
    flag open;
    flag closed;
    int seen;
    int expected;
    Sink(int expected) { this.expected = expected; this.seen = 0; }
    boolean absorb(Item i) {
        this.seen = this.seen + 1;
        return this.seen == this.expected;
    }
}

task startup(StartupObject s in initialstate) {
    int n = Integer.parseInt(s.args[0]);
    Gen g = new Gen(n){running := true};
    Sink sink = new Sink(n){open := true};
    taskexit(s: initialstate := false);
}

task generate(Gen g in running) {
    g.remaining = g.remaining - 1;
    Item item = new Item(g.remaining){fresh := true};
    if (g.remaining == 0) {
        taskexit(g: running := false, done := true);
    }
    taskexit();
}

task consume(Item item in fresh) {
    item.crunch();
    taskexit(item: fresh := false, cooked := true);
}

task drain(Sink sink in open, Item item in cooked) {
    boolean full = sink.absorb(item);
    if (full) {
        System.printInt(sink.seen);
        taskexit(sink: open := false, closed := true; item: cooked := false);
    }
    taskexit(item: cooked := false);
}
"""


@pytest.fixture(scope="module")
def pipeline():
    compiled = compile_program(PIPELINE_SOURCE, "pipeline")
    profile = profile_program(compiled, ["24"])
    cstg = annotated_cstg(compiled, profile)
    graph = build_group_graph(compiled.info, cstg, profile)
    return compiled, profile, graph


class TestRateMatching:
    def test_generator_group_is_cyclic(self, pipeline):
        _, _, graph = pipeline
        gen_group = graph.group(graph.group_of_task["generate"])
        assert gen_group.cyclic

    def test_rate_match_rule_fires(self, pipeline):
        compiled, profile, graph = pipeline
        suggestions = suggest_replicas(compiled.info, graph, profile, 16)
        consume_gid = graph.group_of_task["consume"]
        suggestion = suggestions[consume_gid]
        assert suggestion.rule == "rate-match"
        # Consumption is much slower than generation: several replicas.
        assert suggestion.replicas >= 3

    def test_rate_match_capped_by_cores(self, pipeline):
        compiled, profile, graph = pipeline
        suggestions = suggest_replicas(compiled.info, graph, profile, 4)
        consume_gid = graph.group_of_task["consume"]
        assert suggestions[consume_gid].replicas <= 4

    def test_rule_disabled_falls_back(self, pipeline):
        compiled, profile, graph = pipeline
        suggestions = suggest_replicas(
            compiled.info, graph, profile, 16, enable_rate_match=False
        )
        consume_gid = graph.group_of_task["consume"]
        # Without rate matching the only new-edge weight is ~1 per
        # generator invocation, so data-parallelization suggests ~1.
        assert suggestions[consume_gid].replicas <= 2

    def test_timing_helpers(self, pipeline):
        compiled, profile, graph = pipeline
        gen_gid = graph.group_of_task["generate"]
        consume_gid = graph.group_of_task["consume"]
        assert group_cycle_time(graph, profile, gen_gid) > 0
        assert group_processing_time(graph, profile, consume_gid) > (
            group_cycle_time(graph, profile, gen_gid)
        )


class TestPipelineExecution:
    def test_streaming_pipeline_correct(self, pipeline):
        compiled, _, _ = pipeline
        result = run_layout(compiled, single_core_layout(compiled), ["24"])
        assert result.stdout == "24"
        assert result.invocations["generate"] == 24
        assert result.invocations["consume"] == 24

    def test_replicated_consumers_speed_up_pipeline(self, pipeline):
        compiled, _, _ = pipeline
        single = run_layout(compiled, single_core_layout(compiled), ["24"])
        mapping = {t: [0] for t in compiled.info.tasks}
        mapping["consume"] = [1, 2, 3, 4, 5]
        layout = Layout.make(6, mapping)
        parallel = run_layout(compiled, layout, ["24"])
        assert parallel.stdout == "24"
        assert parallel.total_cycles < single.total_cycles / 2
