"""IR optimizer tests: folding, DCE, threading, and semantic preservation."""

import pytest

from repro.bench import benchmark_names, load_source
from repro.core import compile_program, run_layout, run_sequential, single_core_layout
from repro.ir import instructions as ir
from repro.ir.optimize import optimize_function, optimize_program
from repro.ir.builder import lower_program
from repro.lang.parser import parse_program
from repro.sema import analyze


def lowered(source: str):
    info = analyze(parse_program(source))
    return lower_program(info)


def optimized_task(body: str):
    program = lowered(
        "task t(StartupObject s in initialstate) { %s }" % body
    )
    func = program.tasks["t"]
    stats = optimize_function(func)
    return func, stats


def instr_count(func, kind=None):
    total = 0
    for _, instr in func.all_instructions():
        if kind is None or isinstance(instr, kind):
            total += 1
    return total


class TestFolding:
    def test_constant_arithmetic_folds(self):
        func, stats = optimized_task("int x = 2 + 3 * 4; System.printInt(x);")
        assert stats["folded"] >= 2
        assert instr_count(func, ir.BinOp) == 0
        consts = [
            i.args[0].value
            for _, i in func.all_instructions()
            if isinstance(i, ir.CallBuiltin)
        ]
        assert consts == [14]

    def test_float_folds(self):
        func, stats = optimized_task("float x = 1.5 * 2.0; System.printFloat(x);")
        assert instr_count(func, ir.BinOp) == 0

    def test_division_by_zero_not_folded(self):
        func, _ = optimized_task("int x = 1 / 0; System.printInt(x);")
        divisions = [
            i
            for _, i in func.all_instructions()
            if isinstance(i, ir.BinOp) and i.op == "/"
        ]
        assert divisions  # the fault is preserved

    def test_branch_on_constant_folds(self):
        func, _ = optimized_task(
            "boolean dbg = false; if (dbg) System.printInt(1); "
            "System.printInt(2);"
        )
        assert instr_count(func, ir.Branch) == 0
        prints = instr_count(func, ir.CallBuiltin)
        assert prints == 1  # the dead print was removed with its block

    def test_string_concat_folds(self):
        func, _ = optimized_task('String s = "a" + "b"; System.printString(s);')
        assert instr_count(func, ir.BinOp) == 0

    def test_tostr_folds(self):
        func, _ = optimized_task('System.printString("n=" + 5);')
        assert instr_count(func, ir.UnOp) == 0
        assert instr_count(func, ir.BinOp) == 0


class TestDeadCode:
    def test_unused_pure_computation_removed(self):
        func, stats = optimized_task(
            "int a = 5; int b = a * 100; System.printInt(a);"
        )
        assert stats["dead"] >= 1
        assert instr_count(func, ir.BinOp) == 0

    def test_side_effects_kept(self):
        func, _ = optimized_task("System.printInt(1); System.printInt(2);")
        assert instr_count(func, ir.CallBuiltin) == 2

    def test_faulting_load_kept(self):
        # A null load must still fault even when its result is unused.
        func, _ = optimized_task(
            "int[] a = null; int unused = a[0]; System.printInt(1);"
        )
        assert instr_count(func, ir.ALoad) == 1

    def test_tag_registers_kept(self, tagged_compiled):
        import copy

        func = copy.deepcopy(tagged_compiled.ir_program.tasks["startsave"])
        optimize_function(func)
        assert instr_count(func, ir.NewTag) == 1


class TestControlFlow:
    def test_jump_threading_and_compaction(self):
        func, stats = optimized_task(
            "if (1 < 2) { int a = 1; } System.printInt(3);"
        )
        # The constant condition folds; empty blocks thread away.
        assert instr_count(func, ir.Branch) == 0
        assert stats["blocks_removed"] >= 1

    def test_loop_structure_preserved(self):
        func, _ = optimized_task(
            "int acc = 0; for (int i = 0; i < 3; i++) acc = acc + i; "
            "System.printInt(acc);"
        )
        assert instr_count(func, ir.Branch) >= 1  # the loop test remains


class TestSemanticPreservation:
    SMALL_ARGS = {
        "Tracking": ["8", "6"],
        "KMeans": ["4", "6", "2"],
        "MonteCarlo": ["6", "25"],
        "FilterBank": ["5", "16"],
        "Fractal": ["10"],
        "Series": ["6", "8"],
        "Keyword": ["5"],
    }

    @pytest.mark.parametrize("name", benchmark_names())
    def test_benchmarks_unchanged_and_not_slower(self, name):
        source = load_source(name)
        args = self.SMALL_ARGS[name]
        plain = compile_program(source)
        fast = compile_program(source, optimize=True)
        plain_seq = run_sequential(plain, args)
        fast_seq = run_sequential(fast, args)
        assert fast_seq.stdout == plain_seq.stdout
        assert fast_seq.cycles <= plain_seq.cycles

    def test_task_runtime_unchanged(self):
        source = load_source("Keyword")
        plain = compile_program(source)
        fast = compile_program(source, optimize=True)
        plain_run = run_layout(plain, single_core_layout(plain), ["5"])
        fast_run = run_layout(fast, single_core_layout(fast), ["5"])
        assert fast_run.stdout == plain_run.stdout
        assert fast_run.invocations == plain_run.invocations
        assert fast_run.total_cycles <= plain_run.total_cycles

    def test_optimize_program_reports_stats(self):
        program = lowered(
            "class A { int f() { return 2 * 21; } } "
            "task startup(StartupObject s in initialstate) "
            "{ taskexit(s: initialstate := false); }"
        )
        stats = optimize_program(program)
        assert stats["folded"] >= 1


class TestCopyPropagationSoundness:
    """Hand-crafted IR for the invalidation corner cases."""

    @staticmethod
    def run_blocks(instrs):
        func = ir.IRFunction(
            name="f",
            kind="method",
            param_names=["this"],
            num_regs=10,
            blocks=[ir.BasicBlock(0, instrs)],
            entry=0,
        )
        optimize_function(func)
        return func

    def test_copy_invalidated_by_source_overwrite(self):
        # r1 = r0; r0 = 7; return r1  -- r1 must NOT become 7.
        func = self.run_blocks(
            [
                ir.Move(ir.Reg(1), ir.Reg(0)),
                ir.Move(ir.Reg(0), ir.Const(7)),
                ir.Ret(ir.Reg(1)),
            ]
        )
        ret = func.blocks[0].instructions[-1]
        assert isinstance(ret, ir.Ret)
        assert ret.src != ir.Const(7)

    def test_constant_through_copy_chain(self):
        # r1 = 5; r2 = r1; return r2  -->  return 5
        func = self.run_blocks(
            [
                ir.Move(ir.Reg(1), ir.Const(5)),
                ir.Move(ir.Reg(2), ir.Reg(1)),
                ir.Ret(ir.Reg(2)),
            ]
        )
        ret = func.blocks[0].instructions[-1]
        assert ret.src == ir.Const(5)

    def test_swap_pattern_terminates(self):
        # r1 = r2; r2 = r1 — resolve() must not loop forever.
        func = self.run_blocks(
            [
                ir.Move(ir.Reg(1), ir.Reg(2)),
                ir.Move(ir.Reg(2), ir.Reg(1)),
                ir.Ret(ir.Reg(2)),
            ]
        )
        assert isinstance(func.blocks[0].instructions[-1], ir.Ret)

    def test_store_not_removed(self):
        func = self.run_blocks(
            [
                ir.Store(ir.Reg(0), "x", 0, ir.Const(1)),
                ir.Ret(None),
            ]
        )
        assert instr_count(func, ir.Store) == 1
