"""Shared fixtures: small compiled programs reused across test modules."""

import pytest

from repro.core import compile_program, profile_program, single_core_layout

# The paper's §2 keyword-counting example, sized down for fast tests.
KEYWORD_SOURCE = """
class Text {
    flag process;
    flag submit;
    String data;
    int result;
    Text(String s) { this.data = s; this.result = 0; }
    void work() {
        String[] words = this.data.split();
        int n = 0;
        for (int i = 0; i < words.length; i++) {
            if (words[i].equals("bamboo")) n = n + 1;
        }
        this.result = n;
    }
}

class Results {
    flag finished;
    int total;
    int expected;
    int merged;
    Results(int e) { this.expected = e; this.total = 0; this.merged = 0; }
    boolean mergeResult(Text t) {
        this.total = this.total + t.result;
        this.merged = this.merged + 1;
        return this.merged == this.expected;
    }
}

class SeqMain {
    SeqMain() { }
    void run(String[] args) {
        int sections = Integer.parseInt(args[0]);
        int total = 0;
        for (int s = 0; s < sections; s++) {
            String data = "bamboo alpha bamboo beta gamma";
            String[] words = data.split();
            for (int i = 0; i < words.length; i++) {
                if (words[i].equals("bamboo")) total = total + 1;
            }
        }
        System.printString("total=" + total);
    }
}

task startup(StartupObject s in initialstate) {
    int sections = Integer.parseInt(s.args[0]);
    for (int i = 0; i < sections; i++) {
        Text tp = new Text("bamboo alpha bamboo beta gamma"){process := true};
    }
    Results rp = new Results(sections){finished := false};
    taskexit(s: initialstate := false);
}

task processText(Text tp in process) {
    tp.work();
    taskexit(tp: process := false, submit := true);
}

task mergeIntermediateResult(Results rp in !finished, Text tp in submit) {
    boolean allprocessed = rp.mergeResult(tp);
    if (allprocessed) {
        System.printString("total=" + rp.total);
        taskexit(rp: finished := true; tp: submit := false);
    }
    taskexit(tp: submit := false);
}
"""

# A program exercising tags: a save pipeline pairing Drawing/Image objects.
TAGGED_SOURCE = """
class Drawing {
    flag dirty;
    flag saving;
    flag saved;
    int id;
    Drawing(int id) { this.id = id; }
}

class Image {
    flag uncompressed;
    flag compressed;
    int size;
    Image(int size) { this.size = size; }
}

task startup(StartupObject s in initialstate) {
    int count = Integer.parseInt(s.args[0]);
    for (int i = 0; i < count; i++) {
        Drawing d = new Drawing(i){dirty := true};
    }
    taskexit(s: initialstate := false);
}

task startsave(Drawing d in dirty) {
    tag t = new tag(saveop);
    Image img = new Image(d.id * 100 + 7){uncompressed := true, add t};
    taskexit(d: dirty := false, saving := true, add t);
}

task compress(Image img in uncompressed) {
    img.size = img.size / 2;
    taskexit(img: uncompressed := false, compressed := true);
}

task finishsave(Drawing d in saving with saveop t,
                Image img in compressed with saveop t) {
    taskexit(d: saving := false, saved := true; img: compressed := false);
}
"""


@pytest.fixture(scope="session")
def keyword_compiled():
    return compile_program(KEYWORD_SOURCE, "keyword-test")


@pytest.fixture(scope="session")
def keyword_profile(keyword_compiled):
    return profile_program(keyword_compiled, ["6"])


@pytest.fixture(scope="session")
def tagged_compiled():
    return compile_program(TAGGED_SOURCE, "tagged-test")


def compile_snippet(body: str):
    """Compiles a snippet that only needs a startup task around it."""
    return compile_program(body)
