"""Mapping search and rule tests (paper §4.3.3-4.3.4)."""

import random

import pytest

from repro.core import annotated_cstg
from repro.schedule.coregroup import build_group_graph
from repro.schedule.layout import Layout
from repro.schedule.mapping import (
    Candidate,
    _partitions,
    candidate_to_layout,
    enumerate_layouts,
    random_layouts,
    seed_layouts,
    with_instance_added,
    with_instance_moved,
    with_instance_removed,
)
from repro.schedule.rules import replica_choice_sets, suggest_replicas
from repro.lang.errors import ScheduleError


@pytest.fixture(scope="module")
def keyword_graph(keyword_compiled, keyword_profile):
    cstg = annotated_cstg(keyword_compiled, keyword_profile)
    return build_group_graph(keyword_compiled.info, cstg, keyword_profile)


class TestRules:
    def test_data_parallel_suggestion(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info, keyword_graph, keyword_profile, 8
        )
        worker_gid = keyword_graph.group_of_task["processText"]
        assert suggestions[worker_gid].rule == "data-parallel"
        # Per startup invocation the profile saw 6 Text objects plus the
        # Results object flow into the worker group: m = 7.
        assert suggestions[worker_gid].replicas == 7

    def test_replicas_capped_at_cores(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info, keyword_graph, keyword_profile, 4
        )
        worker_gid = keyword_graph.group_of_task["processText"]
        assert suggestions[worker_gid].replicas <= 4

    def test_locality_when_rules_disabled(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info,
            keyword_graph,
            keyword_profile,
            8,
            enable_data_parallel=False,
            enable_rate_match=False,
        )
        assert all(s.replicas == 1 for s in suggestions.values())

    def test_choice_sets_contain_one_and_suggestion(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info, keyword_graph, keyword_profile, 8
        )
        choices = replica_choice_sets(suggestions, keyword_graph, 8)
        worker_gid = keyword_graph.group_of_task["processText"]
        assert 1 in choices[worker_gid]
        assert suggestions[worker_gid].replicas in choices[worker_gid]


class TestPartitions:
    @pytest.mark.parametrize(
        "count,bell", [(0, 1), (1, 1), (2, 2), (3, 5), (4, 15), (5, 52)]
    )
    def test_bell_numbers(self, count, bell):
        assert len(list(_partitions(count))) == bell

    def test_restricted_growth_property(self):
        for partition in _partitions(4):
            assert partition[0] == 0
            for index in range(1, len(partition)):
                assert partition[index] <= max(partition[:index]) + 1


class TestCandidateToLayout:
    def test_simple_candidate(self, keyword_compiled, keyword_graph):
        group_ids = [g.group_id for g in keyword_graph.groups]
        replicas = tuple(
            4 if "processText" in keyword_graph.group(g).tasks else 1
            for g in group_ids
        )
        partition = tuple(range(len(group_ids)))
        layout = candidate_to_layout(
            keyword_compiled.info,
            keyword_graph,
            Candidate(replicas=replicas, partition=partition),
            8,
        )
        assert layout is not None
        assert len(layout.cores_of("processText")) == 4
        # Pinned merge task anchors to its pool's first core.
        assert len(layout.cores_of("mergeIntermediateResult")) == 1

    def test_overflow_returns_none(self, keyword_compiled, keyword_graph):
        group_ids = [g.group_id for g in keyword_graph.groups]
        replicas = tuple(10 for _ in group_ids)
        partition = tuple(range(len(group_ids)))
        layout = candidate_to_layout(
            keyword_compiled.info,
            keyword_graph,
            Candidate(replicas=replicas, partition=partition),
            4,
        )
        assert layout is None

    def test_pooled_groups_share_cores(self, keyword_compiled, keyword_graph):
        group_ids = [g.group_id for g in keyword_graph.groups]
        replicas = tuple(1 for _ in group_ids)
        partition = tuple(0 for _ in group_ids)
        layout = candidate_to_layout(
            keyword_compiled.info,
            keyword_graph,
            Candidate(replicas=replicas, partition=partition),
            8,
        )
        assert layout.cores_used() == (0,)


class TestEnumeration:
    def test_enumerate_layouts_deduplicates(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info, keyword_graph, keyword_profile, 4
        )
        choices = replica_choice_sets(suggestions, keyword_graph, 4)
        layouts = enumerate_layouts(
            keyword_compiled.info, keyword_graph, choices, 4
        )
        keys = [l.canonical_key() for l in layouts]
        assert len(keys) == len(set(keys))
        assert layouts

    def test_limit_respected(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info, keyword_graph, keyword_profile, 4
        )
        choices = replica_choice_sets(suggestions, keyword_graph, 4)
        layouts = enumerate_layouts(
            keyword_compiled.info, keyword_graph, choices, 4, limit=2
        )
        assert len(layouts) == 2

    def test_random_skipping_subsamples(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info, keyword_graph, keyword_profile, 4
        )
        choices = replica_choice_sets(suggestions, keyword_graph, 4)
        full = enumerate_layouts(keyword_compiled.info, keyword_graph, choices, 4)
        sampled = enumerate_layouts(
            keyword_compiled.info,
            keyword_graph,
            choices,
            4,
            rng=random.Random(1),
            skip_probability=0.7,
        )
        assert len(sampled) < len(full)

    def test_random_layouts_valid_and_distinct(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info, keyword_graph, keyword_profile, 6
        )
        choices = replica_choice_sets(suggestions, keyword_graph, 6)
        layouts = random_layouts(
            keyword_compiled.info,
            keyword_graph,
            choices,
            6,
            count=5,
            rng=random.Random(7),
        )
        keys = {l.canonical_key() for l in layouts}
        assert len(keys) == len(layouts)
        for layout in layouts:
            layout.validate(keyword_compiled.info)

    def test_seed_layouts_valid(
        self, keyword_compiled, keyword_profile, keyword_graph
    ):
        suggestions = suggest_replicas(
            keyword_compiled.info, keyword_graph, keyword_profile, 8
        )
        seeds = seed_layouts(
            keyword_compiled.info, keyword_graph, suggestions, 8
        )
        assert seeds
        for layout in seeds:
            layout.validate(keyword_compiled.info)
        # The rule-realizing seed replicates the worker group.
        assert any(len(l.cores_of("processText")) > 1 for l in seeds)


class TestLayoutEdits:
    def test_move_instance(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [0, 1]
        layout = Layout.make(4, mapping)
        moved = with_instance_moved(layout, "processText", 1, 3)
        assert moved.cores_of("processText") == (0, 3)

    def test_move_missing_instance_raises(self, keyword_compiled):
        layout = Layout.single_core(keyword_compiled.info.tasks)
        with pytest.raises(ScheduleError):
            with_instance_moved(layout, "processText", 3, 0)

    def test_add_instance(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        layout = Layout.make(4, mapping)
        grown = with_instance_added(layout, "processText", 2)
        assert grown.cores_of("processText") == (0, 2)

    def test_remove_instance_keeps_at_least_one(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        layout = Layout.make(4, mapping)
        shrunk = with_instance_removed(layout, "processText", 0)
        assert shrunk.cores_of("processText") == (0,)
