"""Small-surface coverage: error types, token spelling, formatting helpers."""

import pytest

from repro.lang.errors import (
    BambooError,
    LexError,
    ParseError,
    SemanticError,
    SourceLocation,
)
from repro.lang.lexer import tokenize
from repro.lang.tokens import Token, TokenKind


class TestErrors:
    def test_location_str(self):
        loc = SourceLocation(3, 7, "x.bam")
        assert str(loc) == "x.bam:3:7"

    def test_error_message_includes_location(self):
        err = SemanticError("bad thing", SourceLocation(2, 1, "f.bam"))
        assert "f.bam:2:1" in str(err)
        assert err.message == "bad thing"

    def test_error_hierarchy(self):
        assert issubclass(LexError, BambooError)
        assert issubclass(ParseError, BambooError)
        assert issubclass(SemanticError, BambooError)


class TestTokenSpelling:
    def test_identifier_spelling(self):
        token = tokenize("hello")[0]
        assert token.spelling == "hello"

    def test_literal_spelling(self):
        assert tokenize("42")[0].spelling == "42"
        assert tokenize('"hi"')[0].spelling == "hi"

    def test_operator_spelling(self):
        assert tokenize(":=")[0].spelling == ":="

    def test_tokens_frozen(self):
        token = tokenize("x")[0]
        with pytest.raises(Exception):
            token.kind = TokenKind.EOF


class TestIRFormatting:
    def test_function_format(self, keyword_compiled):
        text = keyword_compiled.ir_program.tasks["processText"].format()
        assert "task processText" in text
        assert "B0:" in text
        assert "taskexit" in text

    def test_instruction_reprs(self):
        from repro.ir import instructions as ir

        samples = [
            ir.Move(ir.Reg(0), ir.Const(1)),
            ir.BinOp(ir.Reg(1), "+", ir.Reg(0), ir.Const(2)),
            ir.Load(ir.Reg(2), ir.Reg(0), "f", 0),
            ir.Store(ir.Reg(0), "f", 0, ir.Const(3)),
            ir.ALoad(ir.Reg(3), ir.Reg(0), ir.Const(0)),
            ir.AStore(ir.Reg(0), ir.Const(0), ir.Const(1)),
            ir.ArrLen(ir.Reg(4), ir.Reg(0)),
            ir.NewObj(ir.Reg(5), "A", 3),
            ir.NewArr(ir.Reg(6), "int", [ir.Const(4)]),
            ir.Call(ir.Reg(7), "A.m", [ir.Reg(0)]),
            ir.CallBuiltin(None, "System.printInt", [ir.Const(1)]),
            ir.NewTag(ir.Reg(8), "grp"),
            ir.BindTag(ir.Reg(5), ir.Reg(8)),
            ir.Jump(2),
            ir.Branch(ir.Reg(1), 1, 2),
            ir.Ret(ir.Reg(7)),
            ir.Ret(None),
            ir.Exit(1),
            ir.Trap("boom"),
        ]
        for instr in samples:
            text = repr(instr)
            assert text and isinstance(text, str)


class TestGraphFormatting:
    def test_group_graph_format(self, keyword_compiled, keyword_profile):
        from repro.core import annotated_cstg
        from repro.schedule.coregroup import build_group_graph

        cstg = annotated_cstg(keyword_compiled, keyword_profile)
        graph = build_group_graph(keyword_compiled.info, cstg, keyword_profile)
        text = graph.format()
        assert "GroupGraph:" in text
        assert "pinned" not in text.split("\n")[0]

    def test_astg_format_marks_initial(self, keyword_compiled):
        text = keyword_compiled.astgs["Text"].format()
        assert "*" in text  # allocatable state marker
        assert "processText" in text


class TestVizEdgeCases:
    def test_trace_dot_without_path(self, keyword_compiled, keyword_profile):
        from repro.core import single_core_layout
        from repro.schedule.simulator import simulate
        from repro.viz import trace_to_dot

        result = simulate(
            keyword_compiled,
            single_core_layout(keyword_compiled),
            keyword_profile,
        )
        dot = trace_to_dot(result)  # no critical path supplied
        assert dot.startswith("digraph")
        assert "color=red" not in dot

    def test_render_trace_truncates(self, keyword_compiled, keyword_profile):
        from repro.core import single_core_layout
        from repro.schedule.simulator import simulate
        from repro.viz import render_trace

        result = simulate(
            keyword_compiled,
            single_core_layout(keyword_compiled),
            keyword_profile,
        )
        text = render_trace(result, max_events=2)
        assert "more" in text


class TestCFGShapes:
    def test_diamond_topological_order(self):
        from repro.core import compile_program
        from repro.ir import cfg

        compiled = compile_program(
            "class A { int m(int x) { int r = 0; "
            "if (x > 0) { r = 1; } else { r = 2; } return r; } }"
            " task startup(StartupObject s in initialstate) "
            "{ taskexit(s: initialstate := false); }"
        )
        func = compiled.ir_program.methods["A.m"]
        order = cfg.topological_order(func)
        position = {b: i for i, b in enumerate(order)}
        for block in func.blocks:
            if block.block_id not in position:
                continue
            for succ in block.successors():
                # In an acyclic function, successors come later.
                assert position[succ] > position[block.block_id]
