"""Tests for competing tasks and stale-invocation handling.

Bamboo allows several tasks to guard the same abstract state: whichever
invocation dispatches first wins the object; the loser's queued invocation
must be detected as stale at dispatch (guard recheck) and its objects
re-routed according to their current state (§4.7). These tests exercise
that machinery directly on the machine and the scheduling simulator.
"""

import pytest

from repro.core import compile_program, profile_program, run_layout
from repro.schedule.layout import Layout
from repro.schedule.simulator import simulate

# Two worker tasks compete for every Job object; each marks how many jobs
# it won. A Job can only be won once (the winner clears `ready`).
COMPETITION_SOURCE = """
class Job {
    flag ready;
    flag doneA;
    flag doneB;
    int id;
    Job(int id) { this.id = id; }
    void spin(int amount) {
        int x = 0;
        for (int i = 0; i < amount; i++) x = x + i;
    }
}

class Score {
    flag open;
    flag closed;
    int a;
    int b;
    int expected;
    Score(int expected) { this.expected = expected; this.a = 0; this.b = 0; }
    boolean creditA() { this.a = this.a + 1; return this.total() == this.expected; }
    boolean creditB() { this.b = this.b + 1; return this.total() == this.expected; }
    int total() { return this.a + this.b; }
}

task startup(StartupObject s in initialstate) {
    int jobs = Integer.parseInt(s.args[0]);
    for (int i = 0; i < jobs; i++) {
        Job j = new Job(i){ready := true};
    }
    Score score = new Score(jobs){open := true};
    taskexit(s: initialstate := false);
}

task workerA(Job j in ready) {
    j.spin(60);
    taskexit(j: ready := false, doneA := true);
}

task workerB(Job j in ready) {
    j.spin(60);
    taskexit(j: ready := false, doneB := true);
}

task tallyA(Score score in open, Job j in doneA) {
    boolean complete = score.creditA();
    if (complete) {
        System.printString("jobs=" + score.total());
        taskexit(score: open := false, closed := true; j: doneA := false);
    }
    taskexit(j: doneA := false);
}

task tallyB(Score score in open, Job j in doneB) {
    boolean complete = score.creditB();
    if (complete) {
        System.printString("jobs=" + score.total());
        taskexit(score: open := false, closed := true; j: doneB := false);
    }
    taskexit(j: doneB := false);
}
"""


@pytest.fixture(scope="module")
def competition():
    return compile_program(COMPETITION_SOURCE, "competition")


class TestCompetingTasks:
    def test_every_job_won_exactly_once_single_core(self, competition):
        layout = Layout.single_core(competition.info.tasks)
        result = run_layout(competition, layout, ["10"])
        wins = result.invocations.get("workerA", 0) + result.invocations.get(
            "workerB", 0
        )
        assert wins == 10
        assert result.stdout == "jobs=10"

    def test_every_job_won_exactly_once_multi_core(self, competition):
        mapping = {t: [0] for t in competition.info.tasks}
        mapping["workerA"] = [1, 2]
        mapping["workerB"] = [2, 3]
        layout = Layout.make(4, mapping)
        result = run_layout(competition, layout, ["12"])
        wins = result.invocations.get("workerA", 0) + result.invocations.get(
            "workerB", 0
        )
        assert wins == 12
        assert result.stdout == "jobs=12"

    def test_stale_invocations_detected(self, competition):
        # Both workers enqueue every job: each job's losing invocation is
        # detected as stale at dispatch.
        mapping = {t: [0] for t in competition.info.tasks}
        mapping["workerA"] = [1]
        mapping["workerB"] = [2]
        layout = Layout.make(3, mapping)
        result = run_layout(competition, layout, ["8"])
        assert result.stale_invocations > 0
        assert result.stdout == "jobs=8"

    def test_deterministic_split(self, competition):
        layout = Layout.single_core(competition.info.tasks)
        first = run_layout(competition, layout, ["9"])
        second = run_layout(competition, layout, ["9"])
        assert first.invocations == second.invocations

    def test_simulator_handles_competition(self, competition):
        layout = Layout.single_core(competition.info.tasks)
        profile = profile_program(competition, ["10"])
        estimate = simulate(competition, layout, profile)
        real = run_layout(competition, layout, ["10"])
        assert estimate.finished
        error = abs(estimate.total_cycles - real.total_cycles) / real.total_cycles
        assert error < 0.15

    def test_simulator_stale_path_on_multi_core(self, competition):
        mapping = {t: [0] for t in competition.info.tasks}
        mapping["workerA"] = [1]
        mapping["workerB"] = [2]
        layout = Layout.make(3, mapping)
        profile = profile_program(competition, ["10"])
        estimate = simulate(competition, layout, profile)
        assert estimate.finished
        sim_wins = estimate.invocations.get("workerA", 0) + estimate.invocations.get(
            "workerB", 0
        )
        assert sim_wins == 10
