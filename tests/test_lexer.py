"""Unit tests for the Bamboo lexer."""

import pytest

from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)][:-1]  # drop EOF


def values(source):
    return [t.value for t in tokenize(source)][:-1]


class TestBasicTokens:
    def test_empty_input_yields_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        assert kinds("hello") == [TokenKind.IDENT]
        assert values("hello") == ["hello"]

    def test_identifier_with_underscore_and_digits(self):
        assert values("_x9 a_b") == ["_x9", "a_b"]

    def test_keywords_are_not_identifiers(self):
        assert kinds("class task flag") == [
            TokenKind.KW_CLASS,
            TokenKind.KW_TASK,
            TokenKind.KW_FLAG,
        ]

    def test_double_is_alias_for_float_keyword(self):
        assert kinds("double") == [TokenKind.KW_FLOAT]

    def test_punctuation(self):
        assert kinds("{ } ( ) [ ] ; , . :") == [
            TokenKind.LBRACE,
            TokenKind.RBRACE,
            TokenKind.LPAREN,
            TokenKind.RPAREN,
            TokenKind.LBRACKET,
            TokenKind.RBRACKET,
            TokenKind.SEMI,
            TokenKind.COMMA,
            TokenKind.DOT,
            TokenKind.COLON,
        ]


class TestNumbers:
    def test_integer_literal(self):
        tokens = tokenize("42")
        assert tokens[0].kind is TokenKind.INT_LIT
        assert tokens[0].value == 42

    def test_zero(self):
        assert values("0") == [0]

    def test_float_literal(self):
        tokens = tokenize("3.25")
        assert tokens[0].kind is TokenKind.FLOAT_LIT
        assert tokens[0].value == 3.25

    def test_float_with_exponent(self):
        assert values("1.5e3") == [1500.0]
        assert values("2e-2") == [0.02]
        assert values("1.0E+2") == [100.0]

    def test_float_suffix(self):
        tokens = tokenize("2.5f")
        assert tokens[0].kind is TokenKind.FLOAT_LIT
        assert tokens[0].value == 2.5

    def test_int_with_float_suffix_is_float(self):
        tokens = tokenize("3f")
        assert tokens[0].kind is TokenKind.FLOAT_LIT
        assert tokens[0].value == 3.0

    def test_dot_not_followed_by_digit_is_member_access(self):
        assert kinds("a.length") == [
            TokenKind.IDENT,
            TokenKind.DOT,
            TokenKind.IDENT,
        ]

    def test_integer_then_dot_method(self):
        # "5 .x" style: digit followed by '.' + non-digit stays an int.
        assert kinds("5.x")[:1] == [TokenKind.INT_LIT]


class TestStrings:
    def test_simple_string(self):
        assert values('"hello"') == ["hello"]

    def test_string_with_escapes(self):
        assert values(r'"a\nb\t\"q\"\\"') == ['a\nb\t"q"\\']

    def test_empty_string(self):
        assert values('""') == [""]

    def test_unterminated_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"abc')

    def test_newline_in_string_raises(self):
        with pytest.raises(LexError):
            tokenize('"ab\ncd"')

    def test_unknown_escape_raises(self):
        with pytest.raises(LexError):
            tokenize(r'"\q"')


class TestOperators:
    def test_maximal_munch(self):
        assert kinds("== = := : <= < >= > != !") == [
            TokenKind.EQ,
            TokenKind.ASSIGN,
            TokenKind.FLAG_ASSIGN,
            TokenKind.COLON,
            TokenKind.LE,
            TokenKind.LT,
            TokenKind.GE,
            TokenKind.GT,
            TokenKind.NE,
            TokenKind.NOT,
        ]

    def test_compound_assignment_operators(self):
        assert kinds("+= -= *= /= ++ --") == [
            TokenKind.PLUS_ASSIGN,
            TokenKind.MINUS_ASSIGN,
            TokenKind.STAR_ASSIGN,
            TokenKind.SLASH_ASSIGN,
            TokenKind.PLUSPLUS,
            TokenKind.MINUSMINUS,
        ]

    def test_logical_operators(self):
        assert kinds("&& ||") == [TokenKind.AMPAMP, TokenKind.PIPEPIPE]

    def test_unknown_character_raises(self):
        with pytest.raises(LexError):
            tokenize("@")


class TestComments:
    def test_line_comment(self):
        assert kinds("a // comment here\nb") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_line_comment_at_eof(self):
        assert kinds("a // no newline") == [TokenKind.IDENT]

    def test_block_comment(self):
        assert kinds("a /* x\ny */ b") == [TokenKind.IDENT, TokenKind.IDENT]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("/* oops")

    def test_division_is_not_comment(self):
        assert kinds("a / b") == [TokenKind.IDENT, TokenKind.SLASH, TokenKind.IDENT]


class TestLocations:
    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert tokens[0].location.line == 1
        assert tokens[0].location.column == 1
        assert tokens[1].location.line == 2
        assert tokens[1].location.column == 3

    def test_location_after_block_comment(self):
        tokens = tokenize("/* x\ny */ z")
        assert tokens[0].location.line == 2

    def test_filename_recorded(self):
        tokens = tokenize("x", filename="prog.bam")
        assert tokens[0].location.filename == "prog.bam"
