"""Chaos harness (repro.resilience.chaos): seeded sweeps, checked invariants.

The acceptance sweep: 20+ seeded plans across three benchmarks, every run
terminating with exactly-once commits, balanced quarantine accounting, and
(for plan 0, the empty control) bit-identity with the resilience-disabled
baseline.
"""

import pytest

from repro.bench import load_benchmark
from repro.fault.plan import CoreCrash, FaultPlan
from repro.resilience import ResilienceConfig, chaos_plan, run_chaos
from repro.resilience.chaos import ChaosReport, ChaosRun
from repro.schedule.layout import Layout

SMALL_ARGS = {
    "Keyword": ["8"],
    "MonteCarlo": ["10", "40"],
    "Series": ["10", "12"],
}


def spread_layout(compiled, num_cores=4):
    """Round-robins the program's tasks over ``num_cores`` cores."""
    mapping = {
        task: [index % num_cores]
        for index, task in enumerate(sorted(compiled.info.tasks))
    }
    return Layout.make(num_cores, mapping)


class TestChaosPlan:
    def test_plan_zero_always_empty(self):
        plan = chaos_plan(0, seed=123, cores=[0, 1, 2, 3], horizon=5000,
                          suspicion_window=1500)
        assert plan.is_empty()

    def test_same_seed_same_plan(self):
        a = chaos_plan(3, seed=42, cores=[0, 1, 2, 3], horizon=5000,
                       suspicion_window=1500)
        b = chaos_plan(3, seed=42, cores=[0, 1, 2, 3], horizon=5000,
                       suspicion_window=1500)
        assert a == b

    def test_one_core_always_spared(self):
        cores = [0, 1, 2, 3]
        for seed in range(40):
            plan = chaos_plan(1, seed=seed, cores=cores, horizon=5000,
                              suspicion_window=1500)
            faulted = {
                event.core for event in plan.events if hasattr(event, "core")
            }
            assert set(cores) - faulted, f"seed {seed} faulted every core"
            assert len(plan.crash_cores()) < len(cores)


class TestChaosSweep:
    def test_keyword_sweep_holds_invariants(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [0, 1, 2, 3]
        layout = Layout.make(4, mapping)
        report = run_chaos(keyword_compiled, layout, ["8"], runs=21, base_seed=11)
        assert report.ok, report.violations()
        assert len(report.runs) == 21
        assert report.runs[0].plan.is_empty()
        # The sweep actually exercised failures, not just empty plans.
        total_faults = sum(len(run.plan.events) for run in report.runs)
        assert total_faults > 0
        detections = sum(
            run.result.recovery.detections
            for run in report.runs
            if run.result is not None
        )
        assert detections > 0
        assert "all invariants held" in report.describe()

    @pytest.mark.parametrize("name", ["MonteCarlo", "Series"])
    def test_benchmark_sweeps_hold_invariants(self, name):
        compiled = load_benchmark(name)
        layout = spread_layout(compiled, num_cores=4)
        report = run_chaos(
            compiled, layout, SMALL_ARGS[name], runs=7, base_seed=5
        )
        assert report.ok, report.violations()
        for run in report.runs:
            assert run.result is not None
            stats = run.result.recovery
            assert stats.exactly_once()
            assert len(run.result.quarantined or []) == stats.quarantined_groups

    def test_report_surfaces_violations(self, keyword_compiled):
        bad = ChaosRun(
            index=3,
            seed=99,
            plan=FaultPlan.single_crash(1, 100),
            violations=["exactly-once violated: 1 duplicate commit(s)"],
        )
        crashed = ChaosRun(
            index=4,
            seed=100,
            plan=FaultPlan.make([]),
            error="ScheduleError: boom",
        )
        report = ChaosReport(runs=[bad, crashed], baseline=None)
        assert not report.ok
        lines = report.violations()
        assert any("plan 3" in line and "exactly-once" in line for line in lines)
        assert any("plan 4" in line and "boom" in line for line in lines)
        assert "INVARIANT VIOLATIONS" in report.describe()


class TestChaosCLI:
    def test_chaos_exit_zero_on_clean_sweep(self, tmp_path):
        import sys

        sys.path.insert(0, "tests")
        from conftest import KEYWORD_SOURCE
        from repro.cli import main

        path = tmp_path / "keyword.bam"
        path.write_text(KEYWORD_SOURCE)
        assert main(["run", str(path), "8", "--cores", "4", "--chaos", "5"]) == 0

    def test_resilience_flag_runs(self, tmp_path, capsys):
        from conftest import KEYWORD_SOURCE
        from repro.cli import main

        path = tmp_path / "keyword.bam"
        path.write_text(KEYWORD_SOURCE)
        rc = main(
            [
                "run",
                str(path),
                "8",
                "--cores",
                "4",
                "--resilience",
                "--inject-fault",
                "core=1@2000",
                "--validate",
            ]
        )
        assert rc == 0
        captured = capsys.readouterr()
        assert "total=16" in captured.out
        assert "heartbeat" in captured.err
