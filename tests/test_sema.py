"""Type checker and name resolution tests."""

import pytest

from repro.lang.errors import SemanticError
from repro.lang.parser import parse_program
from repro.sema import analyze, builtins, types as ty


def check(source: str):
    return analyze(parse_program(source))


def check_task_body(body: str):
    return check(
        "task t(StartupObject s in initialstate) { %s "
        "taskexit(s: initialstate := false); }" % body
    )


def check_method_body(body: str, fields: str = "int x;"):
    return check("class A { %s void m() { %s } }" % (fields, body))


def expect_error(source_builder, body, fragment):
    with pytest.raises(SemanticError) as exc_info:
        source_builder(body)
    assert fragment in str(exc_info.value)


class TestProgramStructure:
    def test_startup_object_installed_implicitly(self, keyword_compiled):
        info = keyword_compiled.info
        assert builtins.STARTUP_CLASS in info.classes
        assert info.class_info("StartupObject").flags == ["initialstate"]

    def test_duplicate_class_rejected(self):
        expect_error(check, "class A { } class A { }", "duplicate class")

    def test_duplicate_flag_rejected(self):
        expect_error(check, "class A { flag f; flag f; }", "duplicate flag")

    def test_duplicate_field_rejected(self):
        expect_error(check, "class A { int x; int x; }", "duplicate field")

    def test_duplicate_method_rejected(self):
        expect_error(
            check,
            "class A { void m() { } void m() { } }",
            "duplicate method",
        )

    def test_multiple_constructors_rejected(self):
        expect_error(
            check, "class A { A() { } A(int x) { } }", "multiple constructors"
        )

    def test_duplicate_task_rejected(self):
        expect_error(
            check,
            "class F { flag f; } task t(F x in f) { } task t(F x in f) { }",
            "duplicate task",
        )

    def test_class_cannot_shadow_builtin_namespace(self):
        expect_error(check, "class Math { }", "builtin namespace")

    def test_task_param_must_be_class(self):
        expect_error(check, "task t(int x in f) { }", "not a declared class")

    def test_task_param_array_rejected(self):
        expect_error(
            check,
            "class F { flag f; } task t(F[] x in f) { }",
            "class-typed objects",
        )


class TestGuards:
    def test_guard_flag_must_exist(self):
        expect_error(
            check, "class F { flag a; } task t(F x in b) { }", "no flag 'b'"
        )

    def test_nested_guard_flags_checked(self):
        expect_error(
            check,
            "class F { flag a; } task t(F x in a and !b) { }",
            "no flag 'b'",
        )


class TestTaskExit:
    def test_unknown_param_rejected(self):
        expect_error(
            check_task_body, "taskexit(q: initialstate := false);", "unknown parameter"
        )

    def test_unknown_flag_rejected(self):
        expect_error(
            check_task_body, "taskexit(s: bogus := false);", "no flag 'bogus'"
        )

    def test_duplicate_param_group_rejected(self):
        expect_error(
            check_task_body,
            "taskexit(s: initialstate := false; s: initialstate := true);",
            "twice",
        )

    def test_taskexit_in_method_rejected(self):
        expect_error(check_method_body, "taskexit();", "taskexit outside a task")

    def test_tag_action_needs_tag_variable(self):
        expect_error(
            check_task_body, "taskexit(s: add t);", "not a tag variable"
        )

    def test_return_in_task_rejected(self):
        expect_error(check_task_body, "return;", "taskexit, not return")


class TestTypes:
    def test_int_float_promotion(self):
        check_task_body("float f = 1; f = f + 2;")

    def test_float_to_int_requires_cast(self):
        expect_error(check_task_body, "int i = 1.5;", "cannot initialize")

    def test_explicit_cast_allowed(self):
        check_task_body("int i = (int) 1.5; float f = (float) i;")

    def test_string_concat_with_numbers(self):
        check_task_body('String x = "a" + 1 + 2.5 + true;')

    def test_string_minus_rejected(self):
        expect_error(check_task_body, 'String x = "a" - "b";', "numeric")

    def test_modulo_requires_ints(self):
        expect_error(check_task_body, "float f = 1.5 % 2.0;", "int operands")

    def test_condition_must_be_boolean(self):
        expect_error(check_task_body, "if (1) { }", "must be boolean")

    def test_logic_requires_booleans(self):
        expect_error(check_task_body, "boolean b = 1 && true;", "boolean operands")

    def test_comparison_of_mixed_numerics(self):
        check_task_body("boolean b = 1 < 2.5;")

    def test_null_assignable_to_reference(self):
        check_task_body("String x = null; int[] a = null;")

    def test_null_not_assignable_to_int(self):
        expect_error(check_task_body, "int x = null;", "cannot initialize")

    def test_void_parameter_rejected(self):
        expect_error(check, "class A { void m(void x) { } }", "void")

    def test_array_index_must_be_int(self):
        expect_error(
            check_task_body, "int[] a = new int[3]; int x = a[1.5];", "must be int"
        )

    def test_array_length(self):
        check_task_body("int[] a = new int[3]; int n = a.length;")

    def test_array_length_not_assignable(self):
        expect_error(
            check_task_body,
            "int[] a = new int[3]; a.length = 4;",
            "array length",
        )

    def test_indexing_non_array_rejected(self):
        expect_error(check_task_body, "int x = 1; int y = x[0];", "non-array")


class TestVariables:
    def test_unknown_variable(self):
        expect_error(check_task_body, "int x = y;", "unknown variable 'y'")

    def test_duplicate_variable_same_scope(self):
        expect_error(check_task_body, "int x = 1; int x = 2;", "duplicate variable")

    def test_shadowing_in_nested_scope_allowed(self):
        check_task_body("int x = 1; { int x = 2; }")

    def test_block_scope_ends(self):
        expect_error(check_task_body, "{ int x = 1; } int y = x;", "unknown variable")

    def test_for_scope(self):
        expect_error(
            check_task_body,
            "for (int i = 0; i < 3; i++) { } int y = i;",
            "unknown variable",
        )

    def test_task_param_cannot_be_reassigned(self):
        expect_error(check_task_body, "s = null;", "cannot reassign task parameter")

    def test_break_outside_loop(self):
        expect_error(check_task_body, "break;", "outside a loop")


class TestCalls:
    def test_builtin_math(self):
        check_task_body("float r = Math.sqrt(2.0) + Math.pow(2.0, 3.0);")

    def test_builtin_int_arg_promoted(self):
        check_task_body("float r = Math.sqrt(4);")

    def test_unknown_builtin(self):
        expect_error(check_task_body, "float r = Math.cube(2.0);", "unknown builtin")

    def test_wrong_arity(self):
        expect_error(check_task_body, "float r = Math.sqrt(1.0, 2.0);", "arguments")

    def test_string_methods(self):
        check_task_body(
            'String s = "hello"; int n = s.length(); '
            'boolean e = s.equals("x"); String sub = s.substring(0, 2);'
        )

    def test_unknown_string_method(self):
        expect_error(check_task_body, '"x".frob();', "no method 'frob'")

    def test_method_on_class(self):
        check(
            "class A { int get() { return 1; } } "
            "task t(StartupObject s in initialstate) "
            "{ A a = new A(); int x = a.get(); "
            "taskexit(s: initialstate := false); }"
        )

    def test_unqualified_call_in_method(self):
        check("class A { int one() { return 1; } int two() { return one() + 1; } }")

    def test_unqualified_call_in_task_rejected(self):
        expect_error(check_task_body, "int x = frob();", "unqualified")

    def test_constructor_arity_checked(self):
        expect_error(
            check,
            "class A { A(int x) { } } "
            "task t(StartupObject s in initialstate) { A a = new A(); }",
            "expects 1 arguments",
        )

    def test_new_without_constructor_rejects_args(self):
        expect_error(
            check,
            "class A { } task t(StartupObject s in initialstate) "
            "{ A a = new A(1); }",
            "no constructor",
        )


class TestMethodsAndReturns:
    def test_missing_return_value(self):
        expect_error(
            check, "class A { int m() { return; } }", "missing return value"
        )

    def test_void_return_with_value(self):
        expect_error(check_method_body, "return 1;", "void method")

    def test_int_method_returns_float_rejected(self):
        expect_error(
            check, "class A { int m() { return 1.5; } }", "cannot return"
        )

    def test_this_outside_method(self):
        expect_error(check_task_body, "int x = this.x;", "'this' outside a method")

    def test_field_resolution(self):
        check("class A { int x; int get() { return this.x; } }")

    def test_unknown_field(self):
        expect_error(
            check, "class A { int get() { return this.y; } }", "no field 'y'"
        )


class TestFlagInitializers:
    def test_flag_init_on_unknown_flag(self):
        expect_error(
            check,
            "class F { flag a; } task t(StartupObject s in initialstate) "
            "{ F f = new F(){b := true}; }",
            "no flag 'b'",
        )

    def test_flag_init_in_method_rejected(self):
        expect_error(
            check,
            "class F { flag a; } class A { void m() { F f = new F(){a := true}; } }",
            "only allowed in tasks",
        )

    def test_tag_init_requires_tag_variable(self):
        expect_error(
            check,
            "class F { flag a; } task t(StartupObject s in initialstate) "
            "{ F f = new F(){a := true, add g}; }",
            "not a tag variable",
        )

    def test_tag_declared_in_method_rejected(self):
        expect_error(
            check,
            "class A { void m() { tag t = new tag(g); } }",
            "inside tasks",
        )


class TestAnnotations:
    def test_expression_types_annotated(self, keyword_compiled):
        # After analysis every expression in the program carries a type.
        from repro.lang import ast as A

        program = keyword_compiled.program
        task = program.find_task("processText")
        for stmt in A.walk_stmts(task.body):
            for root in A.stmt_exprs(stmt):
                for expr in A.walk_expr(root):
                    assert hasattr(expr, "ty")


class TestTagGuards:
    def test_consistent_binding_types_ok(self):
        check(
            "class A { flag f; } class B { flag g; } "
            "task t(A a in f with grp x, B b in g with grp x) { }"
        )

    def test_conflicting_binding_types_rejected(self):
        expect_error(
            check,
            "class A { flag f; } class B { flag g; } "
            "task t(A a in f with grp x, B b in g with pair x) { }",
            "two tag types",
        )

    def test_distinct_bindings_may_differ(self):
        check(
            "class A { flag f; } "
            "task t(A a in f with grp x and pair y) { }"
        )


class TestTaskShape:
    def test_parameterless_task_rejected(self):
        expect_error(check, "task t() { }", "no parameters")
