"""IR lowering, verification, CFG, and cost-model tests."""

import pytest

from repro.ir import cfg, costs, instructions as ir
from repro.ir.builder import lower_program
from repro.ir.verify import verify_function, verify_program
from repro.lang.errors import LoweringError
from repro.lang.parser import parse_program
from repro.sema import analyze


def lower(source: str) -> ir.IRProgram:
    info = analyze(parse_program(source))
    program = lower_program(info)
    verify_program(program)
    return program


def lower_task(body: str) -> ir.IRFunction:
    program = lower(
        "task t(StartupObject s in initialstate) { %s }" % body
    )
    return program.tasks["t"]


def instrs_of(func: ir.IRFunction, kind) -> list:
    return [i for _, i in func.all_instructions() if isinstance(i, kind)]


class TestLowering:
    def test_every_block_terminated(self, keyword_compiled):
        for func in list(keyword_compiled.ir_program.methods.values()) + list(
            keyword_compiled.ir_program.tasks.values()
        ):
            assert verify_function(func) == []

    def test_implicit_exit_added(self):
        func = lower_task("int x = 1;")
        exits = instrs_of(func, ir.Exit)
        assert len(exits) == 1
        assert exits[0].exit_id == 0
        assert 0 in func.exits

    def test_explicit_exit_numbered_from_one(self):
        func = lower_task("taskexit(s: initialstate := false);")
        exits = instrs_of(func, ir.Exit)
        assert [e.exit_id for e in exits] == [1]
        spec = func.exits[1]
        assert spec.flag_updates == {0: {"initialstate": False}}

    def test_two_exits(self):
        func = lower_task(
            "if (1 < 2) taskexit(s: initialstate := false); taskexit();"
        )
        assert sorted(func.exits) == [1, 2]

    def test_short_circuit_lowered_to_branches(self):
        func = lower_task("boolean b = 1 < 2 && 3 < 4;")
        branches = instrs_of(func, ir.Branch)
        assert len(branches) >= 1

    def test_numeric_promotion_inserts_i2f(self):
        func = lower_task("float f = 1 + 2.0;")
        unops = [u for u in instrs_of(func, ir.UnOp) if u.op == "i2f"]
        assert unops

    def test_string_concat_inserts_tostr(self):
        func = lower_task('String s = "x" + 4;')
        unops = [u for u in instrs_of(func, ir.UnOp) if u.op == "tostr"]
        assert unops

    def test_while_loop_structure(self):
        func = lower_task("int i = 0; while (i < 3) { i = i + 1; }")
        assert instrs_of(func, ir.Branch)
        assert instrs_of(func, ir.Jump)

    def test_break_jumps_out(self):
        func = lower_task("while (true) { break; }")
        # terminates: exit block reachable
        assert 0 in cfg.reachable_exits(func)

    def test_constructor_call_follows_allocation(self):
        program = lower(
            "class A { int x; A(int x) { this.x = x; } } "
            "task t(StartupObject s in initialstate) { A a = new A(5); }"
        )
        func = program.tasks["t"]
        entry = func.blocks[func.entry].instructions
        new_index = next(
            i for i, instr in enumerate(entry) if isinstance(instr, ir.NewObj)
        )
        assert any(
            isinstance(instr, ir.Call) and instr.target == "A.<init>"
            for instr in entry[new_index + 1 :]
        )

    def test_missing_return_becomes_trap(self):
        program = lower("class A { int m() { if (true) return 1; } }")
        func = program.methods["A.m"]
        assert instrs_of(func, ir.Trap)

    def test_alloc_site_records_flags(self):
        program = lower(
            "class F { flag a; flag b; } "
            "task t(StartupObject s in initialstate) "
            "{ F f = new F(){a := true, b := false}; }"
        )
        sites = [s for s in program.alloc_sites.values() if s.class_name == "F"]
        assert len(sites) == 1
        assert sites[0].flag_inits == {"a": True, "b": False}
        assert sites[0].function == "t"

    def test_alloc_site_records_tag_types(self, tagged_compiled):
        sites = [
            s
            for s in tagged_compiled.ir_program.alloc_sites.values()
            if s.class_name == "Image"
        ]
        assert sites and sites[0].tag_types == ["saveop"]
        assert sites[0].has_tag_inits

    def test_tag_exit_action_carries_type(self, tagged_compiled):
        func = tagged_compiled.ir_program.tasks["startsave"]
        spec = func.exits[1]
        actions = spec.tag_updates[0]
        assert actions[0].op == "add"
        assert actions[0].tag_type == "saveop"

    def test_is_ref_flags_on_memory_ops(self):
        program = lower(
            "class A { int x; int[] a; A other; "
            "  void m() { this.x = 1; this.a = new int[2]; this.other = null; } }"
        )
        func = program.methods["A.m"]
        stores = instrs_of(func, ir.Store)
        by_field = {s.field_name: s.is_ref for s in stores}
        assert by_field == {"x": False, "a": True, "other": True}


class TestCFG:
    def test_reachable_blocks_from_entry(self):
        func = lower_task("if (true) { int a = 1; } else { int b = 2; }")
        reachable = cfg.reachable_blocks(func)
        assert func.entry in reachable

    def test_unreachable_exit_not_reported(self):
        func = lower_task(
            "taskexit(s: initialstate := false); "
        )
        assert cfg.reachable_exits(func) == {1}

    def test_predecessors_inverse_of_successors(self):
        func = lower_task("int i = 0; while (i < 2) i = i + 1;")
        succ = cfg.successors(func)
        pred = cfg.predecessors(func)
        for block, targets in succ.items():
            for target in targets:
                assert block in pred[target]

    def test_topological_order_starts_at_entry(self):
        func = lower_task("if (1 < 2) { int a = 1; }")
        order = cfg.topological_order(func)
        assert order[0] == func.entry


class TestVerifier:
    def test_detects_missing_terminator(self):
        func = ir.IRFunction(
            name="bad",
            kind="method",
            param_names=[],
            num_regs=1,
            blocks=[ir.BasicBlock(0, [ir.Move(ir.Reg(0), ir.Const(1))])],
            entry=0,
        )
        problems = verify_function(func)
        assert any("terminator" in p for p in problems)

    def test_detects_bad_jump_target(self):
        func = ir.IRFunction(
            name="bad",
            kind="method",
            param_names=[],
            num_regs=0,
            blocks=[ir.BasicBlock(0, [ir.Jump(7)])],
            entry=0,
        )
        assert any("missing block" in p for p in verify_function(func))

    def test_detects_register_out_of_range(self):
        func = ir.IRFunction(
            name="bad",
            kind="method",
            param_names=[],
            num_regs=1,
            blocks=[ir.BasicBlock(0, [ir.Move(ir.Reg(5), ir.Const(1)), ir.Ret()])],
            entry=0,
        )
        assert any("out of range" in p for p in verify_function(func))

    def test_detects_exit_in_method(self):
        func = ir.IRFunction(
            name="bad",
            kind="method",
            param_names=[],
            num_regs=0,
            blocks=[ir.BasicBlock(0, [ir.Exit(0)])],
            entry=0,
        )
        assert any("non-task" in p for p in verify_function(func))

    def test_verify_program_raises(self):
        program = ir.IRProgram()
        program.methods["bad"] = ir.IRFunction(
            name="bad", kind="method", param_names=[], num_regs=0,
            blocks=[ir.BasicBlock(0, [])], entry=0,
        )
        with pytest.raises(LoweringError):
            verify_program(program)


class TestCosts:
    def test_every_instruction_has_positive_cost(self):
        samples = [
            ir.Move(ir.Reg(0), ir.Const(1)),
            ir.BinOp(ir.Reg(0), "+", ir.Const(1), ir.Const(2)),
            ir.BinOp(ir.Reg(0), "/", ir.Const(1.0), ir.Const(2.0), kind="float"),
            ir.UnOp(ir.Reg(0), "i2f", ir.Const(1)),
            ir.Load(ir.Reg(0), ir.Reg(0), "f", 0),
            ir.Store(ir.Reg(0), "f", 0, ir.Const(1)),
            ir.ALoad(ir.Reg(0), ir.Reg(0), ir.Const(0)),
            ir.AStore(ir.Reg(0), ir.Const(0), ir.Const(1)),
            ir.ArrLen(ir.Reg(0), ir.Reg(0)),
            ir.NewObj(ir.Reg(0), "A", 0),
            ir.Call(None, "A.m", []),
            ir.NewTag(ir.Reg(0), "g"),
            ir.BindTag(ir.Reg(0), ir.Reg(0)),
            ir.Jump(0),
            ir.Branch(ir.Const(True), 0, 0),
            ir.Ret(None),
            ir.Exit(0),
            ir.Trap("x"),
        ]
        for instr in samples:
            assert costs.instruction_cost(instr) >= 1

    def test_builtin_cost_charged_by_table(self):
        # CallBuiltin itself is free; the builtin's table cost applies.
        assert costs.instruction_cost(ir.CallBuiltin(None, "Math.sqrt", [])) == 0

    def test_float_ops_cost_more_than_int(self):
        assert costs.binop_cost("+", "float") > costs.binop_cost("+", "int")

    def test_division_expensive(self):
        assert costs.binop_cost("/", "int") > costs.binop_cost("*", "int")
