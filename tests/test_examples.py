"""Smoke tests: the fast example scripts run end to end.

The heavier walkthroughs (compiler explorer, adaptive executable,
MonteCarlo pipelining) are exercised indirectly by the library tests; the
two quick ones run here as subprocesses to catch import or API rot.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")


def run_example(name: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, os.path.join(EXAMPLES_DIR, name)],
        capture_output=True,
        text=True,
        timeout=180,
    )


def test_quickstart_runs():
    result = run_example("quickstart.py")
    assert result.returncode == 0, result.stderr
    assert "speedup vs 1-core Bamboo" in result.stdout
    assert "'total=48'" in result.stdout


def test_tagged_save_pipeline_runs():
    result = run_example("tagged_save_pipeline.py")
    assert result.returncode == 0, result.stderr
    assert "finishsave x12" in result.stdout
    # The example itself asserts that no Drawing/Image mismatch occurred
    # (a failure would exit non-zero, caught above).


@pytest.mark.parametrize(
    "name",
    [
        "quickstart.py",
        "montecarlo_pipeline.py",
        "tagged_save_pipeline.py",
        "compiler_explorer.py",
        "adaptive_executable.py",
    ],
)
def test_examples_importable(name):
    # Each example compiles as a module (no syntax/import errors).
    path = os.path.join(EXAMPLES_DIR, name)
    source = open(path).read()
    compile(source, path, "exec")


def test_tutorial_code_blocks_work():
    """The java blocks in docs/TUTORIAL.md concatenate into a program that
    compiles, runs, and matches the numbers the tutorial quotes."""
    import re

    doc = os.path.join(os.path.dirname(__file__), "..", "docs", "TUTORIAL.md")
    text = open(doc).read()
    blocks = re.findall(r"```java\n(.*?)```", text, re.S)
    assert len(blocks) >= 2
    source = "\n".join(blocks)

    from repro.core import (
        compile_program,
        run_layout,
        single_core_layout,
    )

    compiled = compile_program(source, "tutorial-thumbs")
    result = run_layout(compiled, single_core_layout(compiled), ["16"])
    assert result.stdout.startswith("avg=")
    assert result.invocations["decode"] == 16
    assert result.invocations["collect"] == 16
    # The tutorial's lock-plan claim: everything fine-grained.
    assert compiled.lock_plan.shared_lock_tasks() == []


def test_compiler_explorer_runs_on_keyword():
    result = subprocess.run(
        [
            sys.executable,
            os.path.join(EXAMPLES_DIR, "compiler_explorer.py"),
            "Keyword",
        ],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr
    assert "abstract state transition graphs" in result.stdout
    assert "critical path" in result.stdout
