"""Heap object, array, and tag-instance tests."""

from repro.runtime.objects import BArray, BObject, Heap, TagInstance, default_field_value


class TestHeap:
    def test_object_ids_monotone(self):
        heap = Heap()
        a = heap.new_object("X", 2)
        b = heap.new_object("Y", 0)
        assert (a.obj_id, b.obj_id) == (0, 1)
        assert heap.object_count() == 2

    def test_fields_initialized_to_none(self):
        heap = Heap()
        obj = heap.new_object("X", 3)
        assert obj.fields == [None, None, None]

    def test_new_array_fill(self):
        heap = Heap()
        arr = heap.new_array("int", 4, fill=0)
        assert arr.values == [0, 0, 0, 0]
        assert len(arr) == 4

    def test_tag_ids_monotone(self):
        heap = Heap()
        assert heap.new_tag("a").tag_id == 0
        assert heap.new_tag("b").tag_id == 1


class TestFlags:
    def test_set_and_clear(self):
        obj = BObject(obj_id=0, class_name="X", fields=[])
        obj.set_flag("a", True)
        assert obj.flag_state() == frozenset({"a"})
        obj.set_flag("a", False)
        assert obj.flag_state() == frozenset()

    def test_clear_absent_flag_noop(self):
        obj = BObject(obj_id=0, class_name="X", fields=[])
        obj.set_flag("a", False)
        assert obj.flags == set()


class TestTags:
    def test_bind_creates_backreference(self):
        obj = BObject(obj_id=7, class_name="X", fields=[])
        tag = TagInstance(tag_id=0, tag_type="grp")
        obj.bind_tag(tag)
        assert 7 in tag.bound_objects
        assert obj.tags_of_type("grp") == [tag]

    def test_bind_idempotent(self):
        obj = BObject(obj_id=7, class_name="X", fields=[])
        tag = TagInstance(tag_id=0, tag_type="grp")
        obj.bind_tag(tag)
        obj.bind_tag(tag)
        assert len(obj.tags_of_type("grp")) == 1

    def test_unbind(self):
        obj = BObject(obj_id=7, class_name="X", fields=[])
        tag = TagInstance(tag_id=0, tag_type="grp")
        obj.bind_tag(tag)
        obj.unbind_tag(tag)
        assert obj.tags_of_type("grp") == []
        assert 7 not in tag.bound_objects

    def test_tag_count_class_one_limited(self):
        obj = BObject(obj_id=1, class_name="X", fields=[])
        assert obj.tag_count_class("grp") == 0
        obj.bind_tag(TagInstance(tag_id=0, tag_type="grp"))
        assert obj.tag_count_class("grp") == 1
        obj.bind_tag(TagInstance(tag_id=1, tag_type="grp"))
        obj.bind_tag(TagInstance(tag_id=2, tag_type="grp"))
        assert obj.tag_count_class("grp") == 2  # "at least 2"

    def test_tag_identity_by_id(self):
        a = TagInstance(tag_id=3, tag_type="grp")
        b = TagInstance(tag_id=3, tag_type="grp")
        assert a == b and hash(a) == hash(b)


class TestDefaults:
    def test_default_field_values(self):
        assert default_field_value("int") == 0
        assert default_field_value("float") == 0.0
        assert default_field_value("boolean") is False
        assert default_field_value("String") is None
        assert default_field_value("Whatever") is None
