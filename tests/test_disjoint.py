"""Disjointness analysis tests (paper §4.2)."""

from repro.analysis.disjoint import analyze_disjointness
from repro.analysis.locks import build_lock_plan
from repro.analysis.reachgraph import (
    MethodSummary,
    compute_method_summaries,
    origin_params,
    param_node,
    content_node,
)
from repro.core import compile_program


def sharing_of(source: str):
    compiled = compile_program(source)
    return compiled, compiled.disjointness


HEADER = """
class Box { flag full; Box inner; int v; Box() { } }
class Pair { flag full; Box left; Box right; Pair() { } }
"""

STARTUP = """
task startup(StartupObject s in initialstate) {
    Box a = new Box(){full := true};
    Box b = new Box(){full := true};
    Pair p = new Pair(){full := true};
    taskexit(s: initialstate := false);
}
"""


class TestDirectSharing:
    def test_disjoint_reads_no_sharing(self):
        _, result = sharing_of(
            HEADER + STARTUP + """
        task t(Box a in full, Box b in full) {
            a.v = b.v + 1;
            taskexit(a: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == set()

    def test_direct_store_creates_sharing(self):
        _, result = sharing_of(
            HEADER + STARTUP + """
        task t(Pair p in full, Box b in full) {
            p.left = b;
            taskexit(p: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == {frozenset({0, 1})}

    def test_sharing_through_local_variable(self):
        _, result = sharing_of(
            HEADER + STARTUP + """
        task t(Pair p in full, Box b in full) {
            Box tmp = b;
            p.right = tmp;
            taskexit(p: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == {frozenset({0, 1})}

    def test_sharing_through_loaded_subobject(self):
        _, result = sharing_of(
            HEADER + STARTUP + """
        task t(Box a in full, Box b in full) {
            Box sub = b.inner;
            a.inner = sub;
            taskexit(a: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == {frozenset({0, 1})}

    def test_fresh_object_linking_both_params(self):
        _, result = sharing_of(
            HEADER + STARTUP + """
        task t(Box a in full, Box b in full) {
            Box mid = new Box();
            a.inner = mid;
            b.inner = mid;
            taskexit(a: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == {frozenset({0, 1})}

    def test_separate_fresh_objects_stay_disjoint(self):
        _, result = sharing_of(
            HEADER + STARTUP + """
        task t(Box a in full, Box b in full) {
            a.inner = new Box();
            b.inner = new Box();
            taskexit(a: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == set()


class TestCallSharing:
    def test_sharing_introduced_by_callee(self):
        _, result = sharing_of(
            HEADER.replace(
                "Pair() { }",
                "Pair() { } void adopt(Box x) { this.left = x; }",
            ) + STARTUP + """
        task t(Pair p in full, Box b in full) {
            p.adopt(b);
            taskexit(p: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == {frozenset({0, 1})}

    def test_value_copies_through_callee_stay_disjoint(self):
        _, result = sharing_of(
            HEADER.replace(
                "Pair() { }",
                "Pair() { } void copyCount(Box x) { this.left.v = x.v; }",
            ) + STARTUP + """
        task t(Pair p in full, Box b in full) {
            p.copyCount(b);
            taskexit(p: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == set()

    def test_element_wise_float_copy_disjoint(self):
        _, result = sharing_of("""
        class Vec { flag full; float[] data; Vec(int n) { this.data = new float[n]; } }
        task startup(StartupObject s in initialstate) {
            Vec a = new Vec(4){full := true};
            Vec b = new Vec(4){full := true};
            taskexit(s: initialstate := false);
        }
        task copy(Vec a in full, Vec b in full) {
            for (int i = 0; i < 4; i++) a.data[i] = b.data[i];
            taskexit(a: full := false; b: full := false);
        }
        """)
        assert result.sharing["copy"] == set()

    def test_array_reference_store_shares(self):
        _, result = sharing_of("""
        class Vec { flag full; float[] data; Vec(int n) { this.data = new float[n]; } }
        task startup(StartupObject s in initialstate) {
            Vec a = new Vec(4){full := true};
            Vec b = new Vec(4){full := true};
            taskexit(s: initialstate := false);
        }
        task alias(Vec a in full, Vec b in full) {
            a.data = b.data;
            taskexit(a: full := false; b: full := false);
        }
        """)
        assert result.sharing["alias"] == {frozenset({0, 1})}

    def test_returned_region_shares(self):
        _, result = sharing_of(
            HEADER.replace(
                "Box() { }", "Box() { } Box getInner() { return this.inner; }"
            ) + STARTUP + """
        task t(Pair p in full, Box b in full) {
            p.left = b.getInner();
            taskexit(p: full := false; b: full := false);
        }
        """
        )
        assert result.sharing["t"] == {frozenset({0, 1})}


class TestSummaries:
    def test_recursive_method_converges(self):
        compiled = compile_program(
            HEADER.replace(
                "Box() { }",
                "Box() { } void chainTo(Box other) { "
                "if (this.inner == null) { this.inner = other; } "
                "else { this.inner.chainTo(other); } }",
            ) + STARTUP
        )
        summaries = compute_method_summaries(compiled.ir_program)
        assert (0, 1) in summaries["Box.chainTo"].connects

    def test_pure_method_summary_empty(self, keyword_compiled):
        summaries = keyword_compiled.disjointness.summaries
        work = summaries["Text.work"]
        assert work.connects == set()

    def test_fresh_return_flagged(self):
        compiled = compile_program(
            HEADER.replace(
                "Box() { }", "Box() { } Box spawn() { return new Box(); }"
            ) + STARTUP
        )
        summaries = compute_method_summaries(compiled.ir_program)
        assert summaries["Box.spawn"].ret_fresh

    def test_origin_params(self):
        assert origin_params(param_node(2)) == frozenset({2})
        assert origin_params(content_node(param_node(1))) == frozenset({1})


class TestBenchmarkDisjointness:
    def test_keyword_tasks_all_disjoint(self, keyword_compiled):
        for task in keyword_compiled.info.tasks:
            assert keyword_compiled.disjointness.task_is_disjoint(task)

    def test_sharing_groups_connected_components(self):
        _, result = sharing_of("""
        class N { flag f; N next; N() { } }
        task startup(StartupObject s in initialstate) {
            N a = new N(){f := true};
            taskexit(s: initialstate := false);
        }
        task link(N a in f, N b in f, N c in f) {
            a.next = b;
            b.next = c;
            taskexit(a: f := false; b: f := false; c: f := false);
        }
        """)
        groups = result.sharing_groups("link")
        assert groups == [{0, 1, 2}]


class TestLockPlan:
    def test_plan_partitions_tasks(self, keyword_compiled):
        plan = keyword_compiled.lock_plan
        assert set(plan.fine_grained_tasks()) == set(keyword_compiled.info.tasks)
        assert plan.shared_lock_tasks() == []

    def test_shared_groups_in_plan(self):
        compiled, result = sharing_of(
            HEADER + STARTUP + """
        task t(Pair p in full, Box b in full) {
            p.left = b;
            taskexit(p: full := false; b: full := false);
        }
        """
        )
        plan = build_lock_plan(compiled.info, result)
        task_plan = plan.plan_for("t")
        assert not task_plan.is_fine_grained
        assert task_plan.shared_groups == [{0, 1}]
