"""The parallel, memoized layout search (:mod:`repro.search`).

Three contracts are enforced here:

* **Worker independence** — ``workers=N`` synthesis is bit-identical to
  ``workers=1`` on every benchmark program (same best layout, same cycle
  estimate, same iteration history, same accounting).
* **Cache transparency** — with an unbounded budget and no early cutoff,
  synthesis with the simulation cache on equals synthesis with it off.
* **Fingerprint soundness** — distinct layout contents get distinct
  fingerprints; identical contents get identical fingerprints.

Plus the :class:`SimCache` unit behaviour (LRU, counters, bound entries)
and the deprecated keyword shims of the options API redesign.
"""

import random

import pytest

from repro.bench import benchmark_names, get_spec, load_benchmark
from repro.core import (
    RunOptions,
    SynthesisOptions,
    annotated_cstg,
    profile_program,
    run_layout,
    single_core_layout,
    synthesize_layout,
)
from repro.obs import MetricsRegistry
from repro.schedule.anneal import AnnealConfig, DirectedSimulatedAnnealing
from repro.schedule.coregroup import build_group_graph
from repro.schedule.mapping import layout_fingerprint, random_layouts
from repro.schedule.simulator import SimResult
from repro.search import (
    CacheEntry,
    EvaluationError,
    ParallelEvaluator,
    SerialEvaluator,
    SimCache,
    make_evaluator,
)

SMALL_ARGS = {
    "Tracking": ["12", "6"],
    "KMeans": ["6", "8", "3"],
    "MonteCarlo": ["10", "40"],
    "FilterBank": ["8", "24"],
    "Fractal": ["16"],
    "Series": ["10", "12"],
    "Keyword": ["8"],
}

SMALL_ANNEAL = dict(
    initial_candidates=2, max_iterations=3, patience=2,
    continue_probability=0.2,
)

_PROFILES = {}


def small_profile(name):
    if name not in _PROFILES:
        _PROFILES[name] = profile_program(
            load_benchmark(name), SMALL_ARGS[name]
        )
    return _PROFILES[name]


def small_synthesis(name, **options_kw):
    compiled = load_benchmark(name)
    profile = small_profile(name)
    options = SynthesisOptions(
        anneal=AnnealConfig(seed=7, **SMALL_ANNEAL),
        hints=get_spec(name).hints,
        **options_kw,
    )
    return synthesize_layout(compiled, profile, 4, options=options)


def report_fingerprint(report):
    """Everything observable about a synthesis run, as comparable data."""
    return (
        report.estimated_cycles,
        report.layout.as_dict(),
        report.layout.num_cores,
        report.history,
        report.evaluations,
        report.cache_hits,
        report.requested_evaluations,
        report.pruned_evaluations,
        report.iterations,
    )


class TestWorkerIndependence:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_parallel_matches_serial_on_every_benchmark(self, name):
        serial = small_synthesis(name, workers=1)
        parallel = small_synthesis(name, workers=2)
        assert report_fingerprint(serial) == report_fingerprint(parallel)

    def test_three_workers_match_too(self):
        serial = small_synthesis("Keyword", workers=1)
        parallel = small_synthesis("Keyword", workers=3)
        assert report_fingerprint(serial) == report_fingerprint(parallel)

    def test_early_cutoff_is_worker_independent(self):
        compiled = load_benchmark("KMeans")
        profile = profile_program(compiled, SMALL_ARGS["KMeans"])
        anneal = AnnealConfig(seed=3, early_cutoff=True, **SMALL_ANNEAL)
        reports = [
            synthesize_layout(
                compiled, profile, 4,
                options=SynthesisOptions(anneal=anneal, workers=workers),
            )
            for workers in (1, 2)
        ]
        assert report_fingerprint(reports[0]) == report_fingerprint(reports[1])

    def test_early_cutoff_prunes_simulations(self):
        compiled = load_benchmark("KMeans")
        profile = profile_program(compiled, SMALL_ARGS["KMeans"])
        anneal = AnnealConfig(seed=3, early_cutoff=True, **SMALL_ANNEAL)
        report = synthesize_layout(
            compiled, profile, 4, options=SynthesisOptions(anneal=anneal)
        )
        assert report.pruned_evaluations > 0


class TestCacheTransparency:
    def test_cache_on_equals_cache_off(self):
        # With an unbounded budget and no cutoff, memoization only skips
        # re-simulation of identical layouts — it cannot change scores.
        on = small_synthesis("Keyword", sim_cache=True)
        off = small_synthesis("Keyword", sim_cache=False)
        assert on.estimated_cycles == off.estimated_cycles
        assert on.layout.as_dict() == off.layout.as_dict()
        assert on.history == off.history
        # The cache only *saves* work:
        assert on.evaluations <= off.evaluations
        assert on.requested_evaluations == off.requested_evaluations
        assert off.cache_hits == 0

    def test_cache_hits_do_not_consume_budget(self):
        compiled = load_benchmark("Keyword")
        profile = profile_program(compiled, SMALL_ARGS["Keyword"])
        anneal = AnnealConfig(seed=7, max_evaluations=40, **SMALL_ANNEAL)
        report = synthesize_layout(
            compiled, profile, 4, options=SynthesisOptions(anneal=anneal)
        )
        assert report.evaluations <= 40
        # requested counts hits on top of the budgeted simulations
        assert report.requested_evaluations == (
            report.evaluations + report.cache_hits
        )

    def test_shared_cache_across_runs(self):
        compiled = load_benchmark("Keyword")
        profile = profile_program(compiled, SMALL_ARGS["Keyword"])
        shared = SimCache()
        anneal = AnnealConfig(seed=7, **SMALL_ANNEAL)
        first = synthesize_layout(
            compiled, profile, 4,
            options=SynthesisOptions(anneal=anneal, cache=shared),
        )
        second = synthesize_layout(
            compiled, profile, 4,
            options=SynthesisOptions(anneal=anneal, cache=shared),
        )
        assert second.estimated_cycles == first.estimated_cycles
        # The second run re-visits only memoized layouts.
        assert second.evaluations == 0
        assert second.cache_hits == second.requested_evaluations > 0

    def test_report_carries_search_metrics_snapshot(self):
        registry = MetricsRegistry()
        report = small_synthesis("Keyword", metrics=registry)
        snapshot = report.search_metrics
        assert snapshot["schema"] == "repro.obs/search-metrics-v1"
        assert snapshot["workers"] == 1
        assert snapshot["evaluations"] == report.evaluations
        assert snapshot["cache_hits"] == report.cache_hits
        assert snapshot["sim_cache"]["hits"] == report.cache_hits
        assert 0.0 <= snapshot["cache_hit_rate"] <= 1.0
        # The caller's registry saw every cache event.
        counters = registry.snapshot()["counters"]
        assert counters["sim_cache_hits"] == report.cache_hits


def _keyword_layout_pool(count=40, num_cores=6, seed=11):
    compiled = load_benchmark("Keyword")
    profile = profile_program(compiled, SMALL_ARGS["Keyword"])
    cstg = annotated_cstg(compiled, profile)
    graph = build_group_graph(compiled.info, cstg, profile)
    choices = {
        g.group_id: ([1, 2, 3, num_cores] if g.replicable else [1])
        for g in graph.groups
    }
    return random_layouts(
        compiled.info, graph, choices, num_cores, count, random.Random(seed)
    )


class TestLayoutFingerprint:
    def test_distinct_contents_distinct_fingerprints(self):
        layouts = _keyword_layout_pool()
        assert len(layouts) >= 10  # the sampler actually produced a pool
        by_content = {}
        for layout in layouts:
            content = (
                layout.num_cores,
                tuple(sorted(
                    (task, tuple(cores))
                    for task, cores in layout.as_dict().items()
                )),
            )
            by_content.setdefault(content, set()).add(
                layout_fingerprint(layout)
            )
        # identical content -> identical fingerprint
        assert all(len(prints) == 1 for prints in by_content.values())
        # distinct content -> distinct fingerprint (no collisions in pool)
        all_prints = [next(iter(p)) for p in by_content.values()]
        assert len(set(all_prints)) == len(by_content)

    def test_core_speeds_change_the_fingerprint(self):
        layout = _keyword_layout_pool(count=1)[0]
        plain = layout_fingerprint(layout)
        hetero = layout_fingerprint(layout, {0: 2.0})
        assert plain != hetero
        # speeds on unused cores are irrelevant
        unused = max(layout.cores_used()) + 1
        assert layout_fingerprint(layout, {unused: 2.0}) == plain

    def test_fingerprint_is_stable(self):
        layout = _keyword_layout_pool(count=1)[0]
        assert layout_fingerprint(layout) == layout_fingerprint(layout)


def _entry(cycles, pruned=False):
    result = SimResult(
        total_cycles=cycles, finished=True, trace=[], core_busy={},
        invocations={}, utilization=1.0, pruned=pruned,
    )
    return CacheEntry(cycles=cycles, result=result, pruned=pruned)


class TestSimCache:
    def test_hit_miss_counters(self):
        cache = SimCache()
        assert cache.get("a") is None
        cache.put("a", _entry(100))
        assert cache.get("a").cycles == 100
        assert (cache.hits, cache.misses) == (1, 1)
        assert cache.hit_rate == 0.5
        assert len(cache) == 1 and "a" in cache

    def test_lru_eviction(self):
        cache = SimCache(max_entries=2)
        cache.put("a", _entry(1))
        cache.put("b", _entry(2))
        assert cache.get("a") is not None  # refresh a
        cache.put("c", _entry(3))          # evicts b, the LRU entry
        assert cache.evictions == 1
        assert "b" not in cache
        assert "a" in cache and "c" in cache

    def test_bound_entry_answers_only_below_its_cycles(self):
        cache = SimCache()
        cache.put("k", _entry(500, pruned=True))
        # cutoff below the observed bound: the layout provably loses
        assert cache.get("k", cutoff=400) is not None
        # cutoff at/above the bound, or no cutoff: must re-simulate
        assert cache.get("k", cutoff=500) is None
        assert cache.get("k") is None
        assert cache.bound_misses == 2

    def test_exact_entry_never_downgraded(self):
        cache = SimCache()
        cache.put("k", _entry(500))
        cache.put("k", _entry(450, pruned=True))
        entry = cache.get("k")
        assert entry is not None and not entry.pruned
        assert entry.cycles == 500

    def test_registry_counters(self):
        registry = MetricsRegistry()
        cache = SimCache(registry=registry)
        cache.get("a")
        cache.put("a", _entry(10))
        cache.get("a")
        counters = registry.snapshot()["counters"]
        assert counters["sim_cache_hits"] == 1
        assert counters["sim_cache_misses"] == 1

    def test_stats_snapshot(self):
        cache = SimCache(max_entries=8)
        cache.put("a", _entry(10))
        cache.get("a")
        cache.get("zzz")
        stats = cache.stats()
        assert stats["entries"] == 1
        assert stats["max_entries"] == 8
        assert stats["hits"] == 1 and stats["misses"] == 1
        assert stats["lookups"] == 2


class TestEvaluatorContract:
    @pytest.fixture(scope="class")
    def keyword_setup(self):
        compiled = load_benchmark("Keyword")
        profile = profile_program(compiled, SMALL_ARGS["Keyword"])
        layouts = _keyword_layout_pool(count=6, num_cores=4, seed=5)
        return compiled, profile, layouts

    def test_budget_stops_batch_at_first_uncovered_miss(self, keyword_setup):
        compiled, profile, layouts = keyword_setup
        evaluator = SerialEvaluator(compiled, profile, cache=SimCache())
        outcome = evaluator.evaluate(layouts, budget=3)
        assert outcome.simulations == 3
        assert len(outcome.scored) == 3  # unscored suffix dropped

    def test_cached_prefix_is_free(self, keyword_setup):
        compiled, profile, layouts = keyword_setup
        cache = SimCache()
        evaluator = SerialEvaluator(compiled, profile, cache=cache)
        evaluator.evaluate(layouts)  # warm
        outcome = evaluator.evaluate(layouts, budget=0)
        assert outcome.simulations == 0
        assert outcome.cache_hits == len(layouts)
        assert all(item.from_cache for item in outcome.scored)

    def test_parallel_backend_matches_serial(self, keyword_setup):
        compiled, profile, layouts = keyword_setup
        serial = SerialEvaluator(compiled, profile)
        parallel = ParallelEvaluator(compiled, profile, workers=2)
        try:
            a = serial.evaluate(layouts)
            b = parallel.evaluate(layouts)
            assert [s.cycles for s in a.scored] == [s.cycles for s in b.scored]
        finally:
            parallel.close()

    def test_factory_picks_backend(self, keyword_setup):
        compiled, profile, _ = keyword_setup
        assert isinstance(
            make_evaluator(compiled, profile, workers=1), SerialEvaluator
        )
        parallel = make_evaluator(compiled, profile, workers=2)
        assert isinstance(parallel, ParallelEvaluator)
        parallel.close()

    def test_parallel_requires_two_workers(self, keyword_setup):
        compiled, profile, _ = keyword_setup
        with pytest.raises(ValueError):
            ParallelEvaluator(compiled, profile, workers=1)

    def test_cutoff_prunes_slow_layouts(self, keyword_setup):
        compiled, profile, layouts = keyword_setup
        evaluator = SerialEvaluator(compiled, profile)
        full = evaluator.evaluate(layouts)
        best = min(item.cycles for item in full.scored)
        cut = evaluator.evaluate(layouts, cutoff=best)
        assert cut.pruned > 0
        # pruned scores are still lower-bounded above the cutoff
        for before, after in zip(full.scored, cut.scored):
            if after.result.pruned:
                assert after.cycles > best or after.cycles == before.cycles

    def test_worker_exception_carries_batch_position(self, keyword_setup):
        compiled, profile, layouts = keyword_setup

        class FailingFuture:
            def result(self, timeout=None):
                raise ValueError("boom")

        class FailingPool:
            def submit(self, fn, *args):
                return FailingFuture()

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        evaluator = ParallelEvaluator(compiled, profile, workers=2)
        evaluator._executor = FailingPool()
        with pytest.raises(EvaluationError) as excinfo:
            evaluator._simulate(layouts[:3], None)
        assert excinfo.value.position == 0
        assert excinfo.value.batch_size == 3
        assert "layout 1/3" in str(excinfo.value)
        assert "ValueError: boom" in str(excinfo.value)

    def test_single_layout_shortcut_never_touches_the_pool(
        self, keyword_setup
    ):
        compiled, profile, layouts = keyword_setup

        class DeadPool:
            def submit(self, fn, *args):
                raise AssertionError("single-layout batch reached the pool")

            def shutdown(self, wait=True, cancel_futures=False):
                pass

        serial = SerialEvaluator(compiled, profile)
        parallel = ParallelEvaluator(compiled, profile, workers=2)
        parallel._executor = DeadPool()
        with serial, parallel:
            expected = serial.evaluate(layouts[:1])
            got = parallel.evaluate(layouts[:1])
        assert [s.cycles for s in got.scored] == [
            s.cycles for s in expected.scored
        ]

    def test_evaluator_context_manager_closes_pool(self, keyword_setup):
        compiled, profile, layouts = keyword_setup
        with ParallelEvaluator(compiled, profile, workers=2) as evaluator:
            evaluator.evaluate(layouts[:3])
            assert evaluator._executor is not None
        assert evaluator._executor is None
        # close() is idempotent
        evaluator.close()


class TestOptionsShims:
    def test_run_layout_config_kwarg_warns_and_works(self, tmp_path):
        compiled = load_benchmark("Keyword")
        layout = single_core_layout(compiled)
        baseline = run_layout(compiled, layout, ["4"])
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            legacy = run_layout(compiled, layout, ["4"], config=None)
        assert legacy.total_cycles == baseline.total_cycles

    def test_run_layout_collect_profile_kwarg_warns(self):
        compiled = load_benchmark("Keyword")
        layout = single_core_layout(compiled)
        with pytest.warns(DeprecationWarning, match="RunOptions"):
            result = run_layout(
                compiled, layout, ["4"], collect_profile=True
            )
        assert result.profile is not None

    def test_run_layout_rejects_options_plus_legacy(self):
        compiled = load_benchmark("Keyword")
        layout = single_core_layout(compiled)
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                run_layout(
                    compiled, layout, ["4"],
                    options=RunOptions(), collect_profile=True,
                )

    def test_synthesize_layout_legacy_kwargs_warn_and_match(self):
        compiled = load_benchmark("Keyword")
        profile = profile_program(compiled, SMALL_ARGS["Keyword"])
        anneal = AnnealConfig(seed=7, **SMALL_ANNEAL)
        new = synthesize_layout(
            compiled, profile, 4,
            options=SynthesisOptions(seed=1, anneal=anneal),
        )
        with pytest.warns(DeprecationWarning, match="SynthesisOptions"):
            old = synthesize_layout(
                compiled, profile, 4, seed=1, config=anneal
            )
        assert report_fingerprint(old) == report_fingerprint(new)

    def test_synthesize_layout_config_alone_forces_seed_zero(self):
        # The old signature always overwrote config.seed with the seed
        # parameter (default 0); the shim must preserve that.
        compiled = load_benchmark("Keyword")
        profile = profile_program(compiled, SMALL_ARGS["Keyword"])
        anneal = AnnealConfig(seed=9, **SMALL_ANNEAL)
        with pytest.warns(DeprecationWarning):
            old = synthesize_layout(compiled, profile, 4, config=anneal)
        new = synthesize_layout(
            compiled, profile, 4,
            options=SynthesisOptions(seed=0, anneal=anneal),
        )
        assert report_fingerprint(old) == report_fingerprint(new)
        assert anneal.seed == 9  # the shim no longer mutates the config

    def test_synthesize_layout_rejects_options_plus_legacy(self):
        compiled = load_benchmark("Keyword")
        profile = profile_program(compiled, SMALL_ARGS["Keyword"])
        with pytest.warns(DeprecationWarning):
            with pytest.raises(TypeError):
                synthesize_layout(
                    compiled, profile, 4,
                    options=SynthesisOptions(), seed=1,
                )

    def test_run_options_sinks_written(self, tmp_path):
        import json

        compiled = load_benchmark("Keyword")
        layout = single_core_layout(compiled)
        trace = tmp_path / "trace.json"
        metrics = tmp_path / "metrics.json"
        result = run_layout(
            compiled, layout, ["4"],
            options=RunOptions(
                trace_path=str(trace), metrics_path=str(metrics)
            ),
        )
        assert result.events is not None  # sink paths imply observation
        assert json.loads(trace.read_text())["traceEvents"]
        assert json.loads(metrics.read_text())

    def test_all_default_run_options_take_no_config_path(self):
        compiled = load_benchmark("Keyword")
        layout = single_core_layout(compiled)
        bare = run_layout(compiled, layout, ["4"])
        optioned = run_layout(compiled, layout, ["4"], options=RunOptions())
        assert RunOptions().machine_config() is None
        assert bare.total_cycles == optioned.total_cycles
        assert bare.events is None and optioned.events is None


class TestDSAEngineWiring:
    def test_dsa_owns_and_closes_its_evaluator(self):
        compiled = load_benchmark("Keyword")
        profile = profile_program(compiled, SMALL_ARGS["Keyword"])
        dsa = DirectedSimulatedAnnealing(
            compiled, profile, 4,
            config=AnnealConfig(seed=7, **SMALL_ANNEAL), workers=2,
        )
        try:
            result = dsa.run()
        finally:
            dsa.close()
        assert result.best_cycles > 0
        assert result.requested_evaluations == (
            result.evaluations + result.cache_hits
        )
        assert result.cache_stats is not None
        assert result.cache_stats["hits"] == result.cache_hits

    def test_use_cache_false_disables_memoization(self):
        compiled = load_benchmark("Keyword")
        profile = profile_program(compiled, SMALL_ARGS["Keyword"])
        dsa = DirectedSimulatedAnnealing(
            compiled, profile, 4,
            config=AnnealConfig(seed=7, **SMALL_ANNEAL), use_cache=False,
        )
        try:
            result = dsa.run()
        finally:
            dsa.close()
        assert result.cache_hits == 0
        assert result.cache_stats is None
