"""Unit tests for the Bamboo parser."""

import pytest

from repro.lang import ast
from repro.lang.errors import ParseError
from repro.lang.parser import parse_program


def parse_task_body(body: str):
    program = parse_program(
        "task t(StartupObject s in initialstate) { %s }" % body
    )
    return program.tasks[0].body.statements


def parse_expr(text: str):
    statements = parse_task_body(f"int x = {text};")
    return statements[0].init


class TestClassDeclarations:
    def test_empty_class(self):
        program = parse_program("class A { }")
        assert program.classes[0].name == "A"
        assert program.classes[0].flags == []

    def test_flags(self):
        program = parse_program("class A { flag ready; flag done; }")
        assert program.classes[0].flags == ["ready", "done"]

    def test_fields(self):
        program = parse_program("class A { int x; String s; float[] data; }")
        fields = program.classes[0].fields
        assert [f.name for f in fields] == ["x", "s", "data"]
        assert fields[2].field_type == ast.TypeNode("float", 1)

    def test_method(self):
        program = parse_program("class A { int get(int i) { return i; } }")
        method = program.classes[0].methods[0]
        assert method.name == "get"
        assert not method.is_constructor
        assert method.return_type == ast.TypeNode("int")

    def test_constructor(self):
        program = parse_program("class A { A(int x) { } }")
        assert program.classes[0].methods[0].is_constructor

    def test_method_named_like_other_class_is_method(self):
        program = parse_program("class A { B make() { return null; } }")
        assert program.classes[0].methods[0].name == "make"

    def test_static_method(self):
        program = parse_program("class A { static int two() { return 2; } }")
        assert program.classes[0].methods[0].is_static

    def test_static_field_rejected(self):
        with pytest.raises(ParseError):
            parse_program("class A { static int x; }")

    def test_2d_array_field(self):
        program = parse_program("class A { int[][] grid; }")
        assert program.classes[0].fields[0].field_type.dims == 2


class TestTaskDeclarations:
    def test_single_guard(self):
        program = parse_program("task t(Foo f in ready) { }")
        param = program.tasks[0].params[0]
        assert param.name == "f"
        assert isinstance(param.guard, ast.FlagRef)

    def test_guard_expression_grammar(self):
        program = parse_program(
            "task t(Foo f in (ready and !done) or stale) { }"
        )
        guard = program.tasks[0].params[0].guard
        assert isinstance(guard, ast.FlagOr)
        assert isinstance(guard.left, ast.FlagAnd)
        assert isinstance(guard.left.right, ast.FlagNot)

    def test_guard_constants(self):
        program = parse_program("task t(Foo f in true) { }")
        assert isinstance(program.tasks[0].params[0].guard, ast.FlagConst)

    def test_tag_guards(self):
        program = parse_program(
            "task t(Foo f in ready with grp g, Bar b in done with grp g) { }"
        )
        assert program.tasks[0].params[0].tag_guards == [
            ast.TagGuard(tag_type="grp", binding="g")
        ]

    def test_multiple_tag_guards(self):
        program = parse_program(
            "task t(Foo f in ready with grp g and pair p) { }"
        )
        assert len(program.tasks[0].params[0].tag_guards) == 2

    def test_multiple_params(self):
        program = parse_program("task t(Foo f in a, Bar b in !b) { }")
        assert [p.name for p in program.tasks[0].params] == ["f", "b"]


class TestTaskExit:
    def test_flag_actions(self):
        statements = parse_task_body("taskexit(s: initialstate := false);")
        stmt = statements[0]
        assert isinstance(stmt, ast.TaskExitStmt)
        param, actions = stmt.actions[0]
        assert param == "s"
        assert actions == [ast.FlagAction(flag="initialstate", value=False)]

    def test_multiple_params_separated_by_semicolons(self):
        statements = parse_task_body(
            "taskexit(s: initialstate := false; s2: a := true, b := false);"
        )
        stmt = statements[0]
        assert len(stmt.actions) == 2
        assert len(stmt.actions[1][1]) == 2

    def test_tag_actions(self):
        statements = parse_task_body(
            "tag t = new tag(grp); taskexit(s: add t, clear t);"
        )
        _, actions = statements[1].actions[0]
        assert actions == [
            ast.TagAction(op="add", tag_var="t"),
            ast.TagAction(op="clear", tag_var="t"),
        ]

    def test_empty_taskexit(self):
        statements = parse_task_body("taskexit();")
        assert statements[0].actions == []

    def test_flag_value_must_be_literal(self):
        with pytest.raises(ParseError):
            parse_task_body("taskexit(s: f := 1);")


class TestStatements:
    def test_declaration_with_array_type(self):
        statements = parse_task_body("int[] xs = new int[5];")
        assert isinstance(statements[0], ast.VarDeclStmt)
        assert statements[0].var_type.dims == 1

    def test_index_assignment_is_not_declaration(self):
        statements = parse_task_body("int[] a = new int[2]; a[0] = 1;")
        assert isinstance(statements[1], ast.AssignStmt)
        assert isinstance(statements[1].target, ast.ArrayIndex)

    def test_compound_assignment_desugars(self):
        statements = parse_task_body("int x = 0; x += 2;")
        assign = statements[1]
        assert isinstance(assign.value, ast.Binary)
        assert assign.value.op == "+"

    def test_increment_desugars(self):
        statements = parse_task_body("int x = 0; x++;")
        assert isinstance(statements[1], ast.AssignStmt)
        assert statements[1].value.op == "+"

    def test_if_else(self):
        statements = parse_task_body("if (true) { } else { }")
        stmt = statements[0]
        assert isinstance(stmt, ast.IfStmt)
        assert stmt.else_branch is not None

    def test_dangling_else_binds_to_nearest_if(self):
        statements = parse_task_body("if (true) if (false) { } else { }")
        outer = statements[0]
        assert outer.else_branch is None
        assert outer.then_branch.else_branch is not None

    def test_while(self):
        statements = parse_task_body("while (1 < 2) { break; }")
        assert isinstance(statements[0], ast.WhileStmt)

    def test_for_full(self):
        statements = parse_task_body("for (int i = 0; i < 3; i++) { continue; }")
        stmt = statements[0]
        assert isinstance(stmt, ast.ForStmt)
        assert stmt.init is not None and stmt.cond is not None

    def test_for_empty_clauses(self):
        statements = parse_task_body("for (;;) { break; }")
        stmt = statements[0]
        assert stmt.init is None and stmt.cond is None and stmt.update is None

    def test_tag_declaration(self):
        statements = parse_task_body("tag t = new tag(saveop);")
        stmt = statements[0]
        assert isinstance(stmt, ast.TagDeclStmt)
        assert stmt.tag_type == "saveop"


class TestExpressions:
    def test_precedence_mul_over_add(self):
        expr = parse_expr("1 + 2 * 3")
        assert expr.op == "+"
        assert expr.right.op == "*"

    def test_precedence_comparison_over_logic(self):
        statements = parse_task_body("boolean b = 1 < 2 && 3 < 4;")
        expr = statements[0].init
        assert expr.op == "&&"
        assert expr.left.op == "<"

    def test_left_associativity(self):
        expr = parse_expr("10 - 3 - 2")
        assert expr.op == "-"
        assert expr.left.op == "-"
        assert expr.right.value == 2

    def test_unary_minus(self):
        expr = parse_expr("-x")
        assert isinstance(expr, ast.Unary)

    def test_parenthesized(self):
        expr = parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_cast(self):
        expr = parse_expr("(float) 3")
        assert isinstance(expr, ast.Cast)
        assert expr.target.name == "float"

    def test_parenthesized_name_is_not_cast(self):
        expr = parse_expr("(x)")
        assert isinstance(expr, ast.VarRef)

    def test_new_object_with_flag_inits(self):
        expr = parse_expr('new Text("a"){process := true}')
        assert isinstance(expr, ast.NewObject)
        assert expr.flag_inits == [ast.FlagAction(flag="process", value=True)]

    def test_new_object_with_tag_init(self):
        statements = parse_task_body(
            "tag t = new tag(g); Foo f = new Foo(){ready := true, add t};"
        )
        expr = statements[1].init
        assert expr.tag_inits == [ast.TagAction(op="add", tag_var="t")]

    def test_new_array_multi_dim(self):
        expr = parse_expr("new int[3][4]")
        assert isinstance(expr, ast.NewArray)
        assert len(expr.dims) == 2

    def test_new_array_extra_dims(self):
        expr = parse_expr("new int[3][]")
        assert expr.extra_dims == 1

    def test_new_array_dim_after_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_expr("new int[][3]")

    def test_method_call_chain(self):
        expr = parse_expr('"abc".substring(0, 2).length()')
        assert isinstance(expr, ast.MethodCall)
        assert expr.name == "length"
        assert expr.receiver.name == "substring"

    def test_field_then_index(self):
        expr = parse_expr("s.args[0]")
        assert isinstance(expr, ast.ArrayIndex)
        assert isinstance(expr.array, ast.FieldAccess)

    def test_this_receiver(self):
        program = parse_program(
            "class A { int x; int get() { return this.x; } }"
        )
        ret = program.classes[0].methods[0].body.statements[0]
        assert isinstance(ret.value, ast.FieldAccess)
        assert isinstance(ret.value.receiver, ast.ThisRef)


class TestErrors:
    def test_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_program("class A { int x }")

    def test_garbage_at_top_level(self):
        with pytest.raises(ParseError):
            parse_program("int x;")

    def test_task_param_missing_in(self):
        with pytest.raises(ParseError):
            parse_program("task t(Foo f) { }")

    def test_unclosed_brace(self):
        with pytest.raises(ParseError):
            parse_program("class A {")

    def test_error_carries_location(self):
        with pytest.raises(ParseError) as exc_info:
            parse_program("class A {\n  int x\n}")
        assert exc_info.value.location.line >= 2
