"""Directed simulated annealing tests (paper §4.5)."""

import pytest

from repro.core import run_layout, single_core_layout
from repro.schedule.anneal import (
    AnnealConfig,
    DirectedSimulatedAnnealing,
    directed_simulated_annealing,
)
from repro.schedule.simulator import simulate


def small_config(seed=0, **overrides):
    config = AnnealConfig(
        seed=seed,
        initial_candidates=4,
        max_iterations=8,
        max_evaluations=80,
        patience=1,
        continue_probability=0.2,
    )
    for key, value in overrides.items():
        setattr(config, key, value)
    return config


class TestSearch:
    def test_finds_better_than_single_core(self, keyword_compiled, keyword_profile):
        result = directed_simulated_annealing(
            keyword_compiled, keyword_profile, num_cores=4, config=small_config()
        )
        single = simulate(
            keyword_compiled,
            single_core_layout(keyword_compiled),
            keyword_profile,
        )
        assert result.best_cycles < single.total_cycles

    def test_best_layout_is_valid_and_runs(self, keyword_compiled, keyword_profile):
        result = directed_simulated_annealing(
            keyword_compiled, keyword_profile, num_cores=4, config=small_config()
        )
        result.best_layout.validate(keyword_compiled.info)
        machine_result = run_layout(keyword_compiled, result.best_layout, ["6"])
        assert machine_result.stdout == "total=12"

    def test_deterministic_given_seed(self, keyword_compiled, keyword_profile):
        first = directed_simulated_annealing(
            keyword_compiled, keyword_profile, num_cores=4, config=small_config(3)
        )
        second = directed_simulated_annealing(
            keyword_compiled, keyword_profile, num_cores=4, config=small_config(3)
        )
        assert first.best_cycles == second.best_cycles
        assert first.best_layout.canonical_key() == second.best_layout.canonical_key()

    def test_history_monotone_nonincreasing(self, keyword_compiled, keyword_profile):
        result = directed_simulated_annealing(
            keyword_compiled, keyword_profile, num_cores=4, config=small_config()
        )
        for before, after in zip(result.history, result.history[1:]):
            assert after <= before

    def test_evaluation_budget_respected(self, keyword_compiled, keyword_profile):
        config = small_config(max_evaluations=10)
        result = directed_simulated_annealing(
            keyword_compiled, keyword_profile, num_cores=4, config=config
        )
        assert result.evaluations <= 10

    def test_undirected_ablation_runs(self, keyword_compiled, keyword_profile):
        config = small_config(use_critical_path=False)
        result = directed_simulated_annealing(
            keyword_compiled, keyword_profile, num_cores=4, config=config
        )
        assert result.best_cycles < (1 << 62)

    def test_initial_layout_injection(self, keyword_compiled, keyword_profile):
        single = single_core_layout(keyword_compiled)
        # num_cores=1 leaves no room: the single-core layout must win.
        result = directed_simulated_annealing(
            keyword_compiled,
            keyword_profile,
            num_cores=1,
            config=small_config(),
            initial=[single],
        )
        assert result.best_layout.cores_used() == (0,)


class TestEvaluationCache:
    def test_cache_hits_do_not_consume_budget(self, keyword_compiled, keyword_profile):
        dsa = DirectedSimulatedAnnealing(
            keyword_compiled, keyword_profile, num_cores=4, config=small_config()
        )
        layout = single_core_layout(keyword_compiled)
        first = dsa.evaluate(layout)
        evals_after_first = dsa.evaluations
        second = dsa.evaluate(layout)
        assert dsa.evaluations == evals_after_first
        assert first[0] == second[0]
