"""Tests for the experiment runners (Figure 7/9/11 protocols) and the
remaining runtime features: bounds-check cost mode and shared-lock
execution on the machine."""

import pytest

from repro.bench.runner import (
    estimate_vs_real,
    generality_run,
    run_three_versions,
)
from repro.core import (
    RunOptions,
    compile_program,
    run_layout,
    run_sequential,
    single_core_layout,
)
from repro.runtime.machine import MachineConfig
from repro.schedule.layout import Layout


class TestThreeVersionProtocol:
    def test_keyword_protocol(self):
        row = run_three_versions("Keyword", num_cores=4, args=["10"])
        assert row.outputs_match
        assert row.seq_cycles < row.one_core_cycles
        assert row.many_core_cycles < row.one_core_cycles
        assert row.speedup_vs_bamboo > 1
        assert row.speedup_vs_seq == pytest.approx(
            row.seq_cycles / row.many_core_cycles
        )
        assert row.report is not None


class TestAccuracyProtocol:
    def test_estimate_vs_real_row(self):
        from repro.bench import load_benchmark

        compiled = load_benchmark("Keyword")
        layout = single_core_layout(compiled)
        row = estimate_vs_real("Keyword", layout, "1-core", args=["8"])
        assert row.layout_kind == "1-core"
        assert abs(row.error) < 0.1


class TestGeneralityProtocol:
    def test_generality_row(self):
        row = generality_run("Keyword", num_cores=4)
        assert row.speedup_original > 0.8
        assert row.speedup_double > 0.8
        assert row.one_core_cycles > row.original_profile_cycles * 0.5


class TestBoundsCheckMode:
    SOURCE = """
    class SeqMain {
        SeqMain() { }
        void run(String[] args) {
            int[] data = new int[64];
            int acc = 0;
            for (int i = 0; i < 64; i++) data[i] = i;
            for (int i = 0; i < 64; i++) acc = acc + data[i];
            System.printInt(acc);
        }
    }
    task startup(StartupObject s in initialstate) {
        taskexit(s: initialstate := false);
    }
    """

    def test_bounds_checks_cost_more(self):
        compiled = compile_program(self.SOURCE)
        off = run_sequential(compiled, ["0"], bounds_checks=False)
        on = run_sequential(compiled, ["0"], bounds_checks=True)
        assert on.stdout == off.stdout
        # 128 array accesses, BOUNDS_CHECK_COST each.
        from repro.ir.costs import BOUNDS_CHECK_COST

        assert on.cycles == off.cycles + 128 * BOUNDS_CHECK_COST

    def test_machine_config_knob(self, keyword_compiled):
        layout = single_core_layout(keyword_compiled)
        off = run_layout(keyword_compiled, layout, ["6"])
        on = run_layout(
            keyword_compiled, layout, ["6"], options=RunOptions(machine=MachineConfig(bounds_checks=True)))
        assert on.stdout == off.stdout
        assert on.total_cycles > off.total_cycles


SHARING_SOURCE = """
class Node { flag fresh; flag linked; Node next; int v; Node(int v) { this.v = v; } }
class Chain { flag open; flag closed; Node head; int length; int expected;
    Chain(int expected) { this.expected = expected; this.length = 0; }
    boolean attach(Node n) {
        n.next = this.head;
        this.head = n;
        this.length = this.length + 1;
        return this.length == this.expected;
    }
}
class SeqMain { SeqMain() { } void run(String[] args) { System.printInt(0); } }
task startup(StartupObject s in initialstate) {
    int count = Integer.parseInt(s.args[0]);
    for (int i = 0; i < count; i++) {
        Node n = new Node(i){fresh := true};
    }
    Chain c = new Chain(count){open := true};
    taskexit(s: initialstate := false);
}
task link(Chain c in open, Node n in fresh) {
    boolean full = c.attach(n);
    if (full) {
        System.printInt(c.length);
        taskexit(c: open := false, closed := true; n: fresh := false, linked := true);
    }
    taskexit(n: fresh := false, linked := true);
}
"""


class TestSharedLockExecution:
    """The link task stores Nodes into the Chain: the disjointness analysis
    must flag it, and the machine must merge lock groups at commit."""

    def test_analysis_flags_sharing(self):
        compiled = compile_program(SHARING_SOURCE)
        assert not compiled.lock_plan.plan_for("link").is_fine_grained

    def test_machine_runs_with_lock_merging(self):
        compiled = compile_program(SHARING_SOURCE)
        mapping = {t: [0] for t in compiled.info.tasks}
        layout = Layout.make(2, mapping)
        result = run_layout(compiled, layout, ["7"])
        assert result.invocations["link"] == 7
        assert result.stdout == "7"

    def test_lock_groups_actually_merged(self):
        from repro.runtime.machine import ManyCoreMachine

        compiled = compile_program(SHARING_SOURCE)
        layout = Layout.make(2, {t: [0] for t in compiled.info.tasks})
        machine = ManyCoreMachine(compiled, layout)
        machine.run(["4"])
        # All linked nodes share the chain's lock group now.
        heap_objects = [
            o for o in machine.heap.objects.values() if o.class_name == "Node"
        ]
        chain = next(
            o for o in machine.heap.objects.values() if o.class_name == "Chain"
        )
        roots = {machine.locks._find(o.obj_id) for o in heap_objects}
        roots.add(machine.locks._find(chain.obj_id))
        assert len(roots) == 1
