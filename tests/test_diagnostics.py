"""Tests for the compile-time diagnostics."""

import pytest

from repro.analysis.diagnostics import analyze_diagnostics, warnings_only
from repro.core import compile_program


def diagnostics_of(source: str):
    compiled = compile_program(source)
    return analyze_diagnostics(
        compiled.info, compiled.ir_program, compiled.astgs
    )


def kinds(diagnostics):
    return {(d.kind, d.subject) for d in diagnostics}


BASE = """
class Job { flag ready; flag done; int v; Job(int v) { this.v = v; } }
task startup(StartupObject s in initialstate) {
    Job j = new Job(1){ready := true};
    taskexit(s: initialstate := false);
}
task work(Job j in ready) {
    taskexit(j: ready := false, done := true);
}
task collect(Job j in done) {
    taskexit(j: done := false);
}
"""


class TestCleanProgram:
    def test_no_warnings(self):
        diagnostics = diagnostics_of(BASE)
        assert warnings_only(diagnostics) == []

    def test_keyword_example_only_terminal_info(self, keyword_compiled):
        diagnostics = analyze_diagnostics(
            keyword_compiled.info,
            keyword_compiled.ir_program,
            keyword_compiled.astgs,
        )
        assert warnings_only(diagnostics) == []
        infos = [d for d in diagnostics if d.severity == "info"]
        assert any("Results" in d.subject for d in infos)

    def test_benchmarks_warning_free(self):
        from repro.bench import benchmark_names, load_benchmark

        for name in benchmark_names():
            compiled = load_benchmark(name)
            diagnostics = analyze_diagnostics(
                compiled.info, compiled.ir_program, compiled.astgs
            )
            assert warnings_only(diagnostics) == [], name


class TestDeadTasks:
    def test_unsatisfiable_guard_reported(self):
        source = BASE + """
        task ghost(Job j in ready and done) { taskexit(j: ready := false); }
        """
        diagnostics = diagnostics_of(source)
        assert ("dead-task", "ghost") in kinds(warnings_only(diagnostics))

    def test_guard_on_never_set_flag_reported(self):
        source = """
        class Job { flag ready; flag phantom; Job() { } }
        task startup(StartupObject s in initialstate) {
            Job j = new Job(){ready := true};
            taskexit(s: initialstate := false);
        }
        task work(Job j in ready) { taskexit(j: ready := false); }
        task never(Job j in phantom) { taskexit(j: phantom := false); }
        """
        found = kinds(warnings_only(diagnostics_of(source)))
        assert ("dead-task", "never") in found
        assert ("never-set-flag", "Job.phantom") in found

    def test_live_tasks_not_reported(self):
        diagnostics = warnings_only(diagnostics_of(BASE))
        assert not any(d.kind == "dead-task" for d in diagnostics)


class TestParkedStates:
    def test_terminal_flagged_state_is_info(self):
        source = """
        class Job { flag ready; flag archived; Job() { } }
        task startup(StartupObject s in initialstate) {
            Job j = new Job(){ready := true};
            taskexit(s: initialstate := false);
        }
        task work(Job j in ready) {
            taskexit(j: ready := false, archived := true);
        }
        """
        diagnostics = diagnostics_of(source)
        parked = [d for d in diagnostics if d.kind == "parked-state"]
        assert any("archived" in d.subject for d in parked)
        assert all(d.severity == "info" for d in parked)

    def test_empty_state_not_reported(self):
        diagnostics = diagnostics_of(BASE)
        assert not any(
            d.kind == "parked-state" and ":{}" in d.subject for d in diagnostics
        )


class TestFormatting:
    def test_str_includes_severity(self):
        source = BASE + """
        task ghost(Job j in ready and done) { taskexit(j: ready := false); }
        """
        diagnostic = warnings_only(diagnostics_of(source))[0]
        assert str(diagnostic).startswith("warning:")
