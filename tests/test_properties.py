"""Property-based tests (hypothesis) on core data structures and invariants."""

import random
import string

from hypothesis import given, settings, strategies as st

from repro.analysis.astate import AState, eval_flag_expr
from repro.lang import ast
from repro.lang.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.parser import parse_program
from repro.lang.pretty import format_expr, format_program
from repro.lang.tokens import TokenKind
from repro.runtime.interp import _int_div, _int_rem
from repro.runtime.profiler import ProfileData
from repro.schedule.layout import Layout, mesh_hops

# ---------------------------------------------------------------------------
# Lexer robustness
# ---------------------------------------------------------------------------

printable_text = st.text(
    alphabet=string.ascii_letters + string.digits + string.punctuation + " \t\n",
    max_size=80,
)


@given(printable_text)
@settings(max_examples=200)
def test_lexer_terminates_on_arbitrary_text(text):
    try:
        tokens = tokenize(text)
    except LexError:
        return
    assert tokens[-1].kind is TokenKind.EOF
    # Tokens are non-overlapping and in order.
    positions = [
        (t.location.line, t.location.column) for t in tokens[:-1]
    ]
    assert positions == sorted(positions)


identifiers = st.from_regex(r"[a-z][a-z0-9]{0,6}", fullmatch=True).filter(
    lambda s: s not in {
        "class", "task", "flag", "tag", "taskexit", "new", "in", "with",
        "and", "or", "add", "clear", "if", "else", "while", "for", "return",
        "break", "continue", "true", "false", "null", "int", "float",
        "double", "boolean", "void", "this", "static",
    }
)


@given(identifiers)
def test_identifiers_round_trip_through_lexer(name):
    tokens = tokenize(name)
    assert tokens[0].kind is TokenKind.IDENT
    assert tokens[0].value == name


# ---------------------------------------------------------------------------
# Expression printer round-trip
# ---------------------------------------------------------------------------


def int_exprs():
    leaves = st.one_of(
        st.integers(min_value=0, max_value=1000).map(lambda v: ast.IntLit(value=v)),
        identifiers.map(lambda n: ast.VarRef(name=n)),
    )

    def extend(children):
        binary = st.tuples(
            st.sampled_from(["+", "-", "*", "/", "%"]), children, children
        ).map(lambda t: ast.Binary(op=t[0], left=t[1], right=t[2]))
        unary = children.map(lambda e: ast.Unary(op="-", operand=e))
        return st.one_of(binary, unary)

    return st.recursive(leaves, extend, max_leaves=12)


@given(int_exprs())
@settings(max_examples=150)
def test_expression_print_parse_round_trip(expr):
    source = (
        "task t(StartupObject s in initialstate) { int x = %s; }"
        % format_expr(expr)
    )
    program = parse_program(source)
    reparsed = program.tasks[0].body.statements[0].init
    assert format_expr(reparsed) == format_expr(expr)


@given(st.lists(identifiers, min_size=1, max_size=4, unique=True))
def test_class_print_parse_fixpoint(flag_names):
    source = "class C { %s }" % " ".join(f"flag {f};" for f in flag_names)
    once = format_program(parse_program(source))
    twice = format_program(parse_program(once))
    assert once == twice


# ---------------------------------------------------------------------------
# Java integer semantics
# ---------------------------------------------------------------------------

nonzero = st.integers(min_value=-10**6, max_value=10**6).filter(lambda v: v != 0)
anyint = st.integers(min_value=-10**6, max_value=10**6)


@given(anyint, nonzero)
def test_int_division_identity(a, b):
    # Java invariant: a == (a / b) * b + (a % b)
    assert _int_div(a, b) * b + _int_rem(a, b) == a


@given(anyint, nonzero)
def test_int_division_truncates_toward_zero(a, b):
    quotient = _int_div(a, b)
    exact = abs(a) // abs(b)
    assert abs(quotient) == exact


@given(anyint, nonzero)
def test_remainder_sign(a, b):
    remainder = _int_rem(a, b)
    assert remainder == 0 or (remainder > 0) == (a > 0)
    assert abs(remainder) < abs(b)


# ---------------------------------------------------------------------------
# Abstract states
# ---------------------------------------------------------------------------

flag_sets = st.sets(st.sampled_from("abcdef"), max_size=5)


@given(flag_sets, flag_sets)
def test_astate_with_flags_idempotent(base, updates):
    state = AState.make(base)
    update_map = {f: True for f in updates}
    once = state.with_flags(update_map)
    twice = once.with_flags(update_map)
    assert once == twice


@given(flag_sets, st.sampled_from("abcdef"))
def test_astate_set_then_clear_is_removal(flags, flag):
    state = AState.make(flags)
    result = state.with_flag(flag, True).with_flag(flag, False)
    assert flag not in result.flags
    assert result.flags == state.flags - {flag}


@given(flag_sets)
def test_flag_expr_evaluation_matches_python(flags):
    state = AState.make(flags)
    expr = ast.FlagOr(
        ast.FlagAnd(ast.FlagRef("a"), ast.FlagNot(ast.FlagRef("b"))),
        ast.FlagRef("c"),
    )
    expected = ("a" in flags and "b" not in flags) or ("c" in flags)
    assert eval_flag_expr(expr, state) == expected


@given(st.integers(0, 5), st.lists(st.integers(-1, 1), max_size=8))
def test_tag_counts_stay_one_limited(initial, deltas):
    state = AState.make([], {"t": initial})
    for delta in deltas:
        state = state.with_tag_delta("t", delta)
        assert 0 <= state.tag_count("t") <= 2


# ---------------------------------------------------------------------------
# Layouts and mesh
# ---------------------------------------------------------------------------


@given(st.integers(0, 63), st.integers(0, 63), st.integers(0, 63))
def test_mesh_hops_triangle_inequality(a, b, c):
    assert mesh_hops(a, c, 8) <= mesh_hops(a, b, 8) + mesh_hops(b, c, 8)


@given(
    st.dictionaries(
        st.sampled_from(["t1", "t2", "t3"]),
        st.sets(st.integers(0, 7), min_size=1, max_size=4),
        min_size=1,
        max_size=3,
    ),
    st.randoms(use_true_random=False),
)
def test_canonical_key_invariant_under_core_permutation(mapping, rng):
    layout = Layout.make(8, mapping)
    permutation = list(range(8))
    rng.shuffle(permutation)
    renamed = Layout.make(
        8, {t: [permutation[c] for c in cores] for t, cores in mapping.items()}
    )
    assert layout.canonical_key() == renamed.canonical_key()


# ---------------------------------------------------------------------------
# Profile serialization
# ---------------------------------------------------------------------------

profile_events = st.lists(
    st.tuples(
        st.sampled_from(["a", "b"]),
        st.integers(0, 3),
        st.integers(1, 10_000),
        st.dictionaries(st.integers(0, 4), st.integers(1, 5), max_size=2),
    ),
    max_size=30,
)


@given(profile_events)
def test_profile_serialization_round_trip(events):
    profile = ProfileData()
    for task, exit_id, cycles, allocs in events:
        profile.record_invocation(task, exit_id, cycles, allocs)
    restored = ProfileData.from_dict(profile.to_dict())
    assert restored.to_dict() == profile.to_dict()
    for task, _, _, _ in events:
        assert restored.invocations(task) == profile.invocations(task)
        assert restored.exit_sequence(task) == profile.exit_sequence(task)


@given(profile_events)
def test_exit_probabilities_sum_to_one(events):
    profile = ProfileData()
    for task, exit_id, cycles, allocs in events:
        profile.record_invocation(task, exit_id, cycles, allocs)
    for task in profile.task_names():
        total = sum(
            profile.exit_probability(task, e) for e in profile.exit_ids(task)
        )
        assert abs(total - 1.0) < 1e-9


# ---------------------------------------------------------------------------
# Optimizer differential testing: optimized programs behave identically
# ---------------------------------------------------------------------------


def _literal_int_exprs():
    leaves = st.integers(min_value=-50, max_value=50).map(
        lambda v: ast.IntLit(value=v)
    )

    def extend(children):
        return st.tuples(
            st.sampled_from(["+", "-", "*", "/", "%"]), children, children
        ).map(lambda t: ast.Binary(op=t[0], left=t[1], right=t[2]))

    return st.recursive(leaves, extend, max_leaves=10)


@given(_literal_int_exprs())
@settings(max_examples=120, deadline=None)
def test_optimizer_preserves_expression_semantics(expr):
    from repro.core import compile_program, run_sequential
    from repro.lang.errors import RuntimeBambooError

    text = format_expr(expr)
    source = (
        "class SeqMain { SeqMain() { } void run(String[] args) "
        "{ int x = %s; System.printInt(x); } } "
        "task startup(StartupObject s in initialstate) "
        "{ taskexit(s: initialstate := false); }" % text
    )
    plain = compile_program(source)
    fast = compile_program(source, optimize=True)

    def outcome(compiled):
        try:
            result = run_sequential(compiled, ["0"])
            return ("ok", result.stdout)
        except RuntimeBambooError:
            return ("fault", None)

    plain_outcome = outcome(plain)
    fast_outcome = outcome(fast)
    assert plain_outcome == fast_outcome
