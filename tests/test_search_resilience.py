"""Host-level fault tolerance of the layout search.

Four contracts are enforced here, mirroring the simulated-machine
resilience suite (``test_resilience.py``/``test_chaos.py``) one level up:

* **Supervision transparency** — a supervised search (deadlines, bounded
  retries, pool rebuilds, serial degradation) is bit-identical to an
  unsupervised one when fault-free, and bit-identical to the fault-free
  run under injected worker crashes and hangs. Supervision may only
  rescue work, never change it.
* **Bounded recovery** — retry exhaustion falls back to in-process
  simulation; repeated pool failures degrade the evaluator to serial
  mode; both paths still produce the serial backend's exact results.
* **Checkpoint integrity** — checkpoints round-trip, corruption and
  format mismatches are detected before unpickling, and a resume under a
  different anneal schedule is refused.
* **Resume bit-identity** — a search resumed from a checkpoint (periodic
  or interrupt-time) finishes bit-identical to an uninterrupted run, on
  every benchmark.
"""

import os
import random

import pytest

from test_search import (
    SMALL_ANNEAL,
    SMALL_ARGS,
    _keyword_layout_pool,
    report_fingerprint,
    small_profile,
    small_synthesis,
)

from repro.bench import benchmark_names, get_spec, load_benchmark
from repro.core import SynthesisOptions, synthesize_layout
from repro.obs import CheckpointWritten, PoolRebuild, WorkerRetry
from repro.schedule.anneal import (
    AnnealConfig,
    DirectedSimulatedAnnealing,
    directed_simulated_annealing,
)
from repro.search import (
    CheckpointError,
    HostChaosPlan,
    HostFault,
    RetryPolicy,
    SearchCheckpoint,
    SerialEvaluator,
    SupervisedEvaluator,
    read_checkpoint,
    run_host_chaos,
    write_checkpoint,
)

#: Fast-failure knobs for evaluator-level fault tests: short deadlines,
#: near-zero backoff, so injected hangs cost fractions of a second.
FAST_POLICY = RetryPolicy(
    timeout_mult=4.0, timeout_floor=0.4, max_retries=2,
    backoff_base=0.01, backoff_cap=0.05,
)


def _keyword_evaluators(chaos=None, policy=FAST_POLICY, workers=2):
    compiled = load_benchmark("Keyword")
    profile = small_profile("Keyword")
    serial = SerialEvaluator(compiled, profile)
    supervised = SupervisedEvaluator(
        compiled, profile, workers=workers, policy=policy, chaos=chaos,
    )
    return serial, supervised


def _cycles(outcome):
    return [item.cycles for item in outcome.scored]


def crash_plan(*dispatches):
    return HostChaosPlan(
        faults=tuple(HostFault(d, "crash") for d in dispatches)
    )


class TestSupervisedEvaluator:
    def test_fault_free_supervision_is_transparent(self):
        base = small_synthesis("Keyword", workers=1, supervise=False)
        supervised = small_synthesis("Keyword", workers=2, supervise=True)
        assert report_fingerprint(supervised) == report_fingerprint(base)
        stats = supervised.search_metrics["supervision"]
        assert stats["worker_retries"] == 0
        assert stats["pool_rebuilds"] == 0
        assert stats["serial_fallbacks"] == 0
        assert stats["degraded"] is False
        assert supervised.search_metrics["events"] == []

    def test_injected_crash_is_rescued_bit_identically(self):
        layouts = _keyword_layout_pool(count=6)
        serial, supervised = _keyword_evaluators(chaos=crash_plan(0))
        with serial, supervised:
            expected = _cycles(serial.evaluate(layouts))
            got = _cycles(supervised.evaluate(layouts))
        assert got == expected
        assert supervised.stats.injected_crashes == 1
        assert supervised.stats.worker_retries >= 1
        assert supervised.stats.pool_rebuilds >= 1
        kinds = [event.kind for event in supervised.stats.events]
        assert "worker_retry" in kinds and "pool_rebuild" in kinds

    def test_injected_hang_breaches_deadline_and_is_rescued(self):
        layouts = _keyword_layout_pool(count=4)
        chaos = HostChaosPlan(faults=(HostFault(1, "hang"),))
        serial, supervised = _keyword_evaluators(chaos=chaos)
        with serial, supervised:
            expected = _cycles(serial.evaluate(layouts))
            got = _cycles(supervised.evaluate(layouts))
        assert got == expected
        assert supervised.stats.injected_hangs == 1
        assert supervised.stats.pool_rebuilds >= 1
        reasons = {
            event.reason
            for event in supervised.stats.events
            if isinstance(event, WorkerRetry)
        }
        assert "deadline" in reasons

    def test_retry_exhaustion_falls_back_to_serial(self):
        # Crash every dispatch: each task burns its max_retries pool
        # attempts, then the in-process fallback must still produce the
        # serial backend's exact results.
        layouts = _keyword_layout_pool(count=3)
        serial, supervised = _keyword_evaluators(
            chaos=crash_plan(*range(40)),
            policy=RetryPolicy(
                timeout_mult=4.0, timeout_floor=0.4, max_retries=2,
                max_pool_failures=10, backoff_base=0.01, backoff_cap=0.05,
            ),
        )
        with serial, supervised:
            expected = _cycles(serial.evaluate(layouts))
            got = _cycles(supervised.evaluate(layouts))
        assert got == expected
        assert supervised.stats.serial_fallbacks == len(layouts)

    def test_repeated_pool_failures_degrade_to_serial_mode(self):
        layouts = _keyword_layout_pool(count=4)
        policy = RetryPolicy(
            timeout_mult=4.0, timeout_floor=0.4, max_retries=3,
            max_pool_failures=1, backoff_base=0.01, backoff_cap=0.05,
        )
        serial, supervised = _keyword_evaluators(
            chaos=crash_plan(0), policy=policy
        )
        with serial, supervised:
            expected = _cycles(serial.evaluate(layouts))
            got = _cycles(supervised.evaluate(layouts))
            assert got == expected
            assert supervised.stats.degraded is True
            # Degradation is permanent: later batches take the serial
            # path with no pool at all.
            before = supervised.stats.dispatches
            again = _cycles(supervised.evaluate(layouts))
        assert again == expected
        assert supervised.stats.dispatches == before

    def test_pool_broken_at_submit_degrades_gracefully(self):
        layouts = _keyword_layout_pool(count=3)
        serial, supervised = _keyword_evaluators(policy=RetryPolicy(
            timeout_mult=4.0, timeout_floor=0.4, max_retries=2,
            max_pool_failures=1, backoff_base=0.01, backoff_cap=0.05,
        ))

        def broken_pool():
            raise RuntimeError("cannot fork")

        supervised._pool = broken_pool
        with serial, supervised:
            expected = _cycles(serial.evaluate(layouts))
            got = _cycles(supervised.evaluate(layouts))
        assert got == expected
        assert supervised.stats.degraded is True
        assert supervised.stats.pool_rebuilds >= 1

    def test_cache_survives_pool_rebuild(self):
        from repro.search import SimCache

        layouts = _keyword_layout_pool(count=5)
        compiled = load_benchmark("Keyword")
        profile = small_profile("Keyword")
        cache = SimCache()
        with SupervisedEvaluator(
            compiled, profile, workers=2, cache=cache,
            policy=FAST_POLICY, chaos=crash_plan(1),
        ) as supervised:
            first = supervised.evaluate(layouts)
            assert supervised.stats.pool_rebuilds >= 1
            # Everything the crash interrupted was retried into the
            # cache; the rebuilt pool is never consulted again.
            second = supervised.evaluate(layouts)
        assert first.simulations == len(layouts)
        assert second.simulations == 0
        assert second.cache_hits == len(layouts)
        assert _cycles(second) == _cycles(first)

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(timeout_mult=0).validate()
        with pytest.raises(ValueError):
            RetryPolicy(ewma_alpha=0.0).validate()
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=0).validate()


class TestHostChaosHarness:
    def test_plan_zero_is_the_control(self):
        assert HostChaosPlan.make(0, seed=5, horizon=100).is_empty()

    def test_plans_are_deterministic(self):
        first = HostChaosPlan.make(2, seed=9, horizon=50)
        second = HostChaosPlan.make(2, seed=9, horizon=50)
        assert first == second
        assert not first.is_empty()
        assert all(f.dispatch < 50 for f in first.faults)

    def test_sweep_invariants_hold(self):
        compiled = load_benchmark("Keyword")
        profile = small_profile("Keyword")
        options = SynthesisOptions(
            anneal=AnnealConfig(seed=7, **SMALL_ANNEAL),
            hints=get_spec("Keyword").hints,
        )
        # The control plan must stay activity-free, so its deadline floor
        # needs headroom over a cold pool spawn — don't use FAST_POLICY.
        report = run_host_chaos(
            compiled, profile, 4, options=options, runs=3, base_seed=3,
            policy=RetryPolicy(
                timeout_mult=8.0, timeout_floor=2.0, max_retries=3,
                backoff_base=0.01, backoff_cap=0.1,
            ),
        )
        assert report.ok, report.describe()
        fired = report.total("injected_crashes") + report.total(
            "injected_hangs"
        )
        assert fired >= 1
        assert report.total("worker_retries") >= fired
        assert "all invariants held" in report.describe()

    def test_diverged_result_is_flagged(self):
        # The checker itself must catch a lying run.
        from dataclasses import replace

        from repro.search.hostchaos import HostChaosRun, _check_run

        baseline = small_synthesis("Keyword", workers=1, supervise=False)
        forged = replace(baseline, estimated_cycles=baseline.estimated_cycles + 1)
        run = HostChaosRun(
            index=1, seed=1, plan=crash_plan(0), report=forged,
            supervision={"injected_crashes": 1, "worker_retries": 1,
                         "pool_rebuilds": 1},
        )
        _check_run(run, baseline)
        assert any("diverged" in v for v in run.violations)


class TestCheckpointFile:
    def _checkpoint(self):
        layout = _keyword_layout_pool(count=1)[0]
        return SearchCheckpoint(
            iteration=2,
            rng_state=random.Random(3).getstate(),
            best_layout=layout,
            best_cycles=1234,
            candidates=[layout],
            history=[2000, 1234],
            patience=1,
            evaluations=17,
            cache_hits=4,
            pruned_evaluations=1,
            initial_layouts=[layout],
            config_digest="abc123",
        )

    def test_round_trip(self, tmp_path):
        path = str(tmp_path / "search.ckpt")
        original = self._checkpoint()
        write_checkpoint(path, original)
        loaded = read_checkpoint(path)
        assert loaded.iteration == original.iteration
        assert loaded.rng_state == original.rng_state
        assert loaded.best_cycles == original.best_cycles
        assert loaded.best_layout.as_dict() == original.best_layout.as_dict()
        assert loaded.history == original.history
        assert loaded.evaluations == original.evaluations
        assert loaded.config_digest == original.config_digest
        # The atomic write leaves no temp file behind.
        assert not os.path.exists(path + ".tmp")

    def test_corruption_is_detected(self, tmp_path):
        path = str(tmp_path / "search.ckpt")
        write_checkpoint(path, self._checkpoint())
        blob = bytearray(open(path, "rb").read())
        blob[-1] ^= 0xFF
        open(path, "wb").write(bytes(blob))
        with pytest.raises(CheckpointError, match="digest mismatch"):
            read_checkpoint(path)

    def test_non_checkpoint_file_is_rejected(self, tmp_path):
        path = str(tmp_path / "junk")
        open(path, "wb").write(b"\x80\x04not a checkpoint")
        with pytest.raises(CheckpointError, match="not a search checkpoint"):
            read_checkpoint(path)

    def test_unknown_format_is_rejected(self, tmp_path):
        path = str(tmp_path / "old.ckpt")
        open(path, "wb").write(
            b'{"digest": "", "format": "repro.search/checkpoint-v0"}\n'
        )
        with pytest.raises(CheckpointError, match="checkpoint-v0"):
            read_checkpoint(path)

    def test_newer_version_refused_naming_both_versions(self, tmp_path):
        # A structurally valid record from a future release: correct
        # digest, correct framing, just a format this version doesn't
        # speak. The refusal must be the typed cross-version error that
        # names both versions — not a digest or unpickling failure.
        from repro.search.storage import write_pickle_record

        path = str(tmp_path / "future.ckpt")
        write_pickle_record(
            path, "repro.search/checkpoint-v999", {"from": "the future"}
        )
        with pytest.raises(CheckpointError) as excinfo:
            read_checkpoint(path)
        message = str(excinfo.value)
        assert "repro.search/checkpoint-v999" in message
        assert "repro.search/checkpoint-v2" in message
        assert "digest" not in message
        assert "pickle" not in message

    def test_missing_file_is_a_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(str(tmp_path / "absent.ckpt"))


def _small_options(name, **kw):
    return SynthesisOptions(
        anneal=kw.pop("anneal", AnnealConfig(seed=7, **SMALL_ANNEAL)),
        hints=get_spec(name).hints,
        **kw,
    )


class TestResume:
    @pytest.mark.parametrize("name", benchmark_names())
    def test_resumed_run_is_bit_identical_on_every_benchmark(
        self, name, tmp_path
    ):
        from dataclasses import replace

        compiled = load_benchmark(name)
        profile = small_profile(name)
        full = AnnealConfig(seed=7, **SMALL_ANNEAL)
        uninterrupted = synthesize_layout(
            compiled, profile, 4, options=_small_options(name, anneal=full)
        )
        path = str(tmp_path / "search.ckpt")
        # "Interrupt" after one iteration (max_iterations is a pure stop
        # condition, excluded from the compatibility digest)...
        partial = synthesize_layout(
            compiled, profile, 4,
            options=_small_options(
                name, anneal=replace(full, max_iterations=1),
                checkpoint_path=path,
            ),
        )
        assert partial.iterations == 1
        assert os.path.exists(path)
        # ...then resume under the full schedule.
        resumed = synthesize_layout(
            compiled, profile, 4,
            options=_small_options(name, anneal=full, resume=path),
        )
        assert report_fingerprint(resumed) == report_fingerprint(uninterrupted)

    def test_resume_restores_cache_counters(self, tmp_path):
        from dataclasses import replace

        compiled = load_benchmark("Keyword")
        profile = small_profile("Keyword")
        full = AnnealConfig(seed=7, **SMALL_ANNEAL)
        uninterrupted = synthesize_layout(
            compiled, profile, 4, options=_small_options("Keyword", anneal=full)
        )
        path = str(tmp_path / "search.ckpt")
        synthesize_layout(
            compiled, profile, 4,
            options=_small_options(
                "Keyword", anneal=replace(full, max_iterations=1),
                checkpoint_path=path,
            ),
        )
        resumed = synthesize_layout(
            compiled, profile, 4,
            options=_small_options("Keyword", anneal=full, resume=path),
        )
        # The resumed run starts with a fresh registry but a warm cache;
        # restore replays the counter deltas so telemetry matches too.
        base_metrics = uninterrupted.search_metrics
        resumed_metrics = resumed.search_metrics
        assert resumed_metrics["sim_cache"] == base_metrics["sim_cache"]
        for counter in ("sim_cache_hits", "sim_cache_misses"):
            assert resumed_metrics.get(counter) == base_metrics.get(counter)

    def test_resume_under_changed_schedule_is_refused(self, tmp_path):
        from dataclasses import replace

        compiled = load_benchmark("Keyword")
        profile = small_profile("Keyword")
        config = AnnealConfig(seed=7, **SMALL_ANNEAL)
        path = str(tmp_path / "search.ckpt")
        synthesize_layout(
            compiled, profile, 4,
            options=_small_options(
                "Keyword", anneal=replace(config, max_iterations=1),
                checkpoint_path=path,
            ),
        )
        with pytest.raises(CheckpointError, match="different"):
            synthesize_layout(
                compiled, profile, 4,
                options=_small_options(
                    "Keyword", anneal=replace(config, seed=8), resume=path
                ),
            )

    def test_interrupt_mid_iteration_saves_the_last_boundary(self, tmp_path):
        """A KeyboardInterrupt inside iteration N checkpoints the boundary
        after iteration N-1, and resuming replays N bit-identically."""

        class InterruptOnCall:
            def __init__(self, inner, after):
                self.inner = inner
                self.remaining = after

            def evaluate(self, *args, **kwargs):
                if self.remaining == 0:
                    raise KeyboardInterrupt
                self.remaining -= 1
                return self.inner.evaluate(*args, **kwargs)

            def close(self):
                self.inner.close()

        compiled = load_benchmark("Keyword")
        profile = small_profile("Keyword")
        config = AnnealConfig(seed=7, **SMALL_ANNEAL)
        hints = get_spec("Keyword").hints
        uninterrupted = directed_simulated_annealing(
            compiled, profile, 4, config=config, hints=hints
        )
        path = str(tmp_path / "search.ckpt")
        dsa = DirectedSimulatedAnnealing(
            compiled, profile, 4, config=config, hints=hints,
            checkpoint_path=path,
        )
        dsa.evaluator = InterruptOnCall(dsa.evaluator, after=2)
        with pytest.raises(KeyboardInterrupt):
            with dsa:
                dsa.run()
        saved = read_checkpoint(path)
        assert saved.iteration == 2
        resumed = directed_simulated_annealing(
            compiled, profile, 4, config=config, hints=hints, resume=path
        )
        assert resumed.best_cycles == uninterrupted.best_cycles
        assert resumed.best_layout.as_dict() == (
            uninterrupted.best_layout.as_dict()
        )
        assert resumed.history == uninterrupted.history
        assert resumed.evaluations == uninterrupted.evaluations
        assert resumed.cache_hits == uninterrupted.cache_hits

    def test_periodic_checkpoint_accounting_is_resume_invariant(
        self, tmp_path
    ):
        """checkpoints_written and the CheckpointWritten events of a
        resumed run match an uninterrupted checkpointed run exactly."""
        from dataclasses import replace

        compiled = load_benchmark("Keyword")
        profile = small_profile("Keyword")
        config = AnnealConfig(seed=7, **SMALL_ANNEAL)
        hints = get_spec("Keyword").hints
        base_path = str(tmp_path / "base.ckpt")
        baseline = directed_simulated_annealing(
            compiled, profile, 4, config=config, hints=hints,
            checkpoint_path=base_path,
        )
        part_path = str(tmp_path / "part.ckpt")
        directed_simulated_annealing(
            compiled, profile, 4,
            config=replace(config, max_iterations=1), hints=hints,
            checkpoint_path=part_path,
        )
        resumed = directed_simulated_annealing(
            compiled, profile, 4, config=config, hints=hints,
            checkpoint_path=part_path, resume=part_path,
        )
        assert resumed.checkpoints_written == baseline.checkpoints_written
        base_events = [
            event.to_json()
            for event in baseline.host_events
            if isinstance(event, CheckpointWritten)
        ]
        resumed_events = [
            event.to_json()
            for event in resumed.host_events
            if isinstance(event, CheckpointWritten)
        ]
        assert resumed_events == base_events
