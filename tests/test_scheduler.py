"""Per-core scheduler and lock manager tests (paper §4.7)."""

from repro.runtime.objects import BObject, Heap, TagInstance
from repro.runtime.scheduler import CoreScheduler, LockManager


def make_obj(heap, class_name, flags=(), obj_tags=()):
    obj = heap.new_object(class_name, 0)
    for flag in flags:
        obj.set_flag(flag, True)
    for tag in obj_tags:
        obj.bind_tag(tag)
    return obj


class TestLockManager:
    def test_lock_unlock(self):
        heap = Heap()
        locks = LockManager()
        a = make_obj(heap, "X")
        assert locks.try_lock_all([a], core=0)
        assert locks.is_locked(a)
        assert not locks.try_lock_all([a], core=1)
        locks.unlock_all([a], core=0)
        assert locks.try_lock_all([a], core=1)

    def test_all_or_nothing(self):
        heap = Heap()
        locks = LockManager()
        a, b = make_obj(heap, "X"), make_obj(heap, "X")
        assert locks.try_lock_all([b], core=1)
        assert not locks.try_lock_all([a, b], core=0)
        # a must not have been left locked by the failed attempt.
        assert not locks.is_locked(a)

    def test_reentrant_for_same_core(self):
        heap = Heap()
        locks = LockManager()
        a = make_obj(heap, "X")
        assert locks.try_lock_all([a], core=2)
        assert locks.try_lock_all([a], core=2)

    def test_merged_groups_share_lock(self):
        heap = Heap()
        locks = LockManager()
        a, b = make_obj(heap, "X"), make_obj(heap, "X")
        locks.merge([a.obj_id, b.obj_id])
        assert locks.try_lock_all([a], core=0)
        assert not locks.try_lock_all([b], core=1)
        locks.unlock_all([a], core=0)
        assert locks.try_lock_all([b], core=1)

    def test_merge_preserves_held_lock(self):
        heap = Heap()
        locks = LockManager()
        a, b = make_obj(heap, "X"), make_obj(heap, "X")
        assert locks.try_lock_all([a], core=0)
        locks.merge([a.obj_id, b.obj_id])
        assert not locks.try_lock_all([b], core=1)

    def test_merge_idempotent(self):
        heap = Heap()
        locks = LockManager()
        a, b = make_obj(heap, "X"), make_obj(heap, "X")
        locks.merge([a.obj_id, b.obj_id])
        locks.merge([b.obj_id, a.obj_id])
        assert locks.try_lock_all([a, b], core=0)


class TestInvocationFormation:
    def test_single_param_task(self, keyword_compiled):
        heap = Heap()
        scheduler = CoreScheduler(0, keyword_compiled.info, ["processText"])
        text = make_obj(heap, "Text", flags=["process"])
        formed = scheduler.enqueue_object("processText", 0, text, now=0)
        assert len(formed) == 1
        assert formed[0].objects == [text]
        assert scheduler.has_work()

    def test_duplicate_enqueue_ignored(self, keyword_compiled):
        heap = Heap()
        scheduler = CoreScheduler(0, keyword_compiled.info, ["mergeIntermediateResult"])
        text = make_obj(heap, "Text", flags=["submit"])
        scheduler.enqueue_object("mergeIntermediateResult", 1, text, now=0)
        formed = scheduler.enqueue_object("mergeIntermediateResult", 1, text, now=0)
        assert formed == []

    def test_multi_param_waits_for_all(self, keyword_compiled):
        heap = Heap()
        scheduler = CoreScheduler(0, keyword_compiled.info, ["mergeIntermediateResult"])
        text = make_obj(heap, "Text", flags=["submit"])
        assert scheduler.enqueue_object("mergeIntermediateResult", 1, text, 0) == []
        results = make_obj(heap, "Results")
        formed = scheduler.enqueue_object("mergeIntermediateResult", 0, results, 0)
        assert len(formed) == 1
        assert formed[0].objects == [results, text]

    def test_fifo_pairing(self, keyword_compiled):
        heap = Heap()
        scheduler = CoreScheduler(0, keyword_compiled.info, ["mergeIntermediateResult"])
        first = make_obj(heap, "Text", flags=["submit"])
        second = make_obj(heap, "Text", flags=["submit"])
        scheduler.enqueue_object("mergeIntermediateResult", 1, first, 0)
        scheduler.enqueue_object("mergeIntermediateResult", 1, second, 0)
        results = make_obj(heap, "Results")
        formed = scheduler.enqueue_object("mergeIntermediateResult", 0, results, 0)
        assert formed[0].objects[1] is first

    def test_tag_compatible_pairing(self, tagged_compiled):
        heap = Heap()
        scheduler = CoreScheduler(0, tagged_compiled.info, ["finishsave"])
        tag1 = heap.new_tag("saveop")
        tag2 = heap.new_tag("saveop")
        drawing1 = make_obj(heap, "Drawing", flags=["saving"], obj_tags=[tag1])
        drawing2 = make_obj(heap, "Drawing", flags=["saving"], obj_tags=[tag2])
        image2 = make_obj(heap, "Image", flags=["compressed"], obj_tags=[tag2])
        scheduler.enqueue_object("finishsave", 0, drawing1, 0)
        scheduler.enqueue_object("finishsave", 0, drawing2, 0)
        # image2 must pair with drawing2 (same tag), skipping drawing1.
        formed = scheduler.enqueue_object("finishsave", 1, image2, 0)
        assert len(formed) == 1
        assert formed[0].objects == [drawing2, image2]

    def test_tag_mismatch_blocks_invocation(self, tagged_compiled):
        heap = Heap()
        scheduler = CoreScheduler(0, tagged_compiled.info, ["finishsave"])
        tag1 = heap.new_tag("saveop")
        tag2 = heap.new_tag("saveop")
        drawing = make_obj(heap, "Drawing", flags=["saving"], obj_tags=[tag1])
        image = make_obj(heap, "Image", flags=["compressed"], obj_tags=[tag2])
        scheduler.enqueue_object("finishsave", 0, drawing, 0)
        formed = scheduler.enqueue_object("finishsave", 1, image, 0)
        assert formed == []

    def test_untagged_object_never_satisfies_tag_guard(self, tagged_compiled):
        heap = Heap()
        scheduler = CoreScheduler(0, tagged_compiled.info, ["finishsave"])
        drawing = make_obj(heap, "Drawing", flags=["saving"])
        image = make_obj(heap, "Image", flags=["compressed"])
        scheduler.enqueue_object("finishsave", 0, drawing, 0)
        assert scheduler.enqueue_object("finishsave", 1, image, 0) == []


class TestDispatch:
    def test_guard_recheck_drops_stale(self, keyword_compiled):
        heap = Heap()
        locks = LockManager()
        scheduler = CoreScheduler(0, keyword_compiled.info, ["processText"])
        text = make_obj(heap, "Text", flags=["process"])
        scheduler.enqueue_object("processText", 0, text, 0)
        text.set_flag("process", False)  # transitioned elsewhere
        invocation, stale = scheduler.pick_invocation(locks)
        assert invocation is None
        assert stale == [text]

    def test_lock_blocked_invocation_stays_queued(self, keyword_compiled):
        heap = Heap()
        locks = LockManager()
        scheduler = CoreScheduler(0, keyword_compiled.info, ["processText"])
        text = make_obj(heap, "Text", flags=["process"])
        scheduler.enqueue_object("processText", 0, text, 0)
        assert locks.try_lock_all([text], core=9)
        invocation, stale = scheduler.pick_invocation(locks)
        assert invocation is None and stale == []
        assert scheduler.has_work()
        locks.unlock_all([text], core=9)
        invocation, _ = scheduler.pick_invocation(locks)
        assert invocation is not None

    def test_dispatch_skips_blocked_runs_next(self, keyword_compiled):
        heap = Heap()
        locks = LockManager()
        scheduler = CoreScheduler(0, keyword_compiled.info, ["processText"])
        blocked = make_obj(heap, "Text", flags=["process"])
        free = make_obj(heap, "Text", flags=["process"])
        scheduler.enqueue_object("processText", 0, blocked, 0)
        scheduler.enqueue_object("processText", 0, free, 0)
        locks.try_lock_all([blocked], core=5)
        invocation, _ = scheduler.pick_invocation(locks)
        assert invocation.objects == [free]
        assert scheduler.has_work()  # blocked one still queued
