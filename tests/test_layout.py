"""Layout, mesh topology, and router tests."""

import pytest

from repro.analysis.astate import AState
from repro.lang.errors import ScheduleError
from repro.lang.parser import parse_program
from repro.schedule.layout import (
    Layout,
    Router,
    common_tag_binding,
    mesh_coords,
    mesh_hops,
)


class TestMesh:
    def test_coords(self):
        assert mesh_coords(0, 8) == (0, 0)
        assert mesh_coords(7, 8) == (7, 0)
        assert mesh_coords(8, 8) == (0, 1)
        assert mesh_coords(63, 8) == (7, 7)

    def test_hops_manhattan(self):
        assert mesh_hops(0, 0, 8) == 0
        assert mesh_hops(0, 7, 8) == 7
        assert mesh_hops(0, 63, 8) == 14
        assert mesh_hops(9, 18, 8) == 2

    def test_hops_symmetric(self):
        for a, b in [(0, 5), (3, 60), (17, 42)]:
            assert mesh_hops(a, b, 8) == mesh_hops(b, a, 8)


class TestLayout:
    def test_make_sorts_and_dedups(self):
        layout = Layout.make(4, {"t": [2, 0, 2]})
        assert layout.cores_of("t") == (0, 2)

    def test_single_core(self):
        layout = Layout.single_core(["a", "b"])
        assert layout.num_cores == 1
        assert layout.tasks_on_core(0) == ["a", "b"]

    def test_cores_used(self):
        layout = Layout.make(8, {"a": [0, 3], "b": [3, 5]})
        assert layout.cores_used() == (0, 3, 5)

    def test_total_instances(self):
        layout = Layout.make(8, {"a": [0, 3], "b": [3]})
        assert layout.total_instances() == 3

    def test_default_mesh_width(self):
        assert Layout.make(62, {"a": [0]}).mesh_width == 8
        assert Layout.make(16, {"a": [0]}).mesh_width == 4
        assert Layout.make(1, {"a": [0]}).mesh_width == 1

    def test_canonical_key_core_renaming_invariant(self):
        a = Layout.make(8, {"x": [0, 1], "y": [2]})
        b = Layout.make(8, {"x": [5, 7], "y": [1]})
        assert a.canonical_key() == b.canonical_key()

    def test_canonical_key_distinguishes_colocations(self):
        a = Layout.make(8, {"x": [0], "y": [0]})
        b = Layout.make(8, {"x": [0], "y": [1]})
        assert a.canonical_key() != b.canonical_key()

    def test_describe_mentions_cores(self):
        text = Layout.make(4, {"a": [0, 1]}).describe()
        assert "core   0" in text


class TestValidation:
    def test_missing_task_rejected(self, keyword_compiled):
        layout = Layout.make(2, {"startup": [0]})
        with pytest.raises(ScheduleError):
            layout.validate(keyword_compiled.info)

    def test_unknown_task_rejected(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["ghost"] = [0]
        with pytest.raises(ScheduleError):
            Layout.make(2, mapping).validate(keyword_compiled.info)

    def test_core_out_of_range_rejected(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [5]
        with pytest.raises(ScheduleError):
            Layout.make(2, mapping).validate(keyword_compiled.info)

    def test_multi_param_task_cannot_replicate(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["mergeIntermediateResult"] = [0, 1]
        with pytest.raises(ScheduleError):
            Layout.make(2, mapping).validate(keyword_compiled.info)

    def test_tagged_multi_param_task_can_replicate(self, tagged_compiled):
        mapping = {t: [0] for t in tagged_compiled.info.tasks}
        mapping["finishsave"] = [0, 1]
        Layout.make(2, mapping).validate(tagged_compiled.info)

    def test_valid_layout_passes(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [0, 1, 2, 3]
        Layout.make(4, mapping).validate(keyword_compiled.info)


class TestCommonTagBinding:
    def test_no_tags(self):
        program = parse_program("task t(A a in f, B b in g) { }")
        assert common_tag_binding(program.tasks[0]) is None

    def test_shared_binding(self):
        program = parse_program(
            "task t(A a in f with grp g, B b in h with grp g) { }"
        )
        assert common_tag_binding(program.tasks[0]) == "g"

    def test_disjoint_bindings(self):
        program = parse_program(
            "task t(A a in f with grp g1, B b in h with grp g2) { }"
        )
        assert common_tag_binding(program.tasks[0]) is None

    def test_no_params(self):
        program = parse_program("task t() { }")
        assert common_tag_binding(program.tasks[0]) is None


class TestRouter:
    def test_consumers_match_guards(self, keyword_compiled):
        layout = Layout.single_core(keyword_compiled.info.tasks)
        router = Router(keyword_compiled.info, layout)
        consumers = router.consumers("Text", AState.make(["process"]))
        assert consumers == [("processText", 0)]
        consumers = router.consumers("Text", AState.make(["submit"]))
        assert consumers == [("mergeIntermediateResult", 1)]
        assert router.consumers("Text", AState.make([])) == []

    def test_consumers_cached(self, keyword_compiled):
        layout = Layout.single_core(keyword_compiled.info.tasks)
        router = Router(keyword_compiled.info, layout)
        first = router.consumers("Text", AState.make(["process"]))
        second = router.consumers("Text", AState.make(["process"]))
        assert first is second

    def test_pick_core_single_instance(self, keyword_compiled):
        layout = Layout.single_core(keyword_compiled.info.tasks)
        router = Router(keyword_compiled.info, layout)
        assert router.pick_core("processText", {}, sender_core=0) == 0

    def test_pick_core_round_robin_rotates(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [0, 1, 2, 3]
        layout = Layout.make(4, mapping)
        router = Router(keyword_compiled.info, layout)
        rr = {}
        picks = [router.pick_core("processText", rr, sender_core=0) for _ in range(8)]
        assert picks == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_pick_core_staggered_by_sender(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [0, 1, 2, 3]
        layout = Layout.make(4, mapping)
        router = Router(keyword_compiled.info, layout)
        rr = {}
        # A sender hosting an instance starts its rotation at itself
        # (data locality); distinct senders fan out to distinct cores.
        assert router.pick_core("processText", rr, sender_core=2) == 2
        assert router.pick_core("processText", rr, sender_core=1) == 1

    def test_pick_core_tag_hash_stable(self, keyword_compiled):
        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [0, 1, 2]
        layout = Layout.make(4, mapping)
        router = Router(keyword_compiled.info, layout)
        picks = {router.pick_core("processText", {}, 0, tag_hash=7) for _ in range(5)}
        assert picks == {7 % 3}


class TestTopologies:
    def test_torus_wraps(self):
        from repro.schedule.layout import torus_hops

        # 4x4 torus: opposite corners are 2 hops, not 6.
        assert torus_hops(0, 15, 4, 16) == 2
        assert torus_hops(0, 3, 4, 16) == 1  # row wrap
        assert torus_hops(0, 12, 4, 16) == 1  # column wrap
        assert torus_hops(5, 5, 4, 16) == 0

    def test_ring_distance(self):
        from repro.schedule.layout import ring_hops

        assert ring_hops(0, 15, 16) == 1
        assert ring_hops(0, 8, 16) == 8
        assert ring_hops(3, 3, 16) == 0

    def test_layout_hops_dispatch(self):
        mesh = Layout.make(16, {"t": [0]}, mesh_width=4)
        torus = Layout.make(16, {"t": [0]}, mesh_width=4, topology="torus")
        ring = Layout.make(16, {"t": [0]}, topology="ring")
        assert mesh.hops(0, 15) == 6
        assert torus.hops(0, 15) == 2
        assert ring.hops(0, 15) == 1

    def test_unknown_topology_rejected(self):
        import pytest as _pytest
        from repro.lang.errors import ScheduleError

        with _pytest.raises(ScheduleError):
            Layout.make(4, {"t": [0]}, topology="hypercube")

    def test_torus_machine_faster_than_mesh(self, keyword_compiled):
        from repro.core import run_layout

        mapping = {t: [0] for t in keyword_compiled.info.tasks}
        mapping["processText"] = [15]
        mesh = Layout.make(16, mapping, mesh_width=4)
        torus = Layout.make(16, mapping, mesh_width=4, topology="torus")
        mesh_run = run_layout(keyword_compiled, mesh, ["1"])
        torus_run = run_layout(keyword_compiled, torus, ["1"])
        assert torus_run.stdout == mesh_run.stdout
        assert torus_run.total_cycles < mesh_run.total_cycles
