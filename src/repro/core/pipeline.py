"""The full synthesis pipeline: profile → CSTG → rules → DSA → layout.

This mirrors the staged strategy of paper §4: dependence and disjointness
analysis happen at :func:`repro.core.api.compile_program` time; this module
drives candidate generation, simulation-based evaluation, and optimization.
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..runtime.profiler import ProfileData
from ..schedule.anneal import AnnealConfig, AnnealResult, DirectedSimulatedAnnealing
from ..schedule.coregroup import GroupGraph, build_group_graph
from ..schedule.layout import Layout
from ..schedule.rules import ReplicaSuggestion, suggest_replicas
from .api import CompiledProgram, annotated_cstg


@dataclass
class SynthesisReport:
    """Everything the synthesis run learned, for logs and experiments."""

    layout: Layout
    estimated_cycles: int
    evaluations: int
    iterations: int
    wall_seconds: float
    group_graph: GroupGraph
    suggestions: Dict[int, ReplicaSuggestion]
    history: List[int] = field(default_factory=list)


def synthesize_layout(
    compiled: CompiledProgram,
    profile: ProfileData,
    num_cores: int,
    seed: int = 0,
    config: Optional[AnnealConfig] = None,
    hints: Optional[Dict[str, str]] = None,
    mesh_width: Optional[int] = None,
    core_speeds: Optional[Dict[int, float]] = None,
) -> SynthesisReport:
    """Synthesizes an optimized layout for ``num_cores`` cores.

    Runs candidate generation seeded by the transformation rules, then the
    directed-simulated-annealing search evaluated by the scheduling
    simulator. ``core_speeds`` enables the heterogeneous-cores extension:
    the search sees per-core speed factors and steers work accordingly.
    """
    started = _time.perf_counter()
    cstg = annotated_cstg(compiled, profile)
    graph = build_group_graph(compiled.info, cstg, profile)
    suggestions = suggest_replicas(compiled.info, graph, profile, num_cores)
    if config is None:
        config = AnnealConfig(seed=seed)
    else:
        config.seed = seed
    dsa = DirectedSimulatedAnnealing(
        compiled,
        profile,
        num_cores,
        config=config,
        hints=hints,
        group_graph=graph,
        mesh_width=mesh_width,
        core_speeds=core_speeds,
    )
    result: AnnealResult = dsa.run()
    wall = _time.perf_counter() - started
    return SynthesisReport(
        layout=result.best_layout,
        estimated_cycles=result.best_cycles,
        evaluations=result.evaluations,
        iterations=result.iterations,
        wall_seconds=wall,
        group_graph=graph,
        suggestions=suggestions,
        history=result.history,
    )
