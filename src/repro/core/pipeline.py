"""The full synthesis pipeline: profile → CSTG → rules → DSA → layout.

This mirrors the staged strategy of paper §4: dependence and disjointness
analysis happen at :func:`repro.core.api.compile_program` time; this module
drives candidate generation, simulation-based evaluation, and optimization.

Search behaviour is configured through :class:`repro.SynthesisOptions`:
``workers=N`` fans candidate simulations out across worker processes
(bit-identical to the serial search), ``sim_cache`` memoizes simulation
results by layout fingerprint, and the cache counters export through the
:mod:`repro.obs` metrics pipeline (``report.search_metrics``).
"""

from __future__ import annotations

import time as _time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..obs import prof
from ..runtime.profiler import ProfileData
from ..schedule.anneal import AnnealResult, DirectedSimulatedAnnealing
from ..schedule.coregroup import GroupGraph, build_group_graph
from ..schedule.layout import Layout
from ..schedule.rules import ReplicaSuggestion, suggest_replicas
from .api import CompiledProgram, annotated_cstg
from .options import SynthesisOptions, _UNSET, warn_deprecated_kwargs

_P_SYNTHESIZE = prof.intern_phase("pipeline.synthesize")
_P_CSTG = prof.intern_phase("synthesize.cstg")
_P_GROUP_GRAPH = prof.intern_phase("synthesize.group_graph")
_P_REPLICAS = prof.intern_phase("synthesize.replicas")
_P_ANNEAL = prof.intern_phase("synthesize.anneal")


@dataclass
class SynthesisReport:
    """Everything the synthesis run learned, for logs and experiments."""

    layout: Layout
    estimated_cycles: int
    #: real simulations performed (cache hits are free)
    evaluations: int
    iterations: int
    wall_seconds: float
    group_graph: GroupGraph
    suggestions: Dict[int, ReplicaSuggestion]
    history: List[int] = field(default_factory=list)
    #: evaluation requests answered by the simulation cache
    cache_hits: int = 0
    #: all evaluation requests: ``evaluations + cache_hits``
    requested_evaluations: int = 0
    #: simulations stopped early by the incumbent cutoff
    pruned_evaluations: int = 0
    #: search telemetry snapshot (``repro.obs/search-metrics-v1``)
    search_metrics: Dict[str, object] = field(default_factory=dict)


def _synthesize_dist(
    compiled: CompiledProgram,
    profile: ProfileData,
    num_cores: int,
    options: SynthesisOptions,
) -> SynthesisReport:
    """The distributed path: ``options.dist.restarts`` independent seeded
    annealing restarts, coordinated by :mod:`repro.search.dist` and
    merged in shard-id order. The report's deterministic fields are
    bit-identical to a single-host serial run of the same shard list."""
    import hashlib

    from ..obs.metrics import MetricsRegistry, build_search_metrics
    from ..schedule.rules import suggest_replicas
    from ..search.dist import (
        JobContext,
        make_restart_shards,
        run_dist_search,
    )

    dist = options.dist
    started = _time.perf_counter()
    with prof.phase(_P_CSTG):
        cstg = annotated_cstg(compiled, profile)
    with prof.phase(_P_GROUP_GRAPH):
        graph = build_group_graph(compiled.info, cstg, profile)
    with prof.phase(_P_REPLICAS):
        suggestions = suggest_replicas(compiled.info, graph, profile, num_cores)

    registry = options.metrics if options.metrics is not None else MetricsRegistry()
    context = JobContext(
        compiled=compiled,
        profile=profile,
        num_cores=num_cores,
        hints=options.hints,
        mesh_width=options.mesh_width,
        core_speeds=options.core_speeds,
        delta=options.delta_sim,
        source_digest=hashlib.sha256(
            compiled.source.encode("utf-8")
        ).hexdigest(),
    )
    shards = make_restart_shards(
        options.effective_anneal(), dist.restarts, base_seed=dist.base_seed
    )
    result = run_dist_search(
        context,
        shards,
        workers=dist.workers,
        lease=dist.lease,
        registry=registry,
        checkpoint_path=dist.checkpoint_path,
        resume=dist.resume,
        degrade_after=dist.degrade_after,
    )
    wall = _time.perf_counter() - started
    return SynthesisReport(
        layout=result.best_layout,
        estimated_cycles=result.best_cycles,
        evaluations=result.evaluations,
        iterations=sum(shard.iterations for shard in result.shards),
        wall_seconds=wall,
        group_graph=graph,
        suggestions=suggestions,
        history=list(result.trajectory),
        cache_hits=result.cache_hits,
        requested_evaluations=result.requested_evaluations,
        pruned_evaluations=result.pruned_evaluations,
        search_metrics=build_search_metrics(
            workers=dist.workers,
            wall_seconds=wall,
            evaluations=result.evaluations,
            cache_hits=result.cache_hits,
            pruned_evaluations=result.pruned_evaluations,
            cache_stats=None,
            registry=registry,
            dist=result.stats,
        ),
    )


def synthesize_layout(
    compiled: CompiledProgram,
    profile: ProfileData,
    num_cores: int,
    options: Optional[SynthesisOptions] = None,
    seed=_UNSET,
    config=_UNSET,
    hints=_UNSET,
    mesh_width=_UNSET,
    core_speeds=_UNSET,
) -> SynthesisReport:
    """Synthesizes an optimized layout for ``num_cores`` cores.

    Runs candidate generation seeded by the transformation rules, then the
    directed-simulated-annealing search evaluated by the scheduling
    simulator. All knobs live on :class:`SynthesisOptions`;
    ``options.core_speeds`` enables the heterogeneous-cores extension and
    ``options.workers``/``options.sim_cache`` the parallel, memoized
    search. The ``seed=``/``config=``/``hints=``/``mesh_width=``/
    ``core_speeds=`` keywords are the pre-options spelling, kept as a
    deprecated shim.
    """
    legacy = {
        name: value
        for name, value in (
            ("seed", seed),
            ("config", config),
            ("hints", hints),
            ("mesh_width", mesh_width),
            ("core_speeds", core_speeds),
        )
        if value is not _UNSET
    }
    if legacy:
        warn_deprecated_kwargs("synthesize_layout", "SynthesisOptions", legacy)
        if options is not None:
            raise TypeError(
                "synthesize_layout() takes either options= or the "
                "deprecated seed=/config=/hints=/mesh_width=/core_speeds= "
                "keywords, not both"
            )
        options = SynthesisOptions(
            # The old signature always forced config.seed = seed (default 0).
            seed=legacy.get("seed", 0),
            anneal=legacy.get("config"),
            hints=legacy.get("hints"),
            mesh_width=legacy.get("mesh_width"),
            core_speeds=legacy.get("core_speeds"),
        )
    options = options or SynthesisOptions()

    with prof.phase(_P_SYNTHESIZE):
        return _synthesize(compiled, profile, num_cores, options)


def _synthesize(
    compiled: CompiledProgram,
    profile: ProfileData,
    num_cores: int,
    options: SynthesisOptions,
) -> SynthesisReport:
    if options.dist is not None:
        return _synthesize_dist(compiled, profile, num_cores, options)
    started = _time.perf_counter()
    with prof.phase(_P_CSTG):
        cstg = annotated_cstg(compiled, profile)
    with prof.phase(_P_GROUP_GRAPH):
        graph = build_group_graph(compiled.info, cstg, profile)
    with prof.phase(_P_REPLICAS):
        suggestions = suggest_replicas(compiled.info, graph, profile, num_cores)

    from ..obs.metrics import MetricsRegistry, build_search_metrics
    from ..search import SimCache

    registry = options.metrics if options.metrics is not None else MetricsRegistry()
    cache = options.cache
    if cache is None and options.sim_cache:
        cache = SimCache(max_entries=options.cache_entries, registry=registry)
    elif cache is not None and cache.registry is None:
        cache.registry = registry

    # An explicit chaos plan forces supervision on: injected crashes
    # without a supervisor would just kill the synthesis.
    supervise = options.supervise or options.host_chaos is not None

    with DirectedSimulatedAnnealing(
        compiled,
        profile,
        num_cores,
        config=options.effective_anneal(),
        hints=options.hints,
        group_graph=graph,
        mesh_width=options.mesh_width,
        core_speeds=options.core_speeds,
        cache=cache,
        workers=options.workers,
        use_cache=options.sim_cache,
        supervise=supervise,
        retry_policy=options.effective_retry_policy(),
        host_chaos=options.host_chaos,
        checkpoint_path=options.checkpoint_path,
        resume=options.resume,
        cancel_check=options.cancel_check,
        delta=options.delta_sim,
    ) as dsa:
        with prof.phase(_P_ANNEAL):
            result: AnnealResult = dsa.run()
    wall = _time.perf_counter() - started
    supervision = result.supervision
    if supervision is not None:
        for counter, name in (
            ("worker_retries", "search_worker_retries"),
            ("pool_rebuilds", "search_pool_rebuilds"),
            ("serial_fallbacks", "search_serial_fallbacks"),
        ):
            amount = int(supervision.get(counter, 0))
            if amount:
                registry.counter(name).inc(amount)
    if result.checkpoints_written:
        registry.counter("search_checkpoints_written").inc(
            result.checkpoints_written
        )
    return SynthesisReport(
        layout=result.best_layout,
        estimated_cycles=result.best_cycles,
        evaluations=result.evaluations,
        iterations=result.iterations,
        wall_seconds=wall,
        group_graph=graph,
        suggestions=suggestions,
        history=result.history,
        cache_hits=result.cache_hits,
        requested_evaluations=result.requested_evaluations,
        pruned_evaluations=result.pruned_evaluations,
        search_metrics=build_search_metrics(
            workers=options.workers,
            wall_seconds=wall,
            evaluations=result.evaluations,
            cache_hits=result.cache_hits,
            pruned_evaluations=result.pruned_evaluations,
            cache_stats=result.cache_stats,
            registry=registry,
            supervision=supervision,
            checkpoints_written=result.checkpoints_written,
            events=result.host_events,
        ),
    )
