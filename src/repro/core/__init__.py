"""Public API of the Bamboo reproduction."""

from .api import (
    CompiledProgram,
    SequentialResult,
    annotated_cstg,
    compile_program,
    profile_program,
    run_layout,
    run_sequential,
    single_core_layout,
)
from .options import DistOptions, RunOptions, SynthesisOptions
from .pipeline import SynthesisReport, synthesize_layout

__all__ = [
    "CompiledProgram",
    "DistOptions",
    "RunOptions",
    "SequentialResult",
    "SynthesisOptions",
    "SynthesisReport",
    "annotated_cstg",
    "compile_program",
    "profile_program",
    "run_layout",
    "run_sequential",
    "single_core_layout",
    "synthesize_layout",
]
