"""Field re-optimization — the paper's §7 extension.

    "It is straightforward to modify the basic approach to support
    executables that periodically re-optimize themselves for the workloads
    they encounter in the field or for new processor layouts. The basic
    idea is to separate layout information from code in the application
    executable. An executable would periodically profile itself and report
    the results to a system library that implements our optimization
    strategy. The library would then rerun the optimizations, generate a
    new layout, and update the executable's layout information."

:class:`AdaptiveExecutable` realizes exactly that loop on the simulated
machine: the layout is kept separate from the compiled code; every
``profile_every`` runs the executable re-profiles itself (profile collection
piggybacks on a production run), reruns the synthesis pipeline against the
*observed* workload, and swaps in the new layout if the scheduling simulator
predicts an improvement.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from ..resilience.config import ResilienceConfig
from ..runtime.machine import MachineConfig, MachineResult
from ..runtime.profiler import ProfileData
from ..schedule.anneal import AnnealConfig
from ..schedule.layout import Layout
from ..schedule.simulator import simulate
from .api import CompiledProgram, run_layout, single_core_layout
from .options import RunOptions, SynthesisOptions
from .pipeline import synthesize_layout


@dataclass
class AdaptationRecord:
    """One re-optimization decision."""

    run_index: int
    workload: List[str]
    old_layout: Layout
    new_layout: Layout
    old_estimate: int
    new_estimate: int
    adopted: bool

    @property
    def predicted_gain(self) -> float:
        if self.old_estimate == 0:
            return 0.0
        return 1.0 - self.new_estimate / self.old_estimate


class AdaptiveExecutable:
    """An executable whose layout is data, periodically re-synthesized.

    Parameters
    ----------
    compiled:
        The program (code is never regenerated — only the layout changes).
    num_cores:
        The processor to target. Changing this between runs models the
        paper's "new processor layouts" case.
    profile_every:
        Re-profile and re-optimize after this many production runs.
    min_gain:
        Adopt a new layout only if the scheduling simulator predicts at
        least this relative improvement on the observed workload.
    resilience:
        Run production executions with detection-driven resilience
        (:mod:`repro.resilience`). Watchdog deadlines that need cost
        estimates draw them from the executable's own field profile, and a
        run that permanently loses cores auto-degrades the layout for the
        next run — the §7 loop with core failure as the layout change.
    """

    def __init__(
        self,
        compiled: CompiledProgram,
        num_cores: int,
        profile_every: int = 3,
        min_gain: float = 0.02,
        seed: int = 0,
        config: Optional[AnnealConfig] = None,
        hints: Optional[Dict[str, str]] = None,
        resilience: Optional[ResilienceConfig] = None,
        workers: int = 1,
    ):
        self.compiled = compiled
        self.num_cores = num_cores
        self.profile_every = max(1, profile_every)
        self.min_gain = min_gain
        self.seed = seed
        self.config = config
        self.hints = hints
        self.resilience = resilience
        #: worker processes for each in-field re-optimization's search
        self.workers = workers
        #: current layout information — starts conservative (single core),
        #: like a freshly shipped executable with no field data yet
        self.layout: Layout = single_core_layout(compiled)
        self.history: List[AdaptationRecord] = []
        self._runs = 0
        self._last_profile: Optional[ProfileData] = None

    # -- the field loop --------------------------------------------------------

    def run(self, args: Sequence[str], fault_plan=None) -> MachineResult:
        """One production run; periodically triggers re-optimization.

        Profile collection piggybacks on the production run itself (no
        separate profiling execution), mirroring "an executable would
        periodically profile itself". ``fault_plan`` injects faults into
        this run; with a resilience config installed the failures are
        detected, survived, and folded into the layout for the next run."""
        self._runs += 1
        collect = self._runs % self.profile_every == 0 or self._runs == 1
        machine_config = None
        if self.resilience is not None:
            resilience = self.resilience
            if resilience.profile is None and self._last_profile is not None:
                # Watchdog deadlines come from the executable's own field
                # profile — layout and policy both derived from observation.
                resilience = replace(resilience, profile=self._last_profile)
            machine_config = MachineConfig(
                fault_plan=fault_plan, resilience=resilience
            )
        elif fault_plan is not None:
            machine_config = MachineConfig(fault_plan=fault_plan)
        result = run_layout(
            self.compiled,
            self.layout,
            args,
            options=RunOptions(machine=machine_config, collect_profile=collect),
        )
        if collect and result.profile is not None:
            self._last_profile = result.profile
            self._reoptimize(list(args))
        if self.resilience is not None and result.core_death_cycles:
            # Cores still dead at end of run stay dead for the next one;
            # shrink the layout now and re-optimize on the reduced machine.
            self.degrade(sorted(result.core_death_cycles))
        return result

    def retarget(self, num_cores: int) -> None:
        """Moves the executable to a different processor; the next profiled
        run re-optimizes for it. The current layout is clamped onto the new
        machine so the executable keeps running meanwhile."""
        self.num_cores = num_cores
        mapping = {
            task: [core % num_cores for core in cores]
            for task, cores in self.layout.as_dict().items()
        }
        self.layout = Layout.make(num_cores, mapping)

    def degrade(self, dead_cores: Sequence[int]) -> None:
        """Adapts to a partially failed processor (e.g. after a machine run
        reported crashes in ``result.recovery.dead_cores``).

        The current layout is clamped onto the survivors with the same
        layout edit the fault-recovery engine applies mid-run
        (:func:`repro.schedule.mapping.with_core_failed`), so the
        executable keeps running immediately; the next run re-profiles and
        re-optimizes for the reduced machine — the paper's §7 loop, with
        core failure as the "new processor layout"."""
        from ..schedule.mapping import with_core_failed

        layout = self.layout
        for core in dead_cores:
            if core in layout.cores_used():
                layout = with_core_failed(layout, core)
        self.layout = layout
        # Schedule a profiled (and therefore re-optimizing) next run.
        self._runs = 0

    # -- internals ----------------------------------------------------------------

    def _reoptimize(self, workload: List[str]) -> None:
        assert self._last_profile is not None
        profile = self._last_profile
        report = synthesize_layout(
            self.compiled,
            profile,
            self.num_cores,
            # Each re-optimization starts a fresh simulation cache: the
            # field profile changed, so memoized scores would be stale.
            options=SynthesisOptions(
                seed=self.seed + len(self.history),
                anneal=self.config,
                hints=self.hints,
                workers=self.workers,
            ),
        )
        old_estimate = simulate(
            self.compiled, self.layout, profile, hints=self.hints
        ).total_cycles
        new_estimate = report.estimated_cycles
        adopted = new_estimate < old_estimate * (1.0 - self.min_gain)
        record = AdaptationRecord(
            run_index=self._runs,
            workload=workload,
            old_layout=self.layout,
            new_layout=report.layout,
            old_estimate=old_estimate,
            new_estimate=new_estimate,
            adopted=adopted,
        )
        self.history.append(record)
        if adopted:
            self.layout = report.layout

    @property
    def adaptations(self) -> List[AdaptationRecord]:
        return [r for r in self.history if r.adopted]
