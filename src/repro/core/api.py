"""Public API of the Bamboo reproduction.

Typical use::

    from repro import (
        RunOptions, SynthesisOptions,
        compile_program, profile_program, run_layout, synthesize_layout,
    )

    compiled = compile_program(source)
    profile = profile_program(compiled, args=["8"])          # 1-core bootstrap
    report = synthesize_layout(
        compiled, profile, num_cores=62,
        options=SynthesisOptions(workers=4),                 # parallel search
    )
    result = run_layout(compiled, report.layout, args=["8"]) # many-core run

Run-time behaviour (fault injection, resilience, observability, sinks) is
configured through :class:`RunOptions`; search-time behaviour (anneal
schedule, hints, workers, simulation cache) through
:class:`SynthesisOptions`. The pre-options keyword arguments still work
but raise ``DeprecationWarning``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..analysis.astg import ASTG, build_all_astgs
from ..analysis.cstg import CSTG
from ..analysis.disjoint import DisjointnessResult, analyze_disjointness
from ..analysis.locks import LockPlan, build_lock_plan
from ..ir import instructions as ir
from ..ir.builder import lower_program
from ..ir.verify import verify_program
from ..lang import ast
from ..lang.errors import SemanticError
from ..lang.lexer import tokenize
from ..lang.parser import Parser
from ..obs import prof
from ..runtime.interp import Interpreter
from ..runtime.machine import MachineConfig, MachineResult, ManyCoreMachine
from ..runtime.objects import BArray, Heap
from ..runtime.profiler import ProfileData
from ..schedule.layout import Layout
from ..sema.symbols import ProgramInfo
from ..sema.typecheck import analyze
from .options import RunOptions, _UNSET, warn_deprecated_kwargs

_P_LEX = prof.intern_phase("pipeline.lex")
_P_PARSE = prof.intern_phase("pipeline.parse")
_P_TYPECHECK = prof.intern_phase("pipeline.typecheck")
_P_IR = prof.intern_phase("pipeline.ir")
_P_ANALYSIS = prof.intern_phase("pipeline.analysis")
_P_PROFILE = prof.intern_phase("pipeline.profile")
_P_RUN = prof.intern_phase("pipeline.run")


@dataclass
class CompiledProgram:
    """A fully analyzed Bamboo program, ready to run or synthesize."""

    source: str
    program: ast.Program
    info: ProgramInfo
    ir_program: ir.IRProgram
    astgs: Dict[str, ASTG]
    cstg: CSTG
    disjointness: DisjointnessResult
    lock_plan: LockPlan

    def task_names(self) -> List[str]:
        return sorted(self.info.tasks)


def compile_program(
    source: str, filename: str = "<input>", optimize: bool = False
) -> CompiledProgram:
    """Runs the full front half of the compiler: parse, type-check, lower,
    verify, dependence analysis, disjointness analysis, lock planning.

    ``optimize=True`` additionally runs the scalar IR passes (constant
    folding, copy propagation, DCE, jump threading); semantics are
    preserved while cycle counts shrink slightly. The recorded experiment
    numbers use the straight translation.
    """
    with prof.phase(_P_LEX):
        tokens = tokenize(source, filename)
    with prof.phase(_P_PARSE):
        program = Parser(tokens, filename).parse_program()
    with prof.phase(_P_TYPECHECK):
        info = analyze(program)
    with prof.phase(_P_IR):
        ir_program = lower_program(info)
        verify_program(ir_program)
        if optimize:
            from ..ir.optimize import optimize_program

            optimize_program(ir_program)
    with prof.phase(_P_ANALYSIS):
        astgs = build_all_astgs(info, ir_program)
        cstg = CSTG.build(info, ir_program, astgs)
        disjointness = analyze_disjointness(info, ir_program)
        lock_plan = build_lock_plan(info, disjointness)
    return CompiledProgram(
        source=source,
        program=program,
        info=info,
        ir_program=ir_program,
        astgs=astgs,
        cstg=cstg,
        disjointness=disjointness,
        lock_plan=lock_plan,
    )


def single_core_layout(compiled: CompiledProgram) -> Layout:
    return Layout.single_core(compiled.info.tasks)


def run_layout(
    compiled: CompiledProgram,
    layout: Layout,
    args: Sequence[str],
    options: Optional[RunOptions] = None,
    config=_UNSET,
    collect_profile=_UNSET,
) -> MachineResult:
    """Executes the program on the many-core machine under ``layout``.

    Run behaviour (faults, resilience, observability, profile collection,
    trace/metrics sinks) comes from ``options``; when ``trace_path`` or
    ``metrics_path`` is set the run is observed and the sink written
    before returning — the CLI and the library share this one code path.

    ``config=``/``collect_profile=`` are the pre-:class:`RunOptions`
    spelling, kept as a deprecated shim.
    """
    legacy = {}
    if config is not _UNSET:
        legacy["config"] = config
    if collect_profile is not _UNSET:
        legacy["collect_profile"] = collect_profile
    if legacy:
        warn_deprecated_kwargs("run_layout", "RunOptions", legacy)
        if options is not None:
            raise TypeError(
                "run_layout() takes either options= or the deprecated "
                "config=/collect_profile= keywords, not both"
            )
        options = RunOptions(
            machine=legacy.get("config"),
            collect_profile=bool(legacy.get("collect_profile", False)),
        )
    options = options or RunOptions()
    machine = ManyCoreMachine(
        compiled,
        layout,
        config=options.machine_config(),
        collect_profile=options.collect_profile,
    )
    with prof.phase(_P_RUN):
        result = machine.run(args)
    _write_run_sinks(result, options)
    return result


def _write_run_sinks(result: MachineResult, options: RunOptions) -> None:
    """Writes the trace/metrics sinks an observed run asked for."""
    if options.trace_path and result.events is not None:
        from ..obs import write_chrome_trace

        doc = write_chrome_trace(
            options.trace_path,
            result.events,
            sorted(result.core_busy),
            makespan=result.total_cycles,
        )
        # When a wall-clock profiler is recording spans, merge them in
        # as an extra track so the simulated timeline and the real one
        # land in a single Perfetto-loadable document.
        profiler = prof.active()
        if profiler is not None and profiler.record_spans:
            import json as _json

            doc["traceEvents"].extend(prof.span_trace_events(profiler))
            with open(options.trace_path, "w") as handle:
                _json.dump(doc, handle)
    if options.metrics_path and result.metrics is not None:
        from ..obs import write_metrics_snapshot

        write_metrics_snapshot(options.metrics_path, result.metrics)


def profile_program(
    compiled: CompiledProgram,
    args: Sequence[str],
    layout: Optional[Layout] = None,
) -> ProfileData:
    """Collects the profile that bootstraps synthesis (single-core unless a
    layout is given — the paper supports both, §4.3.1)."""
    layout = layout or single_core_layout(compiled)
    with prof.phase(_P_PROFILE):
        result = run_layout(
            compiled, layout, args, options=RunOptions(collect_profile=True)
        )
    assert result.profile is not None
    return result.profile


def annotated_cstg(compiled: CompiledProgram, profile: ProfileData) -> CSTG:
    """A fresh CSTG carrying the given profile's Markov annotations."""
    cstg = CSTG.build(compiled.info, compiled.ir_program, compiled.astgs, profile)
    return cstg


@dataclass
class SequentialResult:
    """Outcome of running a sequential (non-task) entry method — the
    stand-in for the paper's single-core C versions."""

    cycles: int
    stdout: str
    value: object = None


def run_sequential(
    compiled: CompiledProgram,
    args: Sequence[str],
    entry_class: str = "SeqMain",
    entry_method: str = "run",
    bounds_checks: bool = False,
) -> SequentialResult:
    """Runs ``entry_class.entry_method(String[] args)`` directly on the
    interpreter with **no task runtime** (no dispatch, locks, or flag
    bookkeeping) — the baseline the paper's C versions provide."""
    class_info = compiled.info.classes.get(entry_class)
    if class_info is None:
        raise SemanticError(f"no sequential entry class '{entry_class}'")
    method = class_info.methods.get(entry_method)
    if method is None:
        raise SemanticError(
            f"class '{entry_class}' has no method '{entry_method}'"
        )
    heap = Heap()
    interp = Interpreter(
        compiled.ir_program, compiled.info, heap, bounds_checks=bounds_checks
    )
    receiver = heap.new_object(entry_class, len(class_info.fields))
    ctor = class_info.constructor
    if ctor is not None and not ctor.param_types:
        interp.run_method(ctor.qualified_name, [receiver])
    argv = BArray(elem_type="String", values=list(args))
    value, cycles = interp.run_method(method.qualified_name, [receiver, argv])
    return SequentialResult(cycles=cycles, stdout=interp.output(), value=value)
