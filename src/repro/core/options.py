"""Typed option bundles for the public API.

Four generations of features (fault plans, resilience, observability,
heterogeneous cores, and now the parallel layout search) each grew their
own keyword arguments on :func:`repro.core.api.run_layout` and
:func:`repro.core.pipeline.synthesize_layout`. This module consolidates
them into two dataclasses — one per phase of the paper's workflow:

* :class:`SynthesisOptions` — everything the offline search consumes:
  the anneal schedule, developer hints, machine shape, per-core speeds,
  and the :mod:`repro.search` engine knobs (workers, simulation cache,
  early cutoff).
* :class:`RunOptions` — everything one machine execution consumes: the
  machine config (or its common fields flattened — fault plan,
  resilience, validation, observability), profile collection, and trace
  or metrics sinks to write after the run.

The old keyword signatures survive as thin shims that raise
``DeprecationWarning`` and forward here; the CLI and the benchmark
drivers build these objects directly, so the library and the tools share
one code path.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, replace
from typing import Callable, Dict, Optional, TYPE_CHECKING

from ..runtime.machine import MachineConfig
from ..schedule.anneal import AnnealConfig

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fault.plan import FaultPlan
    from ..obs.metrics import MetricsRegistry
    from ..resilience.config import ResilienceConfig
    from ..search import HostChaosPlan, RetryPolicy, SimCache


#: Sentinel distinguishing "not passed" from an explicit None/default in
#: the deprecated keyword shims.
_UNSET = object()


@dataclass
class DistOptions:
    """Knobs for the distributed layout search (:mod:`repro.search.dist`).

    Setting :attr:`SynthesisOptions.dist` switches
    :func:`repro.core.pipeline.synthesize_layout` from one annealing run
    to ``restarts`` independent seeded restarts coordinated across
    workers — merged in shard-id order, so the report is bit-identical
    to running the same shard list serially on one host.
    """

    #: independent annealing restarts — the shard axis
    restarts: int = 25
    #: base seed deriving every shard's search seed
    base_seed: int = 1234
    #: local ``dist-worker`` subprocesses to spawn (0 = every shard runs
    #: in the coordinator process, still through the shard machinery)
    workers: int = 0
    #: lease/steal policy; None = :class:`repro.search.dist.LeasePolicy`
    #: defaults
    lease: Optional[object] = None
    #: write the merged-frontier checkpoint here after completed shards
    checkpoint_path: Optional[str] = None
    #: resume from ``checkpoint_path`` (a different job's checkpoint is
    #: refused with a typed error)
    resume: bool = False
    #: seconds the worker set may sit empty before shards run locally
    degrade_after: float = 10.0


#: release in which the deprecated keyword shims (and the legacy
#: simulator entry points) are scheduled for removal
SHIM_REMOVAL_VERSION = "0.9"


def warn_deprecated_kwargs(function: str, options_type: str, names) -> None:
    """One uniform DeprecationWarning for every legacy keyword shim."""
    warnings.warn(
        f"passing {', '.join(sorted(names))} to {function}() directly is "
        f"deprecated and will be removed in version {SHIM_REMOVAL_VERSION}; "
        f"build a {options_type} instead "
        f"(from repro import {options_type})",
        DeprecationWarning,
        stacklevel=3,
    )


@dataclass
class SynthesisOptions:
    """Options for :func:`repro.core.pipeline.synthesize_layout`."""

    #: overrides the anneal schedule's seed when set (kept separate so
    #: callers can reuse one ``anneal`` schedule across seeds)
    seed: Optional[int] = None
    #: the DSA schedule; defaults to ``AnnealConfig()``
    anneal: Optional[AnnealConfig] = None
    #: developer scheduling hints, e.g. ``{"task": "per_object"}`` (§4.4)
    hints: Optional[Dict[str, str]] = None
    #: mesh width of the target machine (defaults to the smallest square)
    mesh_width: Optional[int] = None
    #: per-core relative speeds (heterogeneous cores, §4.6 extension)
    core_speeds: Optional[Dict[int, float]] = None
    #: candidate simulations fan out across this many worker processes;
    #: results are bit-identical to ``workers=1``
    workers: int = 1
    #: incremental delta re-simulation: candidates one migration away
    #: from an already-simulated parent resume from the parent's event
    #: timeline instead of re-simulating from scratch. Results are
    #: bit-identical either way (test-enforced per benchmark) — this is
    #: purely a wall-clock knob
    delta_sim: bool = True
    #: memoize simulation results by layout fingerprint
    sim_cache: bool = True
    #: LRU bound for the per-run cache (None = unbounded)
    cache_entries: Optional[int] = None
    #: share a cache across synthesis runs (overrides ``cache_entries``)
    cache: Optional["SimCache"] = None
    #: receive ``sim_cache_*`` counters (a fresh registry is created when
    #: None, so cache telemetry is always available on the report)
    metrics: Optional["MetricsRegistry"] = None
    #: supervise worker processes (deadlines, bounded retries, pool
    #: rebuilds, serial degradation); only meaningful with ``workers > 1``
    supervise: bool = True
    #: full retry policy override; built from the scalar knobs below when
    #: None (see :class:`repro.search.RetryPolicy`)
    retry_policy: Optional["RetryPolicy"] = None
    #: per-task deadline = max(floor, ewma * this); None = policy default
    worker_timeout_mult: Optional[float] = None
    #: retries per task before serial fallback; None = policy default
    max_retries: Optional[int] = None
    #: write a resumable checkpoint here every
    #: ``AnnealConfig.checkpoint_every`` iterations
    checkpoint_path: Optional[str] = None
    #: resume from a checkpoint written by an earlier interrupted run
    resume: Optional[str] = None
    #: inject host-level worker faults (testing; forces supervision)
    host_chaos: Optional["HostChaosPlan"] = None
    #: distribute the search as independent seeded restarts across
    #: workers (:mod:`repro.search.dist`); most single-run knobs above
    #: (workers, cache sharing, supervision, checkpointing) are then
    #: per-shard concerns handled by the dist layer instead
    dist: Optional[DistOptions] = None
    #: zero-argument callable polled at iteration boundaries; returning
    #: true raises :class:`repro.schedule.anneal.SearchCancelled` and the
    #: search stops cleanly. Installed by the serving layer's request
    #: deadlines and graceful drain; it can only stop a run early, never
    #: change the result of one it lets finish.
    cancel_check: Optional[Callable[[], bool]] = None

    def effective_anneal(self) -> AnnealConfig:
        """The anneal schedule with the seed override applied."""
        config = self.anneal if self.anneal is not None else AnnealConfig()
        if self.seed is not None and config.seed != self.seed:
            config = replace(config, seed=self.seed)
        return config

    def effective_retry_policy(self) -> Optional["RetryPolicy"]:
        """The retry policy with the scalar knob overrides applied, or
        ``None`` when everything is at its default (the evaluator then
        uses :class:`repro.search.RetryPolicy`'s own defaults)."""
        policy = self.retry_policy
        if self.worker_timeout_mult is None and self.max_retries is None:
            return policy
        from ..search.supervise import RetryPolicy

        policy = policy if policy is not None else RetryPolicy()
        overrides = {}
        if self.worker_timeout_mult is not None:
            overrides["timeout_mult"] = self.worker_timeout_mult
        if self.max_retries is not None:
            overrides["max_retries"] = self.max_retries
        return replace(policy, **overrides)


@dataclass
class RunOptions:
    """Options for :func:`repro.core.api.run_layout`.

    Either give a full :class:`MachineConfig` via ``machine`` or set the
    flattened fields; with everything left at its default the run takes
    the exact no-config path (bit-identical to a bare ``run_layout``).
    """

    #: full machine config; when set, the flattened fields below (other
    #: than the sinks and ``collect_profile``) are ignored
    machine: Optional[MachineConfig] = None
    #: injected faults (:mod:`repro.fault`)
    fault_plan: Optional["FaultPlan"] = None
    #: detection-driven failure handling (:mod:`repro.resilience`)
    resilience: Optional["ResilienceConfig"] = None
    #: assert the termination invariant at end of run
    validate: bool = False
    #: collect the typed event stream + metrics (:mod:`repro.obs`)
    observe: bool = False
    #: record the legacy string trace
    record_trace: bool = False
    #: per-core relative speeds (§4.6 heterogeneous extension)
    core_speeds: Optional[Dict[int, float]] = None
    #: use the centralized-scheduler ablation instead of per-core queues
    centralized_scheduler: bool = False
    #: charge per-access array bounds checks (§5.5)
    bounds_checks: bool = False
    #: collect a profile during the run (``MachineResult.profile``)
    collect_profile: bool = False
    #: write a Chrome trace-event timeline here after the run (implies
    #: ``observe``)
    trace_path: Optional[str] = None
    #: write the run's metrics snapshot here after the run (implies
    #: ``observe``)
    metrics_path: Optional[str] = None

    def wants_observe(self) -> bool:
        return bool(
            self.observe
            or self.trace_path
            or self.metrics_path
            or (self.machine is not None and self.machine.observe)
        )

    def machine_config(self) -> Optional[MachineConfig]:
        """The :class:`MachineConfig` this run needs — ``None`` when every
        field is at its default, so the machine takes the identical
        no-config path."""
        observe = self.wants_observe()
        if self.machine is not None:
            if observe and not self.machine.observe:
                return replace(self.machine, observe=True)
            return self.machine
        if not (
            self.fault_plan is not None
            or self.resilience is not None
            or self.validate
            or observe
            or self.record_trace
            or self.core_speeds
            or self.centralized_scheduler
            or self.bounds_checks
        ):
            return None
        return MachineConfig(
            centralized_scheduler=self.centralized_scheduler,
            bounds_checks=self.bounds_checks,
            core_speeds=self.core_speeds,
            fault_plan=self.fault_plan,
            resilience=self.resilience,
            validate=self.validate,
            record_trace=self.record_trace,
            observe=observe,
        )
