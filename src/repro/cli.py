"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------

``compile FILE``
    Parse + analyze a Bamboo program; print tasks, ASTGs, and the lock plan.
``seq FILE [ARGS...]``
    Run the program's ``SeqMain.run`` sequentially (the C-baseline mode).
``run FILE [ARGS...] --cores N``
    Full pipeline: profile, synthesize a layout, execute on the machine.
    ``--workers N`` fans the layout search's candidate simulations across
    N worker processes (bit-identical results to the serial search) and
    ``--no-sim-cache`` disables simulation memoization;
    ``--search-metrics-out FILE`` writes the search telemetry snapshot
    (evaluations, cache hit rate, wall seconds) as JSON.
    ``--resilience`` runs with detection-driven failure handling
    (heartbeats, watchdog deadlines, retry/quarantine); ``--chaos N``
    instead sweeps N seeded fault plans and exits nonzero if any
    resilience invariant (termination, exactly-once commit, quarantine
    accounting, baseline equivalence) is violated. ``--trace-out FILE``
    writes a Chrome trace-event timeline (Perfetto-loadable) and
    ``--metrics-out FILE`` the run's metrics snapshot; either implies
    observation (``MachineConfig.observe``).

    The search itself is fault tolerant at the host level:
    ``--checkpoint FILE`` writes a resumable checkpoint every
    ``checkpoint_every`` iterations (and on Ctrl-C, which exits 130);
    ``--resume FILE`` continues an interrupted search bit-identically;
    ``--worker-timeout-mult X`` scales the supervision deadline for slow
    hosts; ``--host-chaos N`` sweeps N seeded host-fault plans (worker
    crashes/hangs) and exits nonzero if any supervision invariant is
    violated.
``cstg FILE [ARGS...] [--dot]``
    Print the profile-annotated CSTG (optionally as Graphviz DOT).
``bench NAME [--cores N]``
    Run one of the paper's benchmarks through the Figure 7 protocol.
``profile TARGET [ARGS...] [--cores N] [--out FILE]``
    Wall-clock-profile the whole pipeline (compile → profile →
    synthesize) on a benchmark name or ``.bam`` file: print the
    hierarchical self/cumulative phase table and optionally write the
    ``repro.obs/profile-v1`` JSON artifact. ``--overhead`` reruns the
    pipeline unprofiled and records the instrumentation's measured
    overhead fraction (and a results-identity check) in the artifact.
``obs validate|summarize FILE``
    Schema-check (or render one screen about) any exported
    observability artifact: Chrome traces, machine/search/serve
    metrics, profiles, benchmark telemetry, or Prometheus text.
``serve [--cache FILE] [--port N]``
    Start the synthesis daemon (:mod:`repro.serve`): compile / profile /
    synthesize / simulate served over newline-delimited JSON, with a
    disk-persistent simulation cache shared across requests and
    restarts. ``--max-concurrency``/``--queue-limit`` bound admission
    (excess requests are load-shed), ``--workers`` fans each search
    across worker processes. ``--request-deadline`` bounds each heavy
    request's wall clock (cooperative cancellation reclaims the worker
    thread), ``--drain-timeout`` bounds the graceful drain on shutdown,
    ``--idle-timeout`` reclaims silent connections, and ``--allow-chaos``
    gates the fault-injection operation used by ``serve-chaos``.
    ``--metrics-port N`` additionally serves ``GET /metrics``
    (Prometheus text exposition), ``/healthz``, and ``/profilez`` over
    plain HTTP — scrapable even while the daemon drains.
``request OP [FILE [ARGS...]] --port N``
    Send one request to a running daemon and print the deterministic
    result JSON on stdout (telemetry goes to stderr). With ``--offline``
    the same operation runs in-process through the identical code path —
    the two stdouts are byte-comparable, which is how CI checks the
    serving-transparency contract. ``--retries N`` survives connection
    drops and overloaded/draining daemons (retry is safe because served
    results are deterministic); ``--deadline MS`` bounds the request's
    wall clock server-side. ``--trace-out FILE`` sends a ``trace_id``
    with the request and writes the merged client+server wall-clock
    Chrome trace built from the daemon's telemetry.
``serve-chaos [N]``
    Sweep N seeded network/daemon fault plans (connection resets,
    truncated/garbled/delayed responses, flush failures, mid-request
    SIGKILL + restart) against a live daemon subprocess and exit nonzero
    if any serve-layer invariant (typed outcomes, result bit-identity,
    liveness, cache durability, degradation reporting) is violated.
``dist-coordinator PROGRAM [ARGS...] --restarts N``
    Decompose one synthesis job into N seeded annealing-restart shards
    and coordinate them across workers (:mod:`repro.search.dist`):
    every dispatched shard is held under an EWMA lease, expired leases
    trigger work-stealing, and results merge in shard-id order — so the
    report on stdout is byte-identical to ``--serial`` (the single-host
    baseline) no matter how workers crash, hang, or disconnect.
    ``--local-workers N`` spawns N worker subprocesses;
    ``--expect-workers N`` waits for externally started ones instead.
    ``--checkpoint FILE`` persists the merged frontier after every
    completed shard and ``--resume`` continues a killed coordinator
    bit-identically. ``--metrics-out``/``--prom-out`` export the
    ``dist_*`` counters (JSON snapshot / ``repro_dist_*`` Prometheus
    series); ``--chaos-crash/--chaos-hang/--chaos-expire SEQ`` inject
    deterministic faults on dispatch SEQ (CI's dist-smoke uses these).
``dist-worker --port N``
    Serve shards to a coordinator until it says bye: stateless, killable
    at any instant, reconnects with capped backoff on connection loss.
``dist-chaos [N]``
    Sweep N seeded distributed-search fault plans (worker SIGKILLs,
    hangs, dropped/garbled connections, forced lease expiries, plus a
    coordinator interrupt+resume phase) against real worker subprocesses
    and exit nonzero if any invariant (termination, dist-vs-serial
    bit-identity, exactly-once shard accounting, control-plan zero
    activity) is violated.
"""

from __future__ import annotations

import argparse
import pickle
import sys
from typing import List, Optional

from .bench import benchmark_names, run_three_versions
from .core import (
    RunOptions,
    SynthesisOptions,
    annotated_cstg,
    compile_program,
    profile_program,
    run_layout,
    run_sequential,
    single_core_layout,
    synthesize_layout,
)
from .fault.plan import FaultPlan
from .lang.errors import BambooError, RuntimeBambooError, ScheduleError


def _load(path: str, optimize: bool = False):
    with open(path, "r") as handle:
        source = handle.read()
    return compile_program(source, path, optimize=optimize)


def _cmd_compile(args: argparse.Namespace) -> int:
    compiled = _load(args.file)
    print(f"tasks: {', '.join(compiled.task_names())}")
    print()
    for astg in compiled.astgs.values():
        if astg.states:
            print(astg.format())
    print()
    print("lock plan:")
    for task in compiled.task_names():
        plan = compiled.lock_plan.plan_for(task)
        kind = (
            "fine-grained"
            if plan.is_fine_grained
            else f"shared groups {plan.shared_groups}"
        )
        print(f"  {task}: {kind}")
    from .analysis.diagnostics import analyze_diagnostics

    diagnostics = analyze_diagnostics(
        compiled.info, compiled.ir_program, compiled.astgs
    )
    if diagnostics:
        print()
        print("diagnostics:")
        for diagnostic in diagnostics:
            print(f"  {diagnostic}")
    return 0


def _cmd_seq(args: argparse.Namespace) -> int:
    compiled = _load(args.file)
    result = run_sequential(compiled, args.args)
    if result.stdout:
        print(result.stdout)
    print(f"[{result.cycles:,} cycles]", file=sys.stderr)
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    compiled = _load(args.file, optimize=args.optimize)
    resilience = None
    profile = None
    if args.resilience or args.chaos:
        from .resilience import ResilienceConfig

        profile = profile_program(compiled, args.args)
        resilience = ResilienceConfig(
            heartbeat_interval=args.heartbeat_interval,
            deadline_multiplier=args.deadline_mult,
            profile=profile if args.deadline_mult is not None else None,
        )
    fault_plan = FaultPlan.parse(args.inject_fault) if args.inject_fault else None
    if args.verbose and fault_plan is not None:
        print(fault_plan.describe(), file=sys.stderr)
    run_options = RunOptions(
        fault_plan=fault_plan,
        resilience=resilience,
        validate=args.validate,
        trace_path=args.trace_out,
        metrics_path=args.metrics_out,
    )
    if args.host_chaos:
        from .search import run_host_chaos

        if profile is None:
            profile = profile_program(compiled, args.args)
        host_report = run_host_chaos(
            compiled,
            profile,
            max(2, args.cores),
            options=SynthesisOptions(
                seed=args.seed,
                sim_cache=not args.no_sim_cache,
                worker_timeout_mult=args.worker_timeout_mult,
            ),
            runs=args.host_chaos,
            base_seed=args.seed,
            workers=max(2, args.workers),
        )
        print(host_report.describe())
        return 0 if host_report.ok else 1
    if args.cores <= 1:
        layout = single_core_layout(compiled)
    else:
        if profile is None:
            profile = profile_program(compiled, args.args)
        try:
            report = synthesize_layout(
                compiled,
                profile,
                args.cores,
                options=SynthesisOptions(
                    seed=args.seed,
                    workers=args.workers,
                    sim_cache=not args.no_sim_cache,
                    delta_sim=not args.no_delta_sim,
                    worker_timeout_mult=args.worker_timeout_mult,
                    checkpoint_path=args.checkpoint,
                    resume=args.resume,
                ),
            )
        except KeyboardInterrupt:
            # The annealer already flushed its last iteration boundary.
            if args.checkpoint:
                print(
                    f"interrupted: checkpoint written to {args.checkpoint}; "
                    f"resume with --resume {args.checkpoint}",
                    file=sys.stderr,
                )
            else:
                print(
                    "interrupted (no --checkpoint given, progress lost)",
                    file=sys.stderr,
                )
            return 130
        if args.search_metrics_out:
            import json

            with open(args.search_metrics_out, "w") as handle:
                json.dump(report.search_metrics, handle, indent=2)
                handle.write("\n")
            print(f"[search metrics: {args.search_metrics_out}]", file=sys.stderr)
        if args.verbose:
            print(report.layout.describe(), file=sys.stderr)
            print(
                f"[synthesis: {report.evaluations} simulations "
                f"(+{report.cache_hits} cache hits), "
                f"{report.wall_seconds:.2f}s, workers={args.workers}]",
                file=sys.stderr,
            )
        layout = report.layout
    if args.chaos:
        from .resilience import run_chaos

        chaos = run_chaos(
            compiled,
            layout,
            args.args,
            runs=args.chaos,
            base_seed=args.seed,
            resilience=resilience,
        )
        print(chaos.describe())
        return 0 if chaos.ok else 1
    result = run_layout(compiled, layout, args.args, options=run_options)
    if result.stdout:
        print(result.stdout)
    print(
        f"[{result.total_cycles:,} cycles on {args.cores} cores, "
        f"{result.messages} messages]",
        file=sys.stderr,
    )
    if result.recovery is not None:
        print(f"[{result.recovery.describe()}]", file=sys.stderr)
    if args.trace_out:
        print(f"[trace: {args.trace_out}]", file=sys.stderr)
    if args.metrics_out:
        print(f"[metrics: {args.metrics_out}]", file=sys.stderr)
    if run_options.wants_observe() and args.verbose and result.events is not None:
        from .viz import render_machine_timeline

        print(
            render_machine_timeline(result.events, result.total_cycles),
            file=sys.stderr,
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .serve import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        cache_path=args.cache,
        max_concurrency=args.max_concurrency,
        queue_limit=args.queue_limit,
        workers=args.workers,
        cache_entries=args.cache_entries,
        flush_interval=args.flush_interval,
        request_deadline=args.request_deadline,
        drain_timeout=args.drain_timeout,
        idle_timeout=args.idle_timeout,
        allow_fault_injection=args.allow_chaos,
        metrics_port=args.metrics_port,
        profile=not args.no_profile,
    )

    def announce(server):
        print(
            f"repro.serve: listening on {server.host}:{server.port}",
            file=sys.stderr,
            flush=True,
        )
        if server.metrics_port is not None:
            print(
                f"repro.serve: metrics on "
                f"http://{server.metrics_host}:{server.metrics_port}/metrics",
                file=sys.stderr,
                flush=True,
            )
        print(
            f"repro.serve: {server.load_report.describe()}",
            file=sys.stderr,
            flush=True,
        )

    return run_server(config, announce=announce)


def _cmd_serve_chaos(args: argparse.Namespace) -> int:
    from .serve.netchaos import run_net_chaos

    report = run_net_chaos(plans=args.plans, base_seed=args.seed)
    print(report.describe())
    if args.report:
        import json

        with open(args.report, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"[report: {args.report}]", file=sys.stderr)
    return 0 if report.ok else 1


def _resolve_program(target: str, args: List[str]):
    """``TARGET`` as (source, label, args): a ``.bam`` file path or a
    benchmark name (the benchmark's canonical args fill in when none are
    given)."""
    import os

    if os.path.exists(target):
        with open(target, "r") as handle:
            return handle.read(), target, list(args)
    if target in benchmark_names():
        from .bench import get_spec, load_source

        spec = get_spec(target)
        return (
            load_source(target),
            spec.filename,
            list(args) if args else list(spec.args),
        )
    raise BambooError(
        f"{target!r} is neither a file nor a benchmark "
        f"(benchmarks: {', '.join(benchmark_names())})"
    )


def _cmd_dist_worker(args: argparse.Namespace) -> int:
    from .search.dist import run_dist_worker

    stats = run_dist_worker(
        args.host,
        args.port,
        name=args.name,
        idle_timeout=args.max_idle,
        log=sys.stderr if args.verbose else None,
    )
    print(f"[dist worker: {stats.snapshot()}]", file=sys.stderr)
    return 0


def _cmd_dist_coordinator(args: argparse.Namespace) -> int:
    import hashlib
    import json

    from .obs.metrics import MetricsRegistry, build_search_metrics
    from .schedule.anneal import AnnealConfig
    from .search.dist import (
        DistCoordinator,
        JobContext,
        LeasePolicy,
        describe_dist_result,
        make_restart_shards,
        run_serial_baseline,
    )

    source, label, prog_args = _resolve_program(args.target, args.args)
    compiled = compile_program(source, label, optimize=args.optimize)
    profile = profile_program(compiled, prog_args)
    context = JobContext(
        compiled=compiled,
        profile=profile,
        num_cores=args.cores,
        mesh_width=args.mesh_width,
        delta=not args.no_delta_sim,
        source_digest=hashlib.sha256(
            "\x00".join([source] + prog_args).encode("utf-8")
        ).hexdigest(),
    )
    template = AnnealConfig(
        initial_candidates=args.initial_candidates,
        max_iterations=args.max_iterations,
        max_evaluations=args.max_evaluations,
        patience=args.patience,
        continue_probability=args.continue_probability,
    )
    shards = make_restart_shards(template, args.restarts, base_seed=args.seed)
    registry = MetricsRegistry()
    if args.serial:
        result = run_serial_baseline(context, shards)
    else:
        chaos = None
        if args.chaos_crash or args.chaos_hang or args.chaos_expire:
            from .search.hostchaos import DistChaosPlan

            chaos = DistChaosPlan.scripted(
                crash=args.chaos_crash,
                hang=args.chaos_hang,
                expire=args.chaos_expire,
                hang_seconds=2.0 * args.lease_floor,
            )
        coordinator = DistCoordinator(
            context,
            shards,
            lease=LeasePolicy(
                timeout_mult=args.lease_mult,
                timeout_floor=args.lease_floor,
                max_retries=args.max_retries,
            ),
            host=args.host,
            port=args.port,
            registry=registry,
            checkpoint_path=args.checkpoint,
            resume=args.resume,
            degrade_after=args.degrade_after,
            expect_workers=args.expect_workers or args.local_workers,
            chaos_plan=chaos,
            announce=sys.stderr,
        )
        host, port = coordinator.start()
        procs = []
        try:
            from .search.dist.worker import spawn_worker_process

            for index in range(args.local_workers):
                procs.append(spawn_worker_process(host, port, f"w{index}"))
            result = coordinator.run()
        finally:
            coordinator.stop()
            for proc in procs:
                if proc.poll() is None:
                    proc.kill()
                proc.wait()
    print(describe_dist_result(result))
    if result.stats is not None:
        print(f"[dist: {json.dumps(result.stats, sort_keys=True)}]",
              file=sys.stderr)
    print(f"[dist: {result.wall_seconds:.2f}s]", file=sys.stderr)
    if args.metrics_out:
        snapshot = build_search_metrics(
            workers=0 if args.serial else max(
                args.local_workers, args.expect_workers
            ),
            wall_seconds=result.wall_seconds,
            evaluations=result.evaluations,
            cache_hits=result.cache_hits,
            pruned_evaluations=result.pruned_evaluations,
            cache_stats=None,
            registry=registry,
            dist=result.stats,
        )
        with open(args.metrics_out, "w") as handle:
            json.dump(snapshot, handle, indent=2)
            handle.write("\n")
        print(f"[dist metrics: {args.metrics_out}]", file=sys.stderr)
    if args.prom_out:
        from .obs.promexp import render_prometheus

        with open(args.prom_out, "w") as handle:
            handle.write(render_prometheus(registry))
        print(f"[dist prometheus: {args.prom_out}]", file=sys.stderr)
    return 0


def _cmd_dist_chaos(args: argparse.Namespace) -> int:
    from .search.dist.chaos import run_dist_chaos

    report = run_dist_chaos(plans=args.plans, base_seed=args.seed)
    print(report.describe())
    if args.report:
        import json

        with open(args.report, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2)
            handle.write("\n")
        print(f"[report: {args.report}]", file=sys.stderr)
    return 0 if report.ok else 1


_HEAVY_REQUEST_OPS = ("compile", "profile", "synthesize", "simulate")


def _request_params(args: argparse.Namespace) -> dict:
    """The request parameters shared by the online and offline paths."""
    if not args.file:
        raise BambooError(f"operation {args.op!r} needs a program FILE")
    with open(args.file, "r") as handle:
        source = handle.read()
    params = {
        "source": source,
        "filename": args.file,
        "args": list(args.args),
        "optimize": args.optimize,
    }
    if args.op in ("synthesize", "simulate"):
        params["cores"] = args.cores
        if args.mesh_width is not None:
            params["mesh_width"] = args.mesh_width
    if args.op == "synthesize":
        params["seed"] = args.seed
        if args.max_iterations is not None:
            params["max_iterations"] = args.max_iterations
        if args.max_evaluations is not None:
            params["max_evaluations"] = args.max_evaluations
    if args.op == "simulate":
        import json

        if not args.mapping:
            raise BambooError(
                "simulate needs --mapping '{\"Task\": [cores...], ...}'"
            )
        params["layout"] = json.loads(args.mapping)
    return params


def _cmd_request(args: argparse.Namespace) -> int:
    import json

    heavy = args.op in _HEAVY_REQUEST_OPS
    if args.offline:
        if not heavy:
            print(
                f"error: --offline only applies to "
                f"{', '.join(_HEAVY_REQUEST_OPS)}",
                file=sys.stderr,
            )
            return 2
        from .serve import (
            execute_compile,
            execute_profile,
            execute_simulate,
            execute_synthesize,
        )

        executors = {
            "compile": execute_compile,
            "profile": execute_profile,
            "synthesize": execute_synthesize,
            "simulate": execute_simulate,
        }
        result, telemetry = executors[args.op](_request_params(args))
    else:
        if args.port is None:
            print(
                "error: --port is required (or use --offline)",
                file=sys.stderr,
            )
            return 2
        from .serve import ClientRetryPolicy, ServeClient

        params = _request_params(args) if heavy else {}
        if heavy and args.deadline is not None:
            params["deadline_ms"] = args.deadline
        policy = (
            ClientRetryPolicy(max_attempts=args.retries + 1)
            if args.retries > 0
            else None
        )
        trace_wanted = args.trace_out is not None
        if trace_wanted and not heavy:
            print(
                f"error: --trace-out only applies to "
                f"{', '.join(_HEAVY_REQUEST_OPS)}",
                file=sys.stderr,
            )
            return 2
        with ServeClient(
            args.host,
            args.port,
            timeout=args.timeout,
            retry_policy=policy,
            trace=trace_wanted,
        ) as client:
            response = client.call(args.op, **params)
            trace = client.last_trace
        result = response["result"]
        telemetry = response.get("telemetry")
        if trace_wanted:
            from .obs import prof

            server = trace.get("server") if trace else None
            doc = prof.build_request_trace(
                trace["trace_id"],
                trace["client_span"],
                server.get("spans", []) if isinstance(server, dict) else [],
            )
            prof.write_json(args.trace_out, doc)
            print(f"[trace: {args.trace_out}]", file=sys.stderr)
    # The deterministic result alone goes to stdout (sorted keys), so a
    # served stdout and an --offline stdout are byte-comparable.
    print(json.dumps(result, sort_keys=True, indent=2))
    if telemetry is not None:
        print(
            f"[telemetry: {json.dumps(telemetry, sort_keys=True)}]",
            file=sys.stderr,
        )
    return 0


def _cmd_cstg(args: argparse.Namespace) -> int:
    compiled = _load(args.file)
    profile = profile_program(compiled, args.args)
    cstg = annotated_cstg(compiled, profile)
    if args.dot:
        from .viz import cstg_to_dot

        print(cstg_to_dot(cstg, args.file))
    else:
        print(cstg.format())
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.name not in benchmark_names():
        print(
            f"unknown benchmark {args.name!r}; available: "
            f"{', '.join(benchmark_names())}",
            file=sys.stderr,
        )
        return 2
    row = run_three_versions(args.name, num_cores=args.cores, seed=args.seed)
    print(f"{args.name} on {args.cores} cores:")
    print(f"  1-core C substitute : {row.seq_cycles:>12,} cycles")
    print(f"  1-core Bamboo       : {row.one_core_cycles:>12,} cycles")
    print(f"  {args.cores}-core Bamboo      : {row.many_core_cycles:>12,} cycles")
    print(f"  speedup vs Bamboo   : {row.speedup_vs_bamboo:.1f}x")
    print(f"  speedup vs C        : {row.speedup_vs_seq:.1f}x")
    print(f"  Bamboo overhead     : {row.overhead:.1%}")
    print(f"  outputs match       : {row.outputs_match}")
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    import os
    import time

    from .obs import prof
    from .obs.runmeta import run_metadata
    from .schedule.anneal import AnnealConfig

    if os.path.exists(args.target):
        with open(args.target, "r") as handle:
            source = handle.read()
        label = args.target
        prog_args = list(args.args)
    elif args.target in benchmark_names():
        from .bench import get_spec, load_source

        spec = get_spec(args.target)
        source = load_source(args.target)
        label = spec.filename
        prog_args = list(args.args) if args.args else list(spec.args)
    else:
        print(
            f"error: {args.target!r} is neither a file nor a benchmark "
            f"(benchmarks: {', '.join(benchmark_names())})",
            file=sys.stderr,
        )
        return 2

    anneal = AnnealConfig(
        seed=args.seed,
        max_iterations=args.iterations,
        max_evaluations=args.evaluations,
    )

    def run_pipeline():
        compiled = compile_program(source, label, optimize=args.optimize)
        profile = profile_program(compiled, prog_args)
        return synthesize_layout(
            compiled,
            profile,
            args.cores,
            options=SynthesisOptions(
                anneal=anneal,
                workers=args.workers,
                delta_sim=not args.no_delta_sim,
            ),
        )

    started = time.perf_counter_ns()
    with prof.profiled(record_spans=False) as profiler:
        report = run_pipeline()
    wall_ns = time.perf_counter_ns() - started

    extra = {
        "target": label,
        "args": prog_args,
        "cores": args.cores,
        "seed": args.seed,
        "workers": args.workers,
        "estimated_cycles": report.estimated_cycles,
        "evaluations": report.evaluations,
    }
    if args.overhead:
        # The same pipeline with and without a profiler: the overhead the
        # instrumentation costs when ON, and a results-identity check for
        # the off-mode contract (same cycles either way). Min-of-N walls
        # per mode, because single runs carry machine noise larger than
        # the overhead being measured.
        profiled_walls = [wall_ns]
        unprofiled_walls = []
        identical = True
        for _ in range(args.overhead_runs):
            rerun_started = time.perf_counter_ns()
            baseline = run_pipeline()
            unprofiled_walls.append(time.perf_counter_ns() - rerun_started)
            identical &= baseline.estimated_cycles == report.estimated_cycles
        for _ in range(args.overhead_runs - 1):
            rerun_started = time.perf_counter_ns()
            with prof.profiled(record_spans=False):
                rerun = run_pipeline()
            profiled_walls.append(time.perf_counter_ns() - rerun_started)
            identical &= rerun.estimated_cycles == report.estimated_cycles
        best_on, best_off = min(profiled_walls), min(unprofiled_walls)
        extra["overhead"] = {
            "profiled_wall_ns": best_on,
            "unprofiled_wall_ns": best_off,
            "profiled_walls_ns": profiled_walls,
            "unprofiled_walls_ns": unprofiled_walls,
            "overhead_fraction": (best_on - best_off) / best_off,
            "results_identical": identical,
        }

    doc = profiler.snapshot(wall_ns=wall_ns, meta=run_metadata(), extra=extra)
    print(prof.render_report(doc, top=args.top))
    if args.overhead:
        overhead = extra["overhead"]
        print(
            f"\noverhead vs unprofiled run: "
            f"{overhead['overhead_fraction']:+.1%} "
            f"(results identical: {overhead['results_identical']})"
        )
    if args.out:
        prof.write_json(args.out, doc)
        print(f"[profile: {args.out}]", file=sys.stderr)
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    import json

    from .obs.artifacts import ArtifactError, summarize_artifact, validate_artifact

    try:
        if args.obs_command == "validate":
            verdict = validate_artifact(args.file)
            print(json.dumps(verdict, sort_keys=True, indent=2))
        else:
            print(summarize_artifact(args.file))
    except (ArtifactError, ValueError) as exc:
        print(f"error: {args.file}: {exc}", file=sys.stderr)
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Bamboo (PLDI 2010) reproduction toolchain",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_compile = sub.add_parser("compile", help="analyze a .bam program")
    p_compile.add_argument("file")
    p_compile.set_defaults(func=_cmd_compile)

    p_seq = sub.add_parser("seq", help="run SeqMain.run sequentially")
    p_seq.add_argument("file")
    p_seq.add_argument("args", nargs="*")
    p_seq.set_defaults(func=_cmd_seq)

    p_run = sub.add_parser("run", help="profile, synthesize, and execute")
    p_run.add_argument("file")
    p_run.add_argument("args", nargs="*")
    p_run.add_argument("--cores", type=int, default=8)
    p_run.add_argument("--seed", type=int, default=0)
    p_run.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the layout search's candidate "
             "simulations (results are bit-identical to --workers 1)",
    )
    p_run.add_argument(
        "--no-sim-cache", action="store_true",
        help="disable simulation memoization in the layout search",
    )
    p_run.add_argument(
        "--no-delta-sim", action="store_true",
        help="disable incremental delta re-simulation in the layout "
             "search (results are bit-identical either way; full "
             "simulations only cost more wall clock)",
    )
    p_run.add_argument(
        "--search-metrics-out", metavar="FILE", default=None,
        help="write the layout search's telemetry snapshot (simulations, "
             "cache hit rate, wall seconds) as JSON",
    )
    p_run.add_argument("--verbose", action="store_true")
    p_run.add_argument(
        "-O", "--optimize", action="store_true",
        help="run the scalar IR optimization passes",
    )
    p_run.add_argument(
        "--inject-fault", action="append", default=[], metavar="SPEC",
        help="inject a fault (repeatable): core=K@CYCLE crashes core K, "
             "stall=K@CYCLE:DUR stalls it, link=MULT@CYCLE degrades hops",
    )
    p_run.add_argument(
        "--validate", action="store_true",
        help="assert the termination invariant at end of run",
    )
    p_run.add_argument(
        "--resilience", action="store_true",
        help="enable detection-driven failure handling (heartbeats, "
             "missed-beat detection, watchdog deadlines, quarantine)",
    )
    p_run.add_argument(
        "--heartbeat-interval", type=int, default=500, metavar="CYCLES",
        help="cycles between liveness heartbeats (with --resilience)",
    )
    p_run.add_argument(
        "--deadline-mult", type=float, default=None, metavar="X",
        help="watchdog deadline = profiled task cost x X (with --resilience)",
    )
    p_run.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="write a Chrome trace-event JSON timeline of the run "
             "(load in Perfetto or chrome://tracing); implies observation",
    )
    p_run.add_argument(
        "--metrics-out", metavar="FILE", default=None,
        help="write the run's metrics snapshot (utilization, queue depths, "
             "latency histograms, cycle accounting) as JSON",
    )
    p_run.add_argument(
        "--chaos", type=int, default=0, metavar="N",
        help="run a chaos sweep of N seeded fault plans under resilience; "
             "exit nonzero if any invariant is violated",
    )
    p_run.add_argument(
        "--checkpoint", metavar="FILE", default=None,
        help="checkpoint the layout search here every checkpoint_every "
             "iterations (and on Ctrl-C); resume with --resume",
    )
    p_run.add_argument(
        "--resume", metavar="FILE", default=None,
        help="resume an interrupted layout search from a checkpoint "
             "(bit-identical to the uninterrupted run)",
    )
    p_run.add_argument(
        "--worker-timeout-mult", type=float, default=None, metavar="X",
        help="supervision deadline = observed mean simulation time x X "
             "(raise on slow/oversubscribed hosts)",
    )
    p_run.add_argument(
        "--host-chaos", type=int, default=0, metavar="N",
        help="sweep N seeded host-fault plans (worker crashes/hangs) "
             "against the layout search; exit nonzero if any supervision "
             "invariant is violated",
    )
    p_run.set_defaults(func=_cmd_run)

    p_cstg = sub.add_parser("cstg", help="print the annotated CSTG")
    p_cstg.add_argument("file")
    p_cstg.add_argument("args", nargs="*")
    p_cstg.add_argument("--dot", action="store_true")
    p_cstg.set_defaults(func=_cmd_cstg)

    p_bench = sub.add_parser("bench", help="run a paper benchmark")
    p_bench.add_argument("name")
    p_bench.add_argument("--cores", type=int, default=62)
    p_bench.add_argument("--seed", type=int, default=0)
    p_bench.set_defaults(func=_cmd_bench)

    p_profile = sub.add_parser(
        "profile",
        help="wall-clock-profile the pipeline on a benchmark or program",
    )
    p_profile.add_argument(
        "target",
        help="a paper benchmark name (e.g. KMeans) or a .bam file path",
    )
    p_profile.add_argument(
        "args", nargs="*",
        help="program arguments (default: the benchmark's paper workload)",
    )
    p_profile.add_argument("--cores", type=int, default=16)
    p_profile.add_argument("--seed", type=int, default=0)
    p_profile.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes for the layout search (note: the sim.* "
             "buckets are only visible with 1 — pool workers profile "
             "compute as a single search.worker_compute phase)",
    )
    p_profile.add_argument(
        "--iterations", type=int, default=10, metavar="N",
        help="anneal iteration budget (small default keeps runs short)",
    )
    p_profile.add_argument(
        "--evaluations", type=int, default=600, metavar="N",
        help="anneal simulation budget",
    )
    p_profile.add_argument(
        "--no-delta-sim", action="store_true",
        help="disable incremental delta re-simulation (for before/after "
             "profiling; results are bit-identical either way)",
    )
    p_profile.add_argument(
        "-O", "--optimize", action="store_true",
        help="run the scalar IR optimization passes",
    )
    p_profile.add_argument(
        "--top", type=int, default=15, metavar="N",
        help="rows in the hottest-by-self-time table",
    )
    p_profile.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the repro.obs/profile-v1 JSON artifact here",
    )
    p_profile.add_argument(
        "--overhead", action="store_true",
        help="rerun the pipeline unprofiled, record the profiler's "
             "overhead fraction in the artifact, and check the results "
             "are identical either way",
    )
    p_profile.add_argument(
        "--overhead-runs", type=int, default=2, metavar="N",
        help="runs per mode for --overhead (min-of-N walls; single runs "
             "carry machine noise larger than the overhead itself)",
    )
    p_profile.set_defaults(func=_cmd_profile)

    p_obs = sub.add_parser(
        "obs", help="validate or summarize an exported observability artifact"
    )
    obs_sub = p_obs.add_subparsers(dest="obs_command", required=True)
    p_obs_validate = obs_sub.add_parser(
        "validate",
        help="schema-check one exported file (JSON artifact or "
             "Prometheus text); nonzero exit on any violation",
    )
    p_obs_validate.add_argument("file")
    p_obs_validate.set_defaults(func=_cmd_obs)
    p_obs_summarize = obs_sub.add_parser(
        "summarize", help="one screen of text describing a validated export"
    )
    p_obs_summarize.add_argument("file")
    p_obs_summarize.set_defaults(func=_cmd_obs)

    p_serve = sub.add_parser(
        "serve", help="start the synthesis daemon (repro.serve)"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0,
        help="listening port (0 picks an ephemeral one, announced on stderr)",
    )
    p_serve.add_argument(
        "--cache", metavar="FILE", default=None,
        help="persist the shared simulation cache here (atomic writes; "
             "restored on restart, so repeated requests stay warm)",
    )
    p_serve.add_argument(
        "--max-concurrency", type=int, default=2, metavar="N",
        help="heavy requests executing at once",
    )
    p_serve.add_argument(
        "--queue-limit", type=int, default=8, metavar="N",
        help="heavy requests allowed to wait; beyond this the daemon "
             "load-sheds with an 'overloaded' error",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes per layout search (bit-identical results)",
    )
    p_serve.add_argument(
        "--cache-entries", type=int, default=None, metavar="N",
        help="LRU bound per context cache (default: unbounded)",
    )
    p_serve.add_argument(
        "--flush-interval", type=float, default=0.25, metavar="SECONDS",
        help="write-behind flush period for the persistent cache",
    )
    p_serve.add_argument(
        "--request-deadline", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per heavy request; past it the daemon "
             "answers 'deadline_exceeded' and cancels the execution "
             "cooperatively (default: unbounded)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=5.0, metavar="SECONDS",
        help="on shutdown, answer in-flight requests for up to this long "
             "before cancelling them",
    )
    p_serve.add_argument(
        "--idle-timeout", type=float, default=300.0, metavar="SECONDS",
        help="close connections silent for this long",
    )
    p_serve.add_argument(
        "--allow-chaos", action="store_true",
        help="accept the 'inject' fault-point operation (testing only)",
    )
    p_serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="N",
        help="also serve GET /metrics (Prometheus text), /healthz, and "
             "/profilez over HTTP on this port (0 picks an ephemeral "
             "one, announced on stderr)",
    )
    p_serve.add_argument(
        "--no-profile", action="store_true",
        help="skip installing the daemon's wall-clock profiler "
             "(disables /profilez and the repro_profile_* series)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_request = sub.add_parser(
        "request", help="send one request to a running daemon"
    )
    p_request.add_argument(
        "op",
        choices=(
            "ping", "metrics", "flush", "shutdown",
            "compile", "profile", "synthesize", "simulate",
        ),
    )
    p_request.add_argument("file", nargs="?", default=None)
    p_request.add_argument("args", nargs="*")
    p_request.add_argument("--host", default="127.0.0.1")
    p_request.add_argument("--port", type=int, default=None)
    p_request.add_argument("--timeout", type=float, default=300.0)
    p_request.add_argument("--cores", type=int, default=8)
    p_request.add_argument("--seed", type=int, default=0)
    p_request.add_argument("--mesh-width", type=int, default=None)
    p_request.add_argument("--max-iterations", type=int, default=None)
    p_request.add_argument("--max-evaluations", type=int, default=None)
    p_request.add_argument(
        "--mapping", metavar="JSON", default=None,
        help="explicit layout for simulate: '{\"Task\": [0, 1], ...}'",
    )
    p_request.add_argument(
        "-O", "--optimize", action="store_true",
        help="run the scalar IR optimization passes",
    )
    p_request.add_argument(
        "--offline", action="store_true",
        help="run the operation in-process instead of contacting a "
             "daemon; stdout is byte-identical to the served result",
    )
    p_request.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="retry the request up to N times across reconnects and "
             "overloaded/draining responses (safe: served results are "
             "deterministic, so a retry can only recover the answer)",
    )
    p_request.add_argument(
        "--deadline", type=int, default=None, metavar="MS",
        help="ask the daemon to abandon the request past this wall-clock "
             "budget (it answers 'deadline_exceeded')",
    )
    p_request.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="trace the request end to end: send a trace_id, collect the "
             "daemon's wall-clock spans from telemetry, and write the "
             "merged client+server Chrome trace here",
    )
    p_request.set_defaults(func=_cmd_request)

    p_netchaos = sub.add_parser(
        "serve-chaos",
        help="sweep seeded network/daemon fault plans against a live "
             "serve subprocess; exit nonzero on any invariant violation",
    )
    p_netchaos.add_argument(
        "plans", type=int, nargs="?", default=8,
        help="number of seeded plans (plan 0 is the fault-free control)",
    )
    p_netchaos.add_argument("--seed", type=int, default=0)
    p_netchaos.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the machine-readable sweep report as JSON",
    )
    p_netchaos.set_defaults(func=_cmd_serve_chaos)

    p_dco = sub.add_parser(
        "dist-coordinator",
        help="decompose a synthesis job into seeded restart shards and "
             "coordinate them across workers (or run the serial baseline)",
    )
    p_dco.add_argument("target", metavar="PROGRAM",
                       help="a .bam file or a benchmark name")
    p_dco.add_argument("args", nargs="*", help="program arguments")
    p_dco.add_argument("--cores", type=int, default=16)
    p_dco.add_argument("--mesh-width", type=int, default=None)
    p_dco.add_argument("--optimize", action="store_true")
    p_dco.add_argument("--no-delta-sim", action="store_true")
    p_dco.add_argument(
        "--restarts", type=int, default=25,
        help="independent annealing restarts = shards (default 25)",
    )
    p_dco.add_argument(
        "--seed", type=int, default=1234,
        help="base seed deriving every shard's search seed",
    )
    p_dco.add_argument("--initial-candidates", type=int, default=1)
    p_dco.add_argument("--max-iterations", type=int, default=12)
    p_dco.add_argument("--max-evaluations", type=int, default=70)
    p_dco.add_argument("--patience", type=int, default=2)
    p_dco.add_argument("--continue-probability", type=float, default=0.5)
    p_dco.add_argument(
        "--serial", action="store_true",
        help="run the single-host serial baseline (no sockets); its "
             "stdout is byte-identical to any distributed run's",
    )
    p_dco.add_argument(
        "--local-workers", type=int, default=0, metavar="N",
        help="spawn N local `dist-worker` subprocesses",
    )
    p_dco.add_argument(
        "--expect-workers", type=int, default=0, metavar="N",
        help="N externally started workers will attach; wait "
             "--degrade-after seconds before degrading to local execution",
    )
    p_dco.add_argument("--host", default="127.0.0.1")
    p_dco.add_argument(
        "--port", type=int, default=0,
        help="listening port (0 = ephemeral; announced on stderr)",
    )
    p_dco.add_argument("--checkpoint", metavar="FILE", default=None,
                       help="write the merged-frontier checkpoint here")
    p_dco.add_argument(
        "--resume", action="store_true",
        help="resume from --checkpoint (a different job's checkpoint "
             "is refused)",
    )
    p_dco.add_argument("--degrade-after", type=float, default=10.0)
    p_dco.add_argument("--lease-floor", type=float, default=10.0)
    p_dco.add_argument("--lease-mult", type=float, default=8.0)
    p_dco.add_argument("--max-retries", type=int, default=5)
    p_dco.add_argument(
        "--chaos-crash", type=int, action="append", default=[],
        metavar="SEQ", help="inject a worker crash on dispatch SEQ",
    )
    p_dco.add_argument(
        "--chaos-hang", type=int, action="append", default=[],
        metavar="SEQ", help="inject a worker hang on dispatch SEQ",
    )
    p_dco.add_argument(
        "--chaos-expire", type=int, action="append", default=[],
        metavar="SEQ", help="force-expire the lease of dispatch SEQ",
    )
    p_dco.add_argument("--metrics-out", metavar="FILE", default=None,
                       help="write the search metrics snapshot (JSON)")
    p_dco.add_argument(
        "--prom-out", metavar="FILE", default=None,
        help="write the repro_dist_* series in Prometheus text format",
    )
    p_dco.set_defaults(func=_cmd_dist_coordinator)

    p_dwk = sub.add_parser(
        "dist-worker",
        help="serve shards to a dist coordinator until it says bye",
    )
    p_dwk.add_argument("--host", default="127.0.0.1")
    p_dwk.add_argument("--port", type=int, required=True)
    p_dwk.add_argument("--name", default=None)
    p_dwk.add_argument(
        "--max-idle", type=float, default=300.0,
        help="seconds of coordinator silence before giving up",
    )
    p_dwk.add_argument("--verbose", action="store_true")
    p_dwk.set_defaults(func=_cmd_dist_worker)

    p_dch = sub.add_parser(
        "dist-chaos",
        help="sweep seeded distributed-search fault plans (worker "
             "crashes/hangs, dropped/garbled connections, forced lease "
             "expiries, coordinator kill+resume) and exit nonzero on any "
             "invariant violation",
    )
    p_dch.add_argument(
        "plans", type=int, nargs="?", default=4,
        help="number of seeded plans (plan 0 is the fault-free control)",
    )
    p_dch.add_argument("--seed", type=int, default=0)
    p_dch.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the machine-readable sweep report as JSON",
    )
    p_dch.set_defaults(func=_cmd_dist_chaos)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except pickle.PickleError as exc:
        # Worker dispatch serializes the compiled program; a pickling
        # failure is an environment problem, not a program error.
        print(
            f"error: cannot serialize work for worker processes: {exc} "
            "(rerun with --workers 1)",
            file=sys.stderr,
        )
        return 3
    except (BambooError, RuntimeBambooError, ScheduleError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
