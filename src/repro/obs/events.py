"""Typed, timestamped machine events and the tracer that collects them.

One :class:`Tracer` accompanies a machine run when observability (or the
legacy string trace) is enabled. The runtime emits one event per
interesting occurrence — task dispatch/commit/preempt/retry, lock
acquire/fail, mail send/receive, run-queue depth changes, heartbeats, and
every fault/recovery phase — in deterministic processing order, so two
runs of the same program under the same seed produce byte-identical event
streams.

Spans
-----

A *span* is one task invocation occupying a core: it opens with a
:class:`TaskDispatch` (carrying the planned ``[start, end)`` window and a
unique ``span`` id) and closes with the matching :class:`TaskCommit` or
:class:`TaskPreempt`. Whenever the machine writes charged-but-unfinished
cycles off (crash, eviction, watchdog preemption) it emits a
:class:`Truncate`, which cuts every occupancy interval of that core at
the write-off point — so replaying the stream with
:func:`occupancy_intervals` reconstructs the core's true busy timeline,
truncations included.

Legacy trace
------------

The pre-observability machine recorded a ``List[str]`` trace of commit
and fault lines. Those strings are now *derived* from the typed stream
(:func:`legacy_line` maps the event kinds the old trace covered to their
exact historical format), so ``MachineConfig.record_trace`` users see
identical lines.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import ClassVar, Dict, List, Optional, Tuple

#: occupancy labels for non-task busy intervals
STALL_LABEL = "(stall)"
HEARTBEAT_LABEL = "(heartbeat)"


@dataclass(frozen=True)
class Event:
    """Base event: something that happened at one simulated cycle."""

    KIND: ClassVar[str] = "?"
    time: int

    @property
    def kind(self) -> str:
        return self.KIND

    def to_json(self) -> Dict[str, object]:
        data = asdict(self)
        data["kind"] = self.KIND
        return data


# -- task lifecycle ------------------------------------------------------------


@dataclass(frozen=True)
class TaskDispatch(Event):
    """An invocation started executing: opens span ``span`` on ``core``.

    ``start``/``end`` are the planned occupancy window (the end moves only
    if the span is truncated); ``formed_at`` is when the invocation was
    formed, so ``start - formed_at`` is its run-queue wait.
    """

    KIND: ClassVar[str] = "dispatch"
    core: int
    task: str
    span: int
    start: int
    end: int
    formed_at: int
    objects: int


@dataclass(frozen=True)
class TaskCommit(Event):
    """The invocation's effects committed: closes span ``span``."""

    KIND: ClassVar[str] = "commit"
    core: int
    task: str
    span: int
    exit_id: int


@dataclass(frozen=True)
class TaskPreempt(Event):
    """The watchdog preempted an in-flight invocation (span truncated)."""

    KIND: ClassVar[str] = "preempt"
    core: int
    task: str
    span: int


@dataclass(frozen=True)
class TaskRetry(Event):
    """A preempted invocation's objects re-entered routing with backoff."""

    KIND: ClassVar[str] = "retry"
    core: int
    task: str
    attempt: int
    backoff: int


# -- locks ---------------------------------------------------------------------


@dataclass(frozen=True)
class LockAcquire(Event):
    """All parameter-object lock groups of one invocation were taken."""

    KIND: ClassVar[str] = "lock-acquire"
    core: int
    task: str
    objects: int


@dataclass(frozen=True)
class LockFail(Event):
    """A core with queued work could not lock any ready invocation."""

    KIND: ClassVar[str] = "lock-fail"
    core: int
    queued: int


# -- mail & queues -------------------------------------------------------------


@dataclass(frozen=True)
class MailSend(Event):
    """An object left ``core`` for ``dest`` (a real mesh message)."""

    KIND: ClassVar[str] = "send"
    core: int
    dest: int
    task: str
    latency: int


@dataclass(frozen=True)
class MailRecv(Event):
    """An object was delivered into a parameter set on ``core``."""

    KIND: ClassVar[str] = "recv"
    core: int
    task: str
    param_index: int


@dataclass(frozen=True)
class QueueDepth(Event):
    """The core's ready queue (formed invocations) changed length."""

    KIND: ClassVar[str] = "queue"
    core: int
    depth: int


# -- resilience ----------------------------------------------------------------


@dataclass(frozen=True)
class Heartbeat(Event):
    """A live core emitted a liveness beat, charging ``cost`` cycles from
    ``begin`` (its busy horizon at the time)."""

    KIND: ClassVar[str] = "hb"
    core: int
    begin: int
    cost: int


# -- faults & recovery ---------------------------------------------------------


@dataclass(frozen=True)
class Crash(Event):
    """A core halted (silently under detection-driven resilience)."""

    KIND: ClassVar[str] = "crash"
    core: int
    already_evicted: bool = False


@dataclass(frozen=True)
class Stall(Event):
    """A transient stall froze the core from ``begin`` until ``until``."""

    KIND: ClassVar[str] = "stall"
    core: int
    begin: int
    until: int


@dataclass(frozen=True)
class Detect(Event):
    """The failure detector discovered a silent halt, ``latency`` cycles
    after the crash."""

    KIND: ClassVar[str] = "detect"
    core: int
    latency: int


@dataclass(frozen=True)
class Evict(Event):
    """The detector evicted a live-but-silent core (false suspicion)."""

    KIND: ClassVar[str] = "evict"
    core: int


@dataclass(frozen=True)
class Rejoin(Event):
    """A suspected core's heartbeat resumed; it rejoined the machine."""

    KIND: ClassVar[str] = "rejoin"
    core: int


@dataclass(frozen=True)
class LinkDegradeEvent(Event):
    """The mesh fabric's per-hop latency multiplier changed."""

    KIND: ClassVar[str] = "link"
    multiplier: float


@dataclass(frozen=True)
class Quarantine(Event):
    """A (task, object-group) exhausted its retries and was dead-lettered."""

    KIND: ClassVar[str] = "quarantine"
    task: str
    object_ids: Tuple[int, ...]


@dataclass(frozen=True)
class Truncate(Event):
    """Charged-but-unfinished cycles beyond ``at`` were written off on
    ``core`` (crash, eviction, or watchdog preemption)."""

    KIND: ClassVar[str] = "truncate"
    core: int
    at: int


# -- host-level search supervision ---------------------------------------------
#
# These events are emitted by the *host-side* layout search
# (:mod:`repro.search.supervise` / :mod:`repro.search.checkpoint`), not by
# the simulated machine, so ``time`` is a deterministic host sequence
# number (the dispatch counter, or the annealing iteration) rather than a
# simulated cycle. They ride in the ``repro.obs/search-metrics-v1``
# snapshot's ``events`` list; wall-clock timings are deliberately excluded
# so fault-free snapshots stay byte-comparable across runs.


@dataclass(frozen=True)
class WorkerRetry(Event):
    """A candidate simulation was re-dispatched after a worker failure.

    ``time`` is the global dispatch sequence number at which the failure
    was detected; ``position`` is the task's index within its batch.
    """

    KIND: ClassVar[str] = "worker_retry"
    position: int
    attempt: int
    reason: str  # "deadline" | "broken"


@dataclass(frozen=True)
class PoolRebuild(Event):
    """The supervised evaluator tore down and rebuilt its process pool.

    ``consecutive`` counts pool failures without any collected result so
    far (it resets on progress); reaching the policy's
    ``max_pool_failures`` degrades the evaluator to in-process serial
    simulation.
    """

    KIND: ClassVar[str] = "pool_rebuild"
    consecutive: int
    reason: str  # "deadline" | "broken"


@dataclass(frozen=True)
class CheckpointWritten(Event):
    """The annealer serialized its full search state to disk.

    ``time`` and ``iteration`` are both the iteration boundary the
    checkpoint captures; ``evaluations`` is the simulation budget spent at
    that boundary. The file path is deliberately omitted so snapshots
    from different checkpoint locations remain comparable.
    """

    KIND: ClassVar[str] = "checkpoint_written"
    iteration: int
    evaluations: int


# -- the tracer ----------------------------------------------------------------


class Tracer:
    """Collects the typed event stream of one machine run.

    The machine holds ``tracer = None`` when observability is off and
    guards every emission site, so a disabled run allocates nothing here.
    """

    __slots__ = ("events", "_depths")

    def __init__(self) -> None:
        self.events: List[Event] = []
        self._depths: Dict[int, int] = {}

    def emit(self, event: Event) -> None:
        self.events.append(event)

    def queue_sample(self, time: int, core: int, depth: int) -> None:
        """Records the core's ready-queue length iff it changed (queues
        start empty, so an initial 0 is implied, not emitted)."""
        if self._depths.get(core, 0) == depth:
            return
        self._depths[core] = depth
        self.events.append(QueueDepth(time=time, core=core, depth=depth))

    def legacy_trace(self) -> List[str]:
        """The historical ``List[str]`` trace, re-derived from the typed
        stream — line-for-line identical to what the seed recorded."""
        lines: List[str] = []
        for event in self.events:
            line = legacy_line(event)
            if line is not None:
                lines.append(line)
        return lines


def legacy_line(event: Event) -> Optional[str]:
    """Maps one typed event to its pre-observability trace line (or None
    for event kinds the legacy string trace never covered)."""
    if isinstance(event, TaskCommit):
        return (
            f"{event.time} commit core {event.core} {event.task} "
            f"exit {event.exit_id}"
        )
    if isinstance(event, Crash):
        suffix = " (already evicted)" if event.already_evicted else ""
        return f"{event.time} crash core {event.core}{suffix}"
    if isinstance(event, Detect):
        return (
            f"{event.time} detect core {event.core} dead "
            f"(latency {event.latency})"
        )
    if isinstance(event, Evict):
        return f"{event.time} evict core {event.core} (suspected)"
    if isinstance(event, Rejoin):
        return f"{event.time} rejoin core {event.core}"
    if isinstance(event, Stall):
        return f"{event.time} stall core {event.core} until {event.until}"
    if isinstance(event, TaskPreempt):
        return f"{event.time} watchdog preempt core {event.core} {event.task}"
    if isinstance(event, Quarantine):
        return (
            f"{event.time} quarantine {event.task} "
            f"objects {list(event.object_ids)}"
        )
    return None


# -- occupancy replay ----------------------------------------------------------

#: One busy interval: (start, end, label, span id). ``label`` is the task
#: name, or a marker for non-task occupancy (stalls, heartbeat charges);
#: ``span`` is 0 for non-task intervals.
OccSpan = Tuple[int, int, str, int]


def occupancy_intervals(events: List[Event]) -> Dict[int, List[OccSpan]]:
    """Reconstructs each core's busy timeline from the event stream.

    Every mutation of the machine's per-core busy horizon maps onto this
    replay: dispatches contribute their ``[start, end)`` window, stalls
    and heartbeat charges their frozen/charged windows, and
    :class:`Truncate` events cut everything beyond the write-off point —
    so the result is exactly the cycles each core actually occupied.
    """
    occupancy: Dict[int, List[List[object]]] = {}
    for event in events:
        if isinstance(event, TaskDispatch):
            occupancy.setdefault(event.core, []).append(
                [event.start, event.end, event.task, event.span]
            )
        elif isinstance(event, Stall):
            occupancy.setdefault(event.core, []).append(
                [event.begin, event.until, STALL_LABEL, 0]
            )
        elif isinstance(event, Heartbeat):
            if event.cost:
                occupancy.setdefault(event.core, []).append(
                    [event.begin, event.begin + event.cost, HEARTBEAT_LABEL, 0]
                )
        elif isinstance(event, Truncate):
            for interval in occupancy.get(event.core, ()):
                if interval[1] > event.at:  # type: ignore[operator]
                    interval[1] = max(interval[0], event.at)  # type: ignore[type-var]
    return {
        core: [
            (int(s), int(e), str(label), int(span))
            for s, e, label, span in intervals
            if e > s  # truncated-to-nothing intervals vanish
        ]
        for core, intervals in occupancy.items()
    }
