"""Schema checks and one-screen summaries for exported artifacts.

The repo now exports half a dozen JSON artifact flavors (Chrome traces,
machine metrics, search/serve metrics, profiles, benchmark telemetry)
plus the Prometheus text endpoint. ``repro obs validate <file>`` and
``repro obs summarize <file>`` route any of them through this module so
nobody has to eyeball raw JSON to know whether an export is well-formed.

Identification is by the embedded ``schema`` id (top-level or under
``otherData`` for traces); a document that parses as JSON but carries no
known schema is an error, and a non-JSON file is linted as Prometheus
text exposition.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from . import prof
from .export import validate_chrome_trace
from .metrics import SCHEMA, SEARCH_SCHEMA, SERVE_SCHEMA
from .promexp import validate_prometheus_text

BENCH_SCHEMA = "repro.bench/telemetry-v1"

KNOWN_SCHEMAS = (
    prof.TRACE_SCHEMA,
    SCHEMA,
    SEARCH_SCHEMA,
    SERVE_SCHEMA,
    prof.PROFILE_SCHEMA,
    BENCH_SCHEMA,
)


class ArtifactError(ValueError):
    """A document that fails identification or schema validation."""


def load_artifact(path: str) -> Tuple[str, object]:
    """Reads ``path`` -> (``"json"`` | ``"prometheus"``, payload)."""
    with open(path) as handle:
        text = handle.read()
    try:
        return "json", json.loads(text)
    except json.JSONDecodeError:
        return "prometheus", text


def identify(doc: object) -> str:
    """The schema id of a parsed JSON artifact."""
    if isinstance(doc, dict):
        schema = doc.get("schema")
        if isinstance(schema, str):
            return schema
        other = doc.get("otherData")
        if isinstance(other, dict) and isinstance(other.get("schema"), str):
            return other["schema"]
        if "traceEvents" in doc:
            return prof.TRACE_SCHEMA
    raise ArtifactError(
        "unrecognized artifact: no 'schema' id "
        f"(known: {', '.join(KNOWN_SCHEMAS)})"
    )


def _require(doc: dict, keys: Tuple[str, ...], what: str) -> None:
    missing = [key for key in keys if key not in doc]
    if missing:
        raise ArtifactError(f"{what}: missing keys {missing}")


def _validate_metrics(doc: dict) -> Dict[str, object]:
    _require(doc, ("accounting", "counters", "histograms"), SCHEMA)
    accounting = doc["accounting"]
    totals = accounting.get("totals", {})
    total = sum(totals.values())
    if total != accounting.get("makespan_x_cores"):
        raise ArtifactError(
            f"{SCHEMA}: cycle accounting does not tile "
            f"({total} != {accounting.get('makespan_x_cores')})"
        )
    return {"accounting": totals, "counters": len(doc["counters"])}


def _validate_search_metrics(doc: dict) -> Dict[str, object]:
    _require(
        doc,
        ("workers", "evaluations", "cache_hits", "requested_evaluations",
         "cache_hit_rate"),
        SEARCH_SCHEMA,
    )
    if doc["requested_evaluations"] != doc["evaluations"] + doc["cache_hits"]:
        raise ArtifactError(
            f"{SEARCH_SCHEMA}: requested != evaluations + cache_hits"
        )
    if not 0.0 <= doc["cache_hit_rate"] <= 1.0:
        raise ArtifactError(f"{SEARCH_SCHEMA}: cache_hit_rate out of [0,1]")
    cache = doc.get("sim_cache")
    if cache and cache["lookups"] != cache["hits"] + cache["misses"]:
        raise ArtifactError(f"{SEARCH_SCHEMA}: sim_cache lookups don't tile")
    return {
        "workers": doc["workers"],
        "evaluations": doc["evaluations"],
        "cache_hit_rate": doc["cache_hit_rate"],
    }


def _validate_serve_metrics(doc: dict) -> Dict[str, object]:
    _require(doc, ("counters", "gauges", "histograms"), SERVE_SCHEMA)
    rate = doc.get("cache_hit_rate")
    if rate is not None and not 0.0 <= rate <= 1.0:
        raise ArtifactError(f"{SERVE_SCHEMA}: cache_hit_rate out of [0,1]")
    for name, summary in doc["histograms"].items():
        if summary["count"] < 0 or summary["sum"] < 0:
            raise ArtifactError(f"{SERVE_SCHEMA}: negative histogram {name}")
    return {
        "requests": doc["counters"].get("serve_requests", 0),
        "histograms": len(doc["histograms"]),
    }


def _check_profile_node(node: dict, path: str) -> int:
    for key in ("name", "count", "total_ns", "self_ns", "children"):
        if key not in node:
            raise ArtifactError(
                f"{prof.PROFILE_SCHEMA}: node {path or '<root>'} missing {key}"
            )
    if node["count"] < 0 or node["total_ns"] < 0:
        raise ArtifactError(
            f"{prof.PROFILE_SCHEMA}: negative accounting at {path}"
        )
    nodes = 1
    for child in node["children"]:
        nodes += _check_profile_node(child, f"{path}/{child['name']}")
    return nodes


def _validate_profile(doc: dict) -> Dict[str, object]:
    _require(doc, ("phases", "counters", "threads"), prof.PROFILE_SCHEMA)
    nodes = 0
    for node in doc["phases"]:
        nodes += _check_profile_node(node, node.get("name", "?"))
    summary: Dict[str, object] = {"phases": nodes, "threads": doc["threads"]}
    cov = prof.coverage(doc)
    if cov is not None:
        summary["coverage"] = round(cov, 4)
    return summary


def _validate_bench_telemetry(doc: dict) -> Dict[str, object]:
    _require(doc, ("experiment",), BENCH_SCHEMA)
    meta = doc.get("meta")
    if meta is not None:
        _require(
            meta, ("timestamp_utc", "python", "cpu_count"), f"{BENCH_SCHEMA}.meta"
        )
    return {"experiment": doc["experiment"], "stamped": meta is not None}


def validate_artifact(path: str) -> Dict[str, object]:
    """Validates one exported file; raises :class:`ArtifactError` (or the
    underlying validator's :class:`ValueError`) on any violation and
    returns ``{"schema", "summary"}``."""
    kind, payload = load_artifact(path)
    if kind == "prometheus":
        return {
            "schema": "prometheus-text",
            "summary": validate_prometheus_text(payload),
        }
    schema = identify(payload)
    if schema == prof.TRACE_SCHEMA:
        summary = validate_chrome_trace(payload)
    elif schema == SCHEMA:
        summary = _validate_metrics(payload)
    elif schema == SEARCH_SCHEMA:
        summary = _validate_search_metrics(payload)
    elif schema == SERVE_SCHEMA:
        summary = _validate_serve_metrics(payload)
    elif schema == prof.PROFILE_SCHEMA:
        summary = _validate_profile(payload)
    elif schema == BENCH_SCHEMA:
        summary = _validate_bench_telemetry(payload)
    else:
        raise ArtifactError(f"unknown schema {schema!r}")
    return {"schema": schema, "summary": summary}


def summarize_artifact(path: str) -> str:
    """One screen of text describing a validated artifact."""
    kind, payload = load_artifact(path)
    if kind == "prometheus":
        summary = validate_prometheus_text(payload)
        return (
            f"prometheus text exposition: {summary['families']} families, "
            f"{summary['samples']} samples "
            f"({summary['histograms']} histograms)"
        )

    schema = identify(payload)
    lines: List[str] = [f"schema: {schema}"]
    if schema == prof.PROFILE_SCHEMA:
        lines.append(prof.render_report(payload, top=10))
    elif schema == prof.TRACE_SCHEMA:
        summary = validate_chrome_trace(payload)
        other = payload.get("otherData", {})
        lines.append(
            f"{summary['spans']} spans, {summary['instants']} instants, "
            f"{summary['counters']} counter samples on "
            f"{len(summary['tracks'])} tracks"
        )
        if other.get("makespan") is not None:
            lines.append(f"makespan: {other['makespan']} cycles")
        if other.get("trace_id"):
            lines.append(f"trace_id: {other['trace_id']}")
    elif schema == SCHEMA:
        accounting = payload["accounting"]
        lines.append(f"cycle accounting: {accounting['totals']}")
        lines.append(
            f"counters: { {k: v for k, v in sorted(payload['counters'].items())} }"
        )
    elif schema == SEARCH_SCHEMA:
        for key in ("workers", "wall_seconds", "evaluations", "cache_hits",
                    "cache_hit_rate", "pruned_evaluations"):
            if key in payload:
                lines.append(f"{key}: {payload[key]}")
    elif schema == SERVE_SCHEMA:
        lines.append(f"counters: {payload['counters']}")
        if "cache_hit_rate" in payload:
            lines.append(f"cache_hit_rate: {payload['cache_hit_rate']}")
    elif schema == BENCH_SCHEMA:
        for key in ("experiment", "makespan", "busy_fraction"):
            if key in payload:
                lines.append(f"{key}: {payload[key]}")
        meta = payload.get("meta")
        if meta:
            lines.append(
                f"meta: sha={meta.get('git_sha')} at "
                f"{meta.get('timestamp_utc')} "
                f"(py {meta.get('python')}, {meta.get('cpu_count')} cpus)"
            )
    else:
        raise ArtifactError(f"unknown schema {schema!r}")
    return "\n".join(lines)
