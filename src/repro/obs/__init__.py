"""Observability: structured tracing, metrics, and timeline export.

The paper's whole synthesis loop (§5-§6) is driven by measurement —
single-core profiles, simulated traces, critical-path analysis — and this
package gives the *machine* the same treatment: every dispatch, commit,
lock failure, message, heartbeat, and fault/recovery phase becomes a
typed, timestamped event (:mod:`repro.obs.events`); a metrics registry
derives utilization, queue depths, latency histograms, and an end-of-run
cycle accounting that is machine-checked to tile the run exactly
(:mod:`repro.obs.metrics`); and the event stream exports to Chrome
trace-event JSON loadable in Perfetto (:mod:`repro.obs.export`).

Observability is strictly pay-for-what-you-use: with
``MachineConfig.observe`` off (the default) no tracer is installed, no
per-event allocation happens, and a run is bit-identical to one without
this package.
"""

from .events import (
    CheckpointWritten,
    Event,
    PoolRebuild,
    Tracer,
    WorkerRetry,
    legacy_line,
    occupancy_intervals,
)
from .export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from .metrics import (
    MetricsRegistry,
    build_metrics,
    build_search_metrics,
    build_serve_metrics,
    cycle_accounting,
)

__all__ = [
    "CheckpointWritten",
    "Event",
    "MetricsRegistry",
    "PoolRebuild",
    "Tracer",
    "WorkerRetry",
    "build_metrics",
    "build_search_metrics",
    "build_serve_metrics",
    "chrome_trace",
    "cycle_accounting",
    "legacy_line",
    "occupancy_intervals",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_snapshot",
]
