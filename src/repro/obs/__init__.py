"""Observability: structured tracing, metrics, and timeline export.

The paper's whole synthesis loop (§5-§6) is driven by measurement —
single-core profiles, simulated traces, critical-path analysis — and this
package gives the *machine* the same treatment: every dispatch, commit,
lock failure, message, heartbeat, and fault/recovery phase becomes a
typed, timestamped event (:mod:`repro.obs.events`); a metrics registry
derives utilization, queue depths, latency histograms, and an end-of-run
cycle accounting that is machine-checked to tile the run exactly
(:mod:`repro.obs.metrics`); and the event stream exports to Chrome
trace-event JSON loadable in Perfetto (:mod:`repro.obs.export`).

Observability is strictly pay-for-what-you-use: with
``MachineConfig.observe`` off (the default) no tracer is installed, no
per-event allocation happens, and a run is bit-identical to one without
this package.
"""

from . import prof
from .artifacts import (
    ArtifactError,
    identify,
    load_artifact,
    summarize_artifact,
    validate_artifact,
)
from .events import (
    CheckpointWritten,
    Event,
    PoolRebuild,
    Tracer,
    WorkerRetry,
    legacy_line,
    occupancy_intervals,
)
from .export import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
    write_metrics_snapshot,
)
from .metrics import (
    CYCLE_BUCKETS,
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    build_metrics,
    build_search_metrics,
    build_serve_metrics,
    cycle_accounting,
)
from .prof import PROFILE_SCHEMA, Profiler
from .promexp import render_prometheus, validate_prometheus_text
from .runmeta import run_metadata

__all__ = [
    "ArtifactError",
    "CYCLE_BUCKETS",
    "CheckpointWritten",
    "DEFAULT_BUCKETS",
    "Event",
    "Histogram",
    "MetricsRegistry",
    "PROFILE_SCHEMA",
    "PoolRebuild",
    "Profiler",
    "Tracer",
    "WorkerRetry",
    "build_metrics",
    "build_search_metrics",
    "build_serve_metrics",
    "chrome_trace",
    "cycle_accounting",
    "identify",
    "legacy_line",
    "load_artifact",
    "occupancy_intervals",
    "prof",
    "render_prometheus",
    "run_metadata",
    "summarize_artifact",
    "validate_artifact",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_metrics_snapshot",
]
