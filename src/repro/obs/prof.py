"""Hierarchical wall-clock profiler for the synthesis hot path.

Everything else in :mod:`repro.obs` measures *simulated cycles*; this
module measures where real wall-clock time goes, so the ROADMAP's perf
work (incremental simulation, event-loop flattening, pool dispatch) has
a ranked table to aim at instead of guesswork.

Design constraints, in order:

1. **Off means off.** The profiler is a process-global that is ``None``
   by default. Every instrumentation site guards on one attribute load
   (:func:`active`); with no profiler installed the hot path executes
   zero extra bytecode beyond that check, and results are bit-identical
   to an uninstrumented build (test-enforced, same contract as the
   observe/fault/resilience off-modes).
2. **Cheap when on.** Phase names are interned to small integers once at
   import time (:func:`intern_phase`); entering a phase is two list
   appends and a dict probe on pre-built per-thread arrays — no tuple
   keys, no string hashing, no allocation proportional to depth.
3. **Thread-safe by construction.** Each thread accumulates into its own
   node arrays (no locks on the hot path); :meth:`Profiler.snapshot`
   merges the per-thread trees by phase-name path.

The data model is a tree of *phase nodes*. A node accumulates
``count`` (times entered), ``total_ns`` (wall clock inside the phase,
children included) and ``self_ns`` (wall clock minus in-thread
children). Externally measured time — simulator-internal buckets
flushed at end of run, worker-process compute reported over IPC — is
attached with :meth:`Profiler.add_time`: *exclusive* buckets were
measured inside the parent's wall and are subtracted from its self
time; *non-exclusive* buckets (cross-process compute) overlap the
parent's wait and leave its self time alone, which is exactly what
makes ``search.dispatch`` self time ≈ IPC overhead.

Snapshots serialize as ``repro.obs/profile-v1`` and render as a
self/cumulative table (:func:`render_report`). With ``record_spans``
on, every closed phase also records a bounded ``(name, start, dur)``
span; :func:`span_trace_events` turns those into a wall-clock track for
the Chrome-trace exporter, and :func:`build_request_trace` merges a
client span with the server-side spans echoed in serve telemetry into
one Perfetto-loadable document per ``trace_id``.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

PROFILE_SCHEMA = "repro.obs/profile-v1"
TRACE_SCHEMA = "repro.obs/chrome-trace-v1"

# -- phase-name interning ----------------------------------------------------

_intern_lock = threading.Lock()
_names: List[str] = []
_keys: Dict[str, int] = {}


def intern_phase(name: str) -> int:
    """Returns the stable small-integer key for a phase name.

    Call once at import time and pass the key to :func:`phase` /
    :meth:`Profiler.add_time` so the hot path never hashes strings.
    """
    with _intern_lock:
        key = _keys.get(name)
        if key is None:
            key = len(_names)
            _names.append(name)
            _keys[name] = key
        return key


def phase_name(key: int) -> str:
    return _names[key]


# -- per-thread accumulation -------------------------------------------------


class _ThreadState:
    """One thread's phase tree: parallel arrays indexed by node id.

    Node 0 is the implicit root (no phase). ``children[node]`` maps a
    phase key to the child node id, so re-entering a known phase is one
    dict probe with an ``int`` key.
    """

    __slots__ = (
        "thread_name",
        "key",
        "children",
        "count",
        "total_ns",
        "self_ns",
        "stack_node",
        "stack_start",
        "stack_child",
        "counters",
        "spans",
        "spans_dropped",
    )

    def __init__(self, thread_name: str):
        self.thread_name = thread_name
        self.key: List[int] = [-1]
        self.children: List[Dict[int, int]] = [{}]
        self.count: List[int] = [0]
        self.total_ns: List[int] = [0]
        self.self_ns: List[int] = [0]
        self.stack_node: List[int] = [0]
        self.stack_start: List[int] = [0]
        self.stack_child: List[int] = [0]
        self.counters: Dict[int, int] = {}
        # (key, start_ns, dur_ns, depth) per *closed* phase
        self.spans: List[Tuple[int, int, int, int]] = []
        self.spans_dropped = 0

    def _child(self, key: int) -> int:
        cur = self.stack_node[-1]
        node = self.children[cur].get(key)
        if node is None:
            node = len(self.key)
            self.children[cur][key] = node
            self.key.append(key)
            self.children.append({})
            self.count.append(0)
            self.total_ns.append(0)
            self.self_ns.append(0)
        return node


class Profiler:
    """A wall-clock phase profiler; install with :func:`install`.

    ``clock`` is injectable (defaults to :func:`time.perf_counter_ns`)
    so tests can assert exact accounting with a fake clock. With
    ``record_spans`` each thread also keeps up to
    ``max_spans_per_thread`` closed spans for trace export; the
    overflow count is reported, never silently dropped.
    """

    def __init__(
        self,
        clock: Callable[[], int] = time.perf_counter_ns,
        record_spans: bool = False,
        max_spans_per_thread: int = 50_000,
    ):
        self._clock = clock
        self.record_spans = record_spans
        self.max_spans_per_thread = max_spans_per_thread
        self._local = threading.local()
        self._states: Dict[int, _ThreadState] = {}
        self._states_lock = threading.Lock()

    # -- hot path ------------------------------------------------------------

    def _state(self) -> _ThreadState:
        state = getattr(self._local, "state", None)
        if state is None:
            thread = threading.current_thread()
            state = _ThreadState(thread.name)
            with self._states_lock:
                self._states[thread.ident or id(thread)] = state
            self._local.state = state
        return state

    def enter(self, key: int) -> None:
        state = self._state()
        node = state._child(key)
        state.stack_node.append(node)
        state.stack_start.append(self._clock())
        state.stack_child.append(0)

    def exit(self) -> None:
        now = self._clock()
        state = self._state()
        node = state.stack_node.pop()
        start = state.stack_start.pop()
        child_ns = state.stack_child.pop()
        elapsed = now - start
        state.count[node] += 1
        state.total_ns[node] += elapsed
        state.self_ns[node] += elapsed - child_ns
        state.stack_child[-1] += elapsed
        if self.record_spans:
            if len(state.spans) < self.max_spans_per_thread:
                state.spans.append(
                    (state.key[node], start, elapsed, len(state.stack_node) - 1)
                )
            else:
                state.spans_dropped += 1

    def add_time(
        self, key: int, ns: int, count: int = 1, exclusive: bool = True
    ) -> None:
        """Attributes externally measured time to a child of the current
        phase.

        ``exclusive`` time was measured on this thread inside the
        current phase's wall (e.g. simulator-internal buckets flushed at
        end of run) and is subtracted from the parent's self time.
        Non-exclusive time overlapped the parent in another process
        (worker compute), so the parent's self time — the wait the
        compute does *not* explain, i.e. IPC — is left alone.
        """
        state = self._state()
        node = state._child(key)
        state.count[node] += count
        state.total_ns[node] += ns
        state.self_ns[node] += ns
        if exclusive:
            state.stack_child[-1] += ns

    def add_count(self, key: int, n: int = 1) -> None:
        """Bumps a named counter (per-thread, merged at snapshot)."""
        state = self._state()
        counters = state.counters
        counters[key] = counters.get(key, 0) + n

    # -- snapshot ------------------------------------------------------------

    def _merged_tree(self) -> Dict[int, dict]:
        with self._states_lock:
            states = list(self._states.values())
        root: Dict[int, dict] = {}

        def fold(state: _ThreadState, node: int, into: Dict[int, dict]) -> None:
            for key, child in state.children[node].items():
                entry = into.get(key)
                if entry is None:
                    entry = {
                        "name": _names[key],
                        "count": 0,
                        "total_ns": 0,
                        "self_ns": 0,
                        "children": {},
                    }
                    into[key] = entry
                entry["count"] += state.count[child]
                entry["total_ns"] += state.total_ns[child]
                entry["self_ns"] += state.self_ns[child]
                fold(state, child, entry["children"])

        for state in states:
            fold(state, 0, root)
        return root

    @staticmethod
    def _finalize(children: Dict[int, dict]) -> List[dict]:
        out = []
        for entry in children.values():
            entry = dict(entry)
            entry["children"] = Profiler._finalize(entry["children"])
            out.append(entry)
        out.sort(key=lambda e: (-e["total_ns"], e["name"]))
        return out

    def snapshot(
        self,
        wall_ns: Optional[int] = None,
        meta: Optional[dict] = None,
        extra: Optional[dict] = None,
    ) -> dict:
        """The mergeable ``repro.obs/profile-v1`` document.

        Only *closed* phases are included: a snapshot taken while other
        threads are mid-phase (the ``/profilez`` endpoint) reflects work
        committed so far, never a torn frame.
        """
        with self._states_lock:
            states = list(self._states.values())
        counters: Dict[str, int] = {}
        recorded = 0
        dropped = 0
        for state in states:
            for key, value in state.counters.items():
                name = _names[key]
                counters[name] = counters.get(name, 0) + value
            recorded += len(state.spans)
            dropped += state.spans_dropped
        doc = {
            "schema": PROFILE_SCHEMA,
            "wall_ns": wall_ns,
            "phases": self._finalize(self._merged_tree()),
            "counters": dict(sorted(counters.items())),
            "threads": len(states),
            "spans_recorded": recorded,
            "spans_dropped": dropped,
        }
        if meta is not None:
            doc["meta"] = meta
        if extra:
            doc.update(extra)
        return doc

    # -- span export ---------------------------------------------------------

    def thread_spans(self) -> Dict[str, List[dict]]:
        """All recorded spans, per thread, as JSON-ready dicts."""
        with self._states_lock:
            states = list(self._states.values())
        out: Dict[str, List[dict]] = {}
        for index, state in enumerate(states):
            label = f"{state.thread_name}#{index}"
            out[label] = span_dicts(state.spans)
        return out


def span_dicts(
    spans: Iterable[Tuple[int, int, int, int]], base_ns: Optional[int] = None
) -> List[dict]:
    """Raw span tuples -> JSON-ready dicts (ns, relative to ``base_ns``)."""
    spans = list(spans)
    if base_ns is None:
        base_ns = min((s[1] for s in spans), default=0)
    return [
        {
            "name": _names[key],
            "start_ns": start - base_ns,
            "dur_ns": dur,
            "depth": depth,
        }
        for key, start, dur, depth in spans
    ]


# -- the process-global ------------------------------------------------------

_ACTIVE: Optional[Profiler] = None


def install(profiler: Profiler) -> Optional[Profiler]:
    """Makes ``profiler`` the process-global; returns the previous one
    so callers can restore it (servers in tests nest)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = profiler
    return previous


def uninstall(previous: Optional[Profiler] = None) -> None:
    global _ACTIVE
    _ACTIVE = previous


def active() -> Optional[Profiler]:
    return _ACTIVE


@contextmanager
def profiled(
    record_spans: bool = False, clock: Callable[[], int] = time.perf_counter_ns
):
    """Installs a fresh profiler for the dynamic extent of the block."""
    profiler = Profiler(clock=clock, record_spans=record_spans)
    previous = install(profiler)
    try:
        yield profiler
    finally:
        uninstall(previous)


@contextmanager
def phase(key: int):
    """Times one phase of the active profiler; no-op when none is
    installed. ``key`` comes from :func:`intern_phase` (strings are
    accepted for interactive use)."""
    profiler = _ACTIVE
    if profiler is None:
        yield None
        return
    if type(key) is str:
        key = intern_phase(key)
    profiler.enter(key)
    try:
        yield profiler
    finally:
        profiler.exit()


@contextmanager
def collect_spans(reset: bool = False):
    """Captures the current thread's spans closed inside the block.

    The daemon wraps each request body in this (with ``reset=True`` so
    a long-lived worker thread's span buffer never grows across
    requests) and ships the slice back in telemetry.
    """
    out: List[dict] = []
    profiler = _ACTIVE
    if profiler is None or not profiler.record_spans:
        yield out
        return
    state = profiler._state()
    if reset:
        state.spans = []
        state.spans_dropped = 0
    mark = len(state.spans)
    try:
        yield out
    finally:
        out.extend(span_dicts(state.spans[mark:]))


# -- reporting ---------------------------------------------------------------


def flatten(doc: dict) -> List[dict]:
    """Depth-first flat rows (``path``, ``depth``, counters) of a
    profile-v1 document."""
    rows: List[dict] = []

    def walk(nodes: List[dict], prefix: str, depth: int) -> None:
        for node in nodes:
            path = f"{prefix}/{node['name']}" if prefix else node["name"]
            rows.append(
                {
                    "path": path,
                    "name": node["name"],
                    "depth": depth,
                    "count": node["count"],
                    "total_ns": node["total_ns"],
                    "self_ns": node["self_ns"],
                }
            )
            walk(node["children"], path, depth + 1)

    walk(doc.get("phases", []), "", 0)
    return rows


def coverage(doc: dict) -> Optional[float]:
    """Fraction of measured wall explained by top-level phases."""
    wall = doc.get("wall_ns")
    if not wall:
        return None
    return sum(node["total_ns"] for node in doc.get("phases", [])) / wall


def _ms(ns: int) -> str:
    if abs(ns) >= 1_000_000_000:
        return f"{ns / 1e9:9.3f}s "
    return f"{ns / 1e6:9.3f}ms"


def render_report(doc: dict, top: int = 30) -> str:
    """The human-readable self/cumulative table for one profile."""
    lines: List[str] = []
    wall = doc.get("wall_ns")
    head = []
    if wall:
        head.append(f"wall {wall / 1e9:.3f}s")
        cov = coverage(doc)
        if cov is not None:
            head.append(f"top-level coverage {cov:.1%}")
    head.append(f"threads {doc.get('threads', '?')}")
    lines.append("  ".join(head))
    lines.append("")

    rows = flatten(doc)
    lines.append(f"{'total':>11} {'self':>11} {'count':>9}  phase")
    for row in rows:
        indent = "  " * row["depth"]
        lines.append(
            f"{_ms(row['total_ns'])} {_ms(max(0, row['self_ns']))} "
            f"{row['count']:9d}  {indent}{row['name']}"
        )

    hottest = sorted(rows, key=lambda r: -r["self_ns"])[:top]
    if hottest:
        lines.append("")
        lines.append(f"hottest by self time (top {len(hottest)}):")
        for row in hottest:
            share = (
                f" {row['self_ns'] / wall:6.1%}" if wall else ""
            )
            lines.append(
                f"{_ms(max(0, row['self_ns']))}{share}  {row['path']}"
            )

    counters = doc.get("counters") or {}
    if counters:
        lines.append("")
        lines.append("counters:")
        for name, value in counters.items():
            lines.append(f"{value:>12}  {name}")
    return "\n".join(lines)


# -- Chrome-trace integration ------------------------------------------------


def span_trace_events(
    profiler: Profiler,
    pid: int = 1000,
    process_name: str = "wall clock (profiler)",
) -> List[dict]:
    """Renders recorded spans as a wall-clock track (timestamps in
    microseconds) for merging into a Chrome-trace document via
    ``chrome_trace(..., extra_events=...)``."""
    per_thread = profiler.thread_spans()
    events: List[dict] = [
        {
            "ph": "M",
            "pid": pid,
            "tid": 0,
            "name": "process_name",
            "args": {"name": process_name},
        }
    ]
    for index, (label, spans) in enumerate(sorted(per_thread.items())):
        if not spans:
            continue
        # The trace validator keys tracks by tid alone, so wall-clock
        # tracks must not collide with machine core ids when merged.
        tid = 10_000 + index
        events.append(
            {
                "ph": "M",
                "pid": pid,
                "tid": tid,
                "name": "thread_name",
                "args": {"name": label},
            }
        )
        for span in spans:
            events.append(
                {
                    "name": span["name"],
                    "cat": "wallclock",
                    "ph": "X",
                    "ts": span["start_ns"] / 1000.0,
                    "dur": span["dur_ns"] / 1000.0,
                    "pid": pid,
                    "tid": tid,
                    "args": {},
                }
            )
    return events


def build_request_trace(
    trace_id: str,
    client_span: dict,
    server_spans: Sequence[dict],
    server_name: str = "daemon",
) -> dict:
    """Merges one request's client span and server-side spans into a
    single Perfetto-loadable document.

    Client and server clocks are different domains; the server track is
    centered inside the client span (what matters in the timeline is
    the relative width — how much of the client's wait the server's
    pipeline explains)."""
    client_dur = client_span["dur_ns"]
    server_spans = sorted(server_spans, key=lambda s: (s["start_ns"], -s["dur_ns"]))
    if server_spans:
        server_base = min(s["start_ns"] for s in server_spans)
        server_end = max(s["start_ns"] + s["dur_ns"] for s in server_spans)
        server_total = server_end - server_base
    else:
        server_base = server_total = 0
    offset_ns = max(0, (client_dur - server_total) // 2)

    events: List[dict] = [
        {"ph": "M", "pid": 0, "tid": 0, "name": "process_name",
         "args": {"name": "client"}},
        {"ph": "M", "pid": 0, "tid": 0, "name": "thread_name",
         "args": {"name": "request"}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "process_name",
         "args": {"name": server_name}},
        {"ph": "M", "pid": 1, "tid": 1, "name": "thread_name",
         "args": {"name": "pipeline"}},
        {
            "name": client_span.get("name", "client.request"),
            "cat": "wallclock",
            "ph": "X",
            "ts": 0.0,
            "dur": client_dur / 1000.0,
            "pid": 0,
            "tid": 0,
            "args": {"trace_id": trace_id},
        },
    ]
    for span in server_spans:
        events.append(
            {
                "name": span["name"],
                "cat": "wallclock",
                "ph": "X",
                "ts": (span["start_ns"] - server_base + offset_ns) / 1000.0,
                "dur": span["dur_ns"] / 1000.0,
                "pid": 1,
                "tid": 1,
                "args": {"trace_id": trace_id},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "time_unit": "us",
            "trace_id": trace_id,
            "kind": "request-trace",
        },
    }


def write_json(path: str, doc: dict) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=2, sort_keys=True)
        handle.write("\n")
