"""Run metadata stamped onto exported artifacts.

Every artifact under ``benchmarks/out/`` (and every profile the CLI
writes) carries the same small provenance block — git sha, UTC
timestamp, python version, cpu count, schema id — so the JSON documents
accumulated across PRs form a comparable perf trajectory instead of a
pile of context-free numbers.
"""

from __future__ import annotations

import os
import platform
import subprocess
from datetime import datetime, timezone
from typing import Dict, Optional


def _git_sha() -> Optional[str]:
    """Best-effort commit id: CI env vars first, then ``git rev-parse``."""
    for env in ("GITHUB_SHA", "GIT_COMMIT"):
        sha = os.environ.get(env)
        if sha:
            return sha
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = proc.stdout.strip()
    return sha if proc.returncode == 0 and sha else None


def run_metadata(schema: Optional[str] = None) -> Dict[str, object]:
    """The provenance block; pure data, safe to embed in any artifact."""
    meta: Dict[str, object] = {
        "git_sha": _git_sha(),
        "timestamp_utc": datetime.now(timezone.utc).isoformat(
            timespec="seconds"
        ),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "cpu_count": os.cpu_count(),
    }
    if schema is not None:
        meta["schema"] = schema
    return meta
