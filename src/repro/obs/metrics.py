"""Metrics registry and machine-checked end-of-run cycle accounting.

The registry holds three primitive instrument kinds — counters, gauges,
and histograms — and :func:`build_metrics` populates it from a machine
run's typed event stream, deriving:

* per-core **utilization** over each core's live window,
* **run-queue depth** over time (time-weighted mean and peak per core),
* **lock-contention** and **retry** rates,
* per-task **latency histograms** (span durations and queue waits), and
* the end-of-run **cycle accounting**: every (core, cycle) of the run is
  classified as exactly one of *busy* (occupied by a span, stall, or
  heartbeat charge), *blocked* (idle with formed invocations queued —
  lock contention or a stalled dispatch path), *idle* (no runnable
  work), or *dead* (after the core's final death), and the identity

      busy + idle + blocked + dead == makespan x cores

  is checked exactly, along with the instrumentation soundness that
  makes it non-trivial: occupancy intervals must not overlap, must not
  extend past a core's death, queue depths must never go negative, and
  the event-stream counters must reconcile with the machine's own
  statistics (commits vs invocation counts, sends vs message count,
  lock-fail events vs the lock-failure counter).

A violation raises :class:`repro.lang.errors.ScheduleError` — the same
hard-failure treatment the termination invariant gets.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..lang.errors import ScheduleError
from .events import (
    Crash,
    Detect,
    Evict,
    Event,
    Heartbeat,
    LinkDegradeEvent,
    LockAcquire,
    LockFail,
    MailRecv,
    MailSend,
    Quarantine,
    QueueDepth,
    Rejoin,
    Stall,
    TaskCommit,
    TaskDispatch,
    TaskPreempt,
    TaskRetry,
    occupancy_intervals,
)

SCHEMA = "repro.obs/metrics-v1"
SEARCH_SCHEMA = "repro.obs/search-metrics-v1"
SERVE_SCHEMA = "repro.obs/serve-metrics-v1"


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """A point-in-time value (set, not accumulated)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0

    def set(self, value: float) -> None:
        self.value = value


#: Default histogram boundaries, in seconds: sub-millisecond buckets at
#: the bottom (profiler phase latencies live there) up through the
#: multi-second synthesize requests the serve layer measures.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

#: Boundaries for histograms observed in simulated cycles (task
#: latencies, queue waits) rather than seconds.
CYCLE_BUCKETS: Tuple[float, ...] = (
    10, 25, 50, 100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000,
    50_000, 100_000, 250_000, 1_000_000,
)


class Histogram:
    """A distribution of observed values with summary statistics.

    ``buckets`` are upper bounds (ascending; an implicit ``+Inf`` bucket
    is always present) used by :meth:`bucket_counts` for the Prometheus
    exposition and the ``buckets`` key of :meth:`summary`. Boundaries
    are configurable per histogram because the registry mixes unit
    domains: seconds for serve/profiler latencies, simulated cycles for
    machine-run distributions.
    """

    __slots__ = ("name", "values", "buckets")

    def __init__(self, name: str, buckets: Optional[Sequence[float]] = None):
        self.name = name
        self.values: List[float] = []
        bounds = tuple(buckets) if buckets is not None else DEFAULT_BUCKETS
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(
                f"histogram {name!r}: bucket bounds must be a non-empty "
                f"ascending sequence"
            )
        self.buckets = bounds

    def observe(self, value: float) -> None:
        self.values.append(value)

    def bucket_counts(self) -> Dict[str, int]:
        """Cumulative observation counts per upper bound (Prometheus
        ``le`` semantics), including the terminal ``+Inf`` bucket."""
        counts: Dict[str, int] = {}
        ordered = sorted(self.values)
        index = 0
        for bound in self.buckets:
            while index < len(ordered) and ordered[index] <= bound:
                index += 1
            counts[_bucket_label(bound)] = index
        counts["+Inf"] = len(ordered)
        return counts

    def summary(self) -> Dict[str, object]:
        if not self.values:
            return {"count": 0, "sum": 0, "min": 0, "max": 0, "mean": 0,
                    "p50": 0, "p90": 0, "p99": 0,
                    "buckets": self.bucket_counts()}
        ordered = sorted(self.values)
        total = sum(ordered)

        def pct(q: float) -> float:
            index = min(len(ordered) - 1, int(q * len(ordered)))
            return ordered[index]

        return {
            "count": len(ordered),
            "sum": total,
            "min": ordered[0],
            "max": ordered[-1],
            "mean": total / len(ordered),
            "p50": pct(0.50),
            "p90": pct(0.90),
            "p99": pct(0.99),
            "buckets": self.bucket_counts(),
        }


def _bucket_label(bound: float) -> str:
    value = float(bound)
    return str(int(value)) if value.is_integer() else repr(value)


class MetricsRegistry:
    """Named counters, gauges, and histograms (get-or-create semantics)."""

    def __init__(self) -> None:
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        if name not in self.counters:
            self.counters[name] = Counter(name)
        return self.counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self.gauges:
            self.gauges[name] = Gauge(name)
        return self.gauges[name]

    def histogram(
        self, name: str, buckets: Optional[Sequence[float]] = None
    ) -> Histogram:
        """Get-or-create; ``buckets`` only takes effect on creation (the
        first registration of a family fixes its boundaries)."""
        if name not in self.histograms:
            self.histograms[name] = Histogram(name, buckets=buckets)
        return self.histograms[name]

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """A JSON-ready dump of every instrument."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self.counters.items())
            },
            "gauges": {
                name: gauge.value for name, gauge in sorted(self.gauges.items())
            },
            "histograms": {
                name: histogram.summary()
                for name, histogram in sorted(self.histograms.items())
            },
        }


# -- layout-search metrics -----------------------------------------------------


def build_search_metrics(
    *,
    workers: int,
    wall_seconds: float,
    evaluations: int,
    cache_hits: int,
    pruned_evaluations: int,
    cache_stats: Optional[Dict[str, object]],
    registry: Optional[MetricsRegistry] = None,
    supervision: Optional[Dict[str, object]] = None,
    checkpoints_written: int = 0,
    events: Optional[Sequence[object]] = None,
    dist: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The JSON-ready metrics snapshot of one layout-search run.

    The synthesis pipeline calls this with the :mod:`repro.search`
    counters (real simulations, cache hits/misses/evictions, early
    cutoffs) so search telemetry exports through the same pipeline as
    machine metrics — :func:`repro.obs.write_metrics_snapshot` accepts
    either snapshot. When a registry is given, its instruments (e.g. the
    ``sim_cache_*`` counters a :class:`repro.search.SimCache` maintains)
    are folded into the snapshot.

    ``supervision`` is the host-fault supervision summary
    (:meth:`repro.search.SupervisionStats.snapshot`, ``None`` for
    unsupervised runs) and ``events`` the typed host-level events
    (``WorkerRetry``/``PoolRebuild``/``CheckpointWritten``) the run
    emitted; both deliberately carry no wall-clock fields, so fault-free
    snapshots stay byte-comparable across runs.

    ``dist`` is the distributed-search coordinator summary
    (:meth:`repro.search.dist.DistStats.snapshot`, ``None`` for
    single-host runs) — counters only, same no-wall-clock rule; the
    matching ``dist_*`` registry counters export as ``repro_dist_*``
    Prometheus series through :mod:`repro.obs.promexp`.
    """
    requested = evaluations + cache_hits
    snapshot: Dict[str, object] = {
        "schema": SEARCH_SCHEMA,
        "workers": workers,
        "wall_seconds": wall_seconds,
        "evaluations": evaluations,
        "cache_hits": cache_hits,
        "requested_evaluations": requested,
        "pruned_evaluations": pruned_evaluations,
        "cache_hit_rate": cache_hits / requested if requested else 0.0,
        "sim_cache": cache_stats,
        "supervision": supervision,
        "dist": dist,
        "checkpoints_written": checkpoints_written,
        "events": [
            event.to_json() if hasattr(event, "to_json") else event
            for event in (events or [])
        ],
    }
    if registry is not None:
        snapshot.update(registry.snapshot())
    return snapshot


# -- serving metrics -----------------------------------------------------------


def build_serve_metrics(
    *,
    registry: MetricsRegistry,
    store: Dict[str, object],
    memo: Dict[str, object],
    load_report: Dict[str, object],
    uptime_seconds: float,
    admitted: int,
    capacity: int,
    degraded: bool = False,
    draining: bool = False,
    last_flush_error: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """The JSON-ready metrics snapshot of one synthesis daemon.

    Served through the ``metrics`` operation of :mod:`repro.serve`: the
    registry carries the per-operation request counters and latency
    histograms plus the load-shed/coalesce/deadline/drain counters and
    the ``sim_cache_*`` counters of every context cache;
    ``store``/``memo`` are the :meth:`repro.serve.SimCacheStore.stats`
    and :meth:`repro.serve.ProgramMemo.stats` snapshots, and
    ``load_report`` records what happened to the persistent cache file at
    startup. ``degraded`` is the daemon's persistence-health flag: true
    while the most recent store flush failed (``last_flush_error`` then
    carries the error string and its epoch timestamp).
    """
    requests = registry.counter("serve_requests").value
    shed = registry.counter("serve_shed").value
    hits = registry.counter("serve_cache_hits").value
    evaluations = registry.counter("serve_evaluations").value
    requested = hits + evaluations
    return {
        "schema": SERVE_SCHEMA,
        "uptime_seconds": uptime_seconds,
        "admitted": admitted,
        "capacity": capacity,
        "requests": requests,
        "shed": shed,
        "shed_rate": shed / requests if requests else 0.0,
        "cache_hit_rate": hits / requested if requested else 0.0,
        "degraded": degraded,
        "draining": draining,
        "last_flush_error": last_flush_error,
        "store": store,
        "memo": memo,
        "load_report": load_report,
        **registry.snapshot(),
    }


# -- cycle accounting ----------------------------------------------------------


def _blocked_cycles(
    gaps: Sequence[Tuple[int, int]], samples: Sequence[Tuple[int, int]]
) -> int:
    """Cycles inside ``gaps`` during which the queue-depth step function
    (from ``samples``, an implied 0 before the first) is positive."""
    total = 0
    index = 0
    depth = 0
    for begin, end in gaps:
        while index < len(samples) and samples[index][0] <= begin:
            depth = samples[index][1]
            index += 1
        cursor = begin
        while index < len(samples) and samples[index][0] < end:
            step_time, step_depth = samples[index]
            if depth > 0:
                total += step_time - cursor
            cursor = step_time
            depth = step_depth
            index += 1
        if depth > 0:
            total += end - cursor
    return total


def cycle_accounting(
    events: List[Event],
    makespan: int,
    cores: Sequence[int],
    death_cycles: Dict[int, int],
) -> Dict[int, Dict[str, int]]:
    """Partitions every core's ``[0, makespan)`` into busy / blocked /
    idle / dead and verifies the partition is sound.

    Returns ``{core: {"busy", "blocked", "idle", "dead"}}``; raises
    :class:`ScheduleError` when the instrumentation does not tile the run
    exactly (overlapping occupancy, occupancy past a core's death, a
    negative queue depth, or a negative residual).
    """
    occupancy = occupancy_intervals(events)
    queue_samples: Dict[int, List[Tuple[int, int]]] = {}
    for event in events:
        if isinstance(event, QueueDepth):
            if event.depth < 0:
                raise ScheduleError(
                    f"cycle accounting violated: negative queue depth "
                    f"{event.depth} on core {event.core} at {event.time}"
                )
            queue_samples.setdefault(event.core, []).append(
                (event.time, event.depth)
            )

    problems: List[str] = []
    accounts: Dict[int, Dict[str, int]] = {}
    for core in cores:
        death = death_cycles.get(core)
        dead_start = makespan if death is None else min(death, makespan)
        intervals = sorted(occupancy.get(core, []))
        busy = 0
        gaps: List[Tuple[int, int]] = []
        cursor = 0
        previous_end = 0
        for start, end, _label, _span in intervals:
            if start < previous_end:
                problems.append(
                    f"core {core}: overlapping occupancy at cycle {start}"
                )
            previous_end = max(previous_end, end)
            # An interval straddling the core's death means a missing
            # truncation (charged cycles survived the write-off). Tails
            # past the *makespan* on live cores are legitimate — heartbeat
            # charges and stall freezes can outlast the last real event —
            # and simply clip below. Post-death intervals on an evicted
            # core (a suspected core can still stall) clip to nothing.
            if death is not None and start < dead_start < end:
                problems.append(
                    f"core {core}: occupancy straddles death "
                    f"([{start}, {end}) vs death {dead_start})"
                )
            clipped_start = min(max(0, start), dead_start)
            clipped_end = min(end, dead_start)
            if clipped_end > clipped_start:
                busy += clipped_end - clipped_start
                if clipped_start > cursor:
                    gaps.append((cursor, clipped_start))
                cursor = max(cursor, clipped_end)
        if cursor < dead_start:
            gaps.append((cursor, dead_start))
        blocked = _blocked_cycles(gaps, queue_samples.get(core, []))
        idle = dead_start - busy - blocked
        dead = makespan - dead_start
        if idle < 0:
            problems.append(
                f"core {core}: negative idle residual ({idle}) — busy "
                f"{busy} + blocked {blocked} exceed the live window"
            )
        accounts[core] = {
            "busy": busy,
            "blocked": blocked,
            "idle": idle,
            "dead": dead,
        }
        if busy + blocked + idle + dead != makespan:
            problems.append(
                f"core {core}: busy+blocked+idle+dead == "
                f"{busy + blocked + idle + dead} != makespan {makespan}"
            )
    if problems:
        raise ScheduleError(
            "cycle accounting violated: " + "; ".join(problems)
        )
    return accounts


def _legacy_busy_fraction(
    core_busy: Dict[int, int], makespan: int, deaths: Dict[int, int]
) -> float:
    """``MachineResult.busy_fraction`` recomputed term for term, so the
    two code paths can be asserted to agree."""
    if not core_busy or makespan == 0:
        return 0.0
    live_window = 0
    for core in core_busy:
        live_window += min(deaths.get(core, makespan), makespan)
    if live_window == 0:
        return 0.0
    return sum(core_busy.values()) / live_window


def _queue_depth_aggregates(
    events: List[Event], makespan: int
) -> Dict[int, Dict[str, float]]:
    """Per-core time-weighted mean and peak of the ready-queue depth."""
    samples: Dict[int, List[Tuple[int, int]]] = {}
    for event in events:
        if isinstance(event, QueueDepth):
            samples.setdefault(event.core, []).append((event.time, event.depth))
    aggregates: Dict[int, Dict[str, float]] = {}
    for core, series in samples.items():
        area = 0
        peak = 0
        depth = 0
        cursor = 0
        for time, new_depth in series:
            clipped = min(max(time, 0), makespan)
            area += depth * (clipped - cursor)
            cursor = clipped
            depth = new_depth
            peak = max(peak, new_depth)
        area += depth * max(0, makespan - cursor)
        aggregates[core] = {
            "mean_depth": area / makespan if makespan else 0.0,
            "peak_depth": float(peak),
        }
    return aggregates


def build_metrics(
    events: List[Event],
    *,
    makespan: int,
    core_busy: Dict[int, int],
    death_cycles: Optional[Dict[int, int]],
    invocations: Dict[str, int],
    messages: int,
    lock_failures: int,
    busy_fraction: float,
) -> Dict[str, object]:
    """Derives the full metrics snapshot for one observed machine run.

    Verifies the cycle-accounting invariant and reconciles the event
    stream against the machine's own statistics; any disagreement raises
    :class:`ScheduleError`. The returned dict is JSON-serializable.
    """
    deaths = death_cycles or {}
    cores = sorted(core_busy)
    registry = MetricsRegistry()

    span_starts: Dict[int, TaskDispatch] = {}
    for event in events:
        if isinstance(event, TaskDispatch):
            registry.counter("task_dispatches").inc()
            span_starts[event.span] = event
            registry.histogram("queue_wait", buckets=CYCLE_BUCKETS).observe(
                event.start - event.formed_at
            )
        elif isinstance(event, TaskCommit):
            registry.counter("task_commits").inc()
            dispatch = span_starts.get(event.span)
            if dispatch is not None:
                latency = event.time - dispatch.start
                registry.histogram("task_latency", buckets=CYCLE_BUCKETS).observe(latency)
                registry.histogram(
                    f"task_latency[{event.task}]", buckets=CYCLE_BUCKETS
                ).observe(
                    latency
                )
        elif isinstance(event, TaskPreempt):
            registry.counter("task_preemptions").inc()
        elif isinstance(event, TaskRetry):
            registry.counter("task_retries").inc()
        elif isinstance(event, LockAcquire):
            registry.counter("lock_acquires").inc()
        elif isinstance(event, LockFail):
            registry.counter("lock_failures").inc()
        elif isinstance(event, MailSend):
            registry.counter("mail_sent").inc()
        elif isinstance(event, MailRecv):
            registry.counter("mail_received").inc()
        elif isinstance(event, Heartbeat):
            registry.counter("heartbeats").inc()
        elif isinstance(event, Crash):
            registry.counter("crashes").inc()
        elif isinstance(event, Stall):
            registry.counter("stalls").inc()
        elif isinstance(event, Detect):
            registry.counter("detections").inc()
            registry.histogram(
                "detection_latency", buckets=CYCLE_BUCKETS
            ).observe(event.latency)
        elif isinstance(event, Evict):
            registry.counter("evictions").inc()
        elif isinstance(event, Rejoin):
            registry.counter("rejoins").inc()
        elif isinstance(event, LinkDegradeEvent):
            registry.counter("link_events").inc()
        elif isinstance(event, Quarantine):
            registry.counter("quarantines").inc()

    # -- reconcile against the machine's own statistics ----------------------
    problems: List[str] = []
    commits = registry.counter("task_commits").value
    if commits != sum(invocations.values()):
        problems.append(
            f"commit events ({commits}) != invocation counts "
            f"({sum(invocations.values())})"
        )
    sends = registry.counter("mail_sent").value
    if sends != messages:
        problems.append(f"send events ({sends}) != messages ({messages})")
    fails = registry.counter("lock_failures").value
    if fails != lock_failures:
        problems.append(
            f"lock-fail events ({fails}) != lock failures ({lock_failures})"
        )
    recomputed = _legacy_busy_fraction(core_busy, makespan, deaths)
    if recomputed != busy_fraction:
        problems.append(
            f"busy_fraction disagreement: metrics {recomputed} vs "
            f"MachineResult {busy_fraction}"
        )
    if problems:
        raise ScheduleError("metrics reconciliation failed: " + "; ".join(problems))

    # -- accounting + derived gauges -----------------------------------------
    accounts = cycle_accounting(events, makespan, cores, deaths)
    dispatches = registry.counter("task_dispatches").value
    registry.gauge("lock_contention_rate").set(
        fails / (dispatches + fails) if (dispatches + fails) else 0.0
    )
    registry.gauge("retry_rate").set(
        registry.counter("task_retries").value / dispatches
        if dispatches
        else 0.0
    )

    queue_aggregates = _queue_depth_aggregates(events, makespan)
    per_core: Dict[int, Dict[str, object]] = {}
    for core in cores:
        account = accounts[core]
        live_window = makespan - account["dead"]
        utilization = account["busy"] / live_window if live_window else 0.0
        registry.gauge(f"utilization[core {core}]").set(utilization)
        per_core[core] = {
            **account,
            "live_window": live_window,
            "utilization": utilization,
            "legacy_busy": core_busy.get(core, 0),
            **queue_aggregates.get(
                core, {"mean_depth": 0.0, "peak_depth": 0.0}
            ),
        }

    totals = {
        key: sum(account[key] for account in accounts.values())
        for key in ("busy", "blocked", "idle", "dead")
    }
    snapshot: Dict[str, object] = {
        "schema": SCHEMA,
        "makespan": makespan,
        "cores": len(cores),
        "events": len(events),
        "busy_fraction": busy_fraction,
        "accounting": {
            "identity": "busy + blocked + idle + dead == makespan x cores",
            "per_core": accounts,
            "totals": totals,
            "makespan_x_cores": makespan * len(cores),
        },
        "per_core": per_core,
        **registry.snapshot(),
    }
    total_cycles = sum(totals.values())
    if total_cycles != makespan * len(cores):
        raise ScheduleError(
            f"cycle accounting violated: totals {total_cycles} != "
            f"makespan x cores {makespan * len(cores)}"
        )
    return snapshot
