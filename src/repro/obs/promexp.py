"""Prometheus text exposition (and its lint) for the metrics registry.

The daemon's ``GET /metrics`` endpoint renders a
:class:`repro.obs.metrics.MetricsRegistry` — plus the wall-clock
profiler and a few server gauges — in the Prometheus text exposition
format (version 0.0.4), stdlib-only so the serve layer stays
dependency-free.

The registry's internal naming convention ``family[label]`` (e.g.
``serve_latency[synthesize]``) maps to the Prometheus idiom
``repro_serve_latency{key="synthesize"}``; counters get the
conventional ``_total`` suffix and histograms expand to cumulative
``_bucket{le=...}`` series plus ``_sum``/``_count``.

:func:`validate_prometheus_text` is the format lint used by tests and
the CI serve-smoke job: it checks metric/label name grammar, TYPE
declarations, escaping, and histogram invariants (``+Inf`` bucket
present, cumulative counts monotone and equal to ``_count``).
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from .metrics import MetricsRegistry

NAMESPACE = "repro"

_FAMILY_RE = re.compile(r"^([A-Za-z_][A-Za-z0-9_]*)\[(.+)\]$")
_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_NAME_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>.*)\})?"
    r"\s+(?P<value>\S+)"
    r"(?:\s+(?P<ts>-?\d+))?$"
)
_LABEL_RE = re.compile(
    r'(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"'
)


def _sanitize(text: str) -> str:
    out = re.sub(r"[^a-zA-Z0-9_]", "_", text)
    return out if _NAME_RE.match(out) else f"_{out}"


def split_metric_name(name: str) -> Tuple[str, Dict[str, str]]:
    """``family[label]`` -> (``family``, ``{"key": label}``)."""
    match = _FAMILY_RE.match(name)
    if match:
        return _sanitize(match.group(1)), {"key": match.group(2)}
    return _sanitize(name), {}


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _labels(labels: Dict[str, str]) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{key}="{_escape(str(value))}"' for key, value in sorted(labels.items())
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


class _Writer:
    def __init__(self, namespace: str):
        self.namespace = namespace
        self.lines: List[str] = []
        self._typed: Dict[str, str] = {}

    def family(self, base: str, kind: str, help_text: str) -> str:
        name = f"{self.namespace}_{base}"
        if name not in self._typed:
            self._typed[name] = kind
            self.lines.append(f"# HELP {name} {help_text}")
            self.lines.append(f"# TYPE {name} {kind}")
        return name

    def sample(self, name: str, labels: Dict[str, str], value: float) -> None:
        self.lines.append(f"{name}{_labels(labels)} {_fmt(value)}")


def render_prometheus(
    registry: MetricsRegistry,
    namespace: str = NAMESPACE,
    profiler=None,
    extra_gauges: Optional[Dict[str, float]] = None,
) -> str:
    """The registry (and optionally the active profiler and ad-hoc
    gauges) in Prometheus text exposition format."""
    writer = _Writer(namespace)

    families: Dict[str, List[Tuple[Dict[str, str], object]]] = {}
    order: List[Tuple[str, str]] = []  # (base, kind) in first-seen order
    for name, counter in sorted(registry.counters.items()):
        base, labels = split_metric_name(name)
        key = f"{base}_total"
        if (key, "counter") not in order:
            order.append((key, "counter"))
        families.setdefault(key, []).append((labels, counter.value))
    for name, gauge in sorted(registry.gauges.items()):
        base, labels = split_metric_name(name)
        if (base, "gauge") not in order:
            order.append((base, "gauge"))
        families.setdefault(base, []).append((labels, gauge.value))
    for name, histogram in sorted(registry.histograms.items()):
        base, labels = split_metric_name(name)
        if (base, "histogram") not in order:
            order.append((base, "histogram"))
        families.setdefault(base, []).append((labels, histogram))

    for base, kind in order:
        help_text = {
            "counter": f"registry counter {base}",
            "gauge": f"registry gauge {base}",
            "histogram": f"registry histogram {base}",
        }[kind]
        name = writer.family(base, kind, help_text)
        for labels, value in families[base]:
            if kind == "histogram":
                histogram = value
                cumulative = 0
                bounds = list(histogram.buckets) + [math.inf]
                counts = histogram.bucket_counts()
                for bound in bounds:
                    cumulative = counts[_bucket_key(bound)]
                    writer.sample(
                        f"{name}_bucket",
                        dict(labels, le=_fmt(float(bound))),
                        cumulative,
                    )
                writer.sample(f"{name}_sum", labels, float(sum(histogram.values)))
                writer.sample(f"{name}_count", labels, len(histogram.values))
            else:
                writer.sample(name, labels, float(value))

    if extra_gauges:
        for raw, value in sorted(extra_gauges.items()):
            base, labels = split_metric_name(raw)
            name = writer.family(base, "gauge", f"server gauge {base}")
            writer.sample(name, labels, float(value))

    if profiler is not None:
        doc = profiler.snapshot()
        from .prof import flatten  # local import: prof has no deps on us

        seconds = writer.family(
            "profile_phase_seconds_total", "counter",
            "wall-clock seconds per profiler phase (cumulative)",
        )
        calls = writer.family(
            "profile_phase_calls_total", "counter",
            "profiler phase entry count",
        )
        for row in flatten(doc):
            labels = {"phase": row["path"]}
            writer.sample(
                seconds, dict(labels, kind="total"), row["total_ns"] / 1e9
            )
            writer.sample(
                seconds, dict(labels, kind="self"),
                max(0, row["self_ns"]) / 1e9,
            )
            writer.sample(calls, labels, row["count"])
        if doc["counters"]:
            family = writer.family(
                "profile_counter_total", "counter", "profiler named counters"
            )
            for name, value in doc["counters"].items():
                writer.sample(family, {"name": _sanitize(name)}, value)

    return "\n".join(writer.lines) + "\n"


def _bucket_key(bound: float) -> str:
    return "+Inf" if bound == math.inf else _fmt(float(bound))


# -- lint --------------------------------------------------------------------


def _parse_value(text: str) -> float:
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    if text == "NaN":
        return math.nan
    return float(text)  # raises ValueError on garbage


def validate_prometheus_text(text: str) -> Dict[str, object]:
    """Lints one exposition document; raises :class:`ValueError` on any
    format violation, returns a summary for count assertions."""
    types: Dict[str, str] = {}
    samples = 0
    histogram_state: Dict[str, Dict[str, object]] = {}

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ValueError(f"line {lineno}: malformed comment {line!r}")
            name = parts[2]
            if not _NAME_RE.match(name):
                raise ValueError(f"line {lineno}: bad metric name {name!r}")
            if parts[1] == "TYPE":
                kind = parts[3].strip() if len(parts) > 3 else ""
                if kind not in (
                    "counter", "gauge", "histogram", "summary", "untyped"
                ):
                    raise ValueError(f"line {lineno}: bad TYPE {kind!r}")
                if name in types:
                    raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
                types[name] = kind
            continue

        match = _SAMPLE_RE.match(line)
        if not match:
            raise ValueError(f"line {lineno}: malformed sample {line!r}")
        name = match.group("name")
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            consumed = 0
            for piece in _LABEL_RE.finditer(raw_labels):
                labels[piece.group("name")] = piece.group("value")
                consumed = piece.end()
                rest = raw_labels[consumed:]
                if rest.startswith(","):
                    consumed += 1
            stripped = re.sub(_LABEL_RE, "", raw_labels).replace(",", "").strip()
            if stripped:
                raise ValueError(
                    f"line {lineno}: malformed labels {raw_labels!r}"
                )
            for label in labels:
                if not _LABEL_NAME_RE.match(label):
                    raise ValueError(f"line {lineno}: bad label name {label!r}")
        try:
            value = _parse_value(match.group("value"))
        except ValueError:
            raise ValueError(
                f"line {lineno}: bad sample value {match.group('value')!r}"
            ) from None
        samples += 1

        family = name
        for suffix in ("_bucket", "_sum", "_count"):
            trimmed = name[: -len(suffix)] if name.endswith(suffix) else None
            if trimmed and types.get(trimmed) in ("histogram", "summary"):
                family = trimmed
                break
        if family not in types:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding TYPE"
            )
        if types[family] == "histogram":
            series = tuple(sorted(
                (k, v) for k, v in labels.items() if k != "le"
            ))
            state = histogram_state.setdefault(
                f"{family}{series}", {"buckets": [], "count": None}
            )
            if name.endswith("_bucket"):
                if "le" not in labels:
                    raise ValueError(
                        f"line {lineno}: histogram bucket without 'le'"
                    )
                state["buckets"].append((_parse_value(labels["le"]), value))
            elif name.endswith("_count"):
                state["count"] = value

    for key, state in histogram_state.items():
        buckets = sorted(state["buckets"], key=lambda item: item[0])
        if not buckets or buckets[-1][0] != math.inf:
            raise ValueError(f"histogram {key}: missing '+Inf' bucket")
        counts = [count for _, count in buckets]
        if any(b > a for a, b in zip(counts[1:], counts)):
            raise ValueError(f"histogram {key}: bucket counts not cumulative")
        if state["count"] is not None and counts[-1] != state["count"]:
            raise ValueError(
                f"histogram {key}: +Inf bucket != _count "
                f"({counts[-1]} vs {state['count']})"
            )

    return {
        "families": len(types),
        "samples": samples,
        "histograms": sum(1 for kind in types.values() if kind == "histogram"),
    }
