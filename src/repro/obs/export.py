"""Exporters: Chrome trace-event JSON and metrics snapshots.

:func:`chrome_trace` turns a typed event stream into the Chrome
trace-event format (the JSON array flavor under a ``traceEvents`` key),
loadable in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:

* one **track per core** (``pid`` 0 = the machine, ``tid`` = core id,
  named via ``M`` metadata events),
* one **complete span** (``ph: "X"``) per task invocation — truncated
  spans (crash/eviction/watchdog write-offs) export their truncated
  window — plus spans for stalls and heartbeat charges,
* **instants** (``ph: "i"``) for faults, detections, evictions, rejoins,
  preemptions, retries, quarantines, and lock failures, and
* **counter events** (``ph: "C"``) tracking each core's run-queue depth.

Timestamps are simulated cycles, exported 1:1 as microseconds — the
absolute unit is meaningless for a cycle-accurate simulation; relative
widths are what the timeline is for.

:func:`validate_chrome_trace` is the schema check used by tests and CI.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from .events import (
    Crash,
    Detect,
    Event,
    Evict,
    HEARTBEAT_LABEL,
    LockFail,
    Quarantine,
    QueueDepth,
    Rejoin,
    STALL_LABEL,
    TaskCommit,
    TaskPreempt,
    TaskRetry,
    occupancy_intervals,
)

SCHEMA = "repro.obs/chrome-trace-v1"

#: machine-level pid for every exported event
_PID = 0

#: instant-event kinds exported one-to-one: event class -> (name, category)
_INSTANTS = {
    Crash: ("crash", "fault"),
    Detect: ("detect", "fault"),
    Evict: ("evict", "fault"),
    Rejoin: ("rejoin", "fault"),
    TaskPreempt: ("watchdog preempt", "fault"),
    TaskRetry: ("retry", "fault"),
    LockFail: ("lock fail", "lock"),
}


def chrome_trace(
    events: List[Event],
    cores: Sequence[int],
    makespan: Optional[int] = None,
) -> Dict[str, object]:
    """Builds the Chrome trace-event document for one observed run."""
    trace_events: List[Dict[str, object]] = [
        {
            "ph": "M",
            "pid": _PID,
            "tid": 0,
            "name": "process_name",
            "args": {"name": "many-core machine"},
        }
    ]
    for core in sorted(cores):
        trace_events.append(
            {
                "ph": "M",
                "pid": _PID,
                "tid": core,
                "name": "thread_name",
                "args": {"name": f"core {core}"},
            }
        )

    # Span outcomes: exit ids for committed spans, preemption marks.
    exits: Dict[int, int] = {}
    preempted: Dict[int, bool] = {}
    for event in events:
        if isinstance(event, TaskCommit):
            exits[event.span] = event.exit_id
        elif isinstance(event, TaskPreempt):
            preempted[event.span] = True

    for core, intervals in sorted(occupancy_intervals(events).items()):
        for start, end, label, span in intervals:
            args: Dict[str, object] = {}
            category = "task"
            if label == STALL_LABEL:
                category = "stall"
            elif label == HEARTBEAT_LABEL:
                category = "heartbeat"
            elif span in exits:
                args = {"span": span, "exit": exits[span], "state": "committed"}
            elif preempted.get(span):
                args = {"span": span, "state": "preempted"}
            else:
                args = {"span": span, "state": "truncated"}
            trace_events.append(
                {
                    "name": label,
                    "cat": category,
                    "ph": "X",
                    "ts": start,
                    "dur": end - start,
                    "pid": _PID,
                    "tid": core,
                    "args": args,
                }
            )

    for event in events:
        spec = _INSTANTS.get(type(event))
        if spec is not None:
            name, category = spec
            payload = event.to_json()
            payload.pop("time", None)
            trace_events.append(
                {
                    "name": name,
                    "cat": category,
                    "ph": "i",
                    "ts": event.time,
                    "pid": _PID,
                    "tid": getattr(event, "core", 0),
                    "s": "t",
                    "args": payload,
                }
            )
        elif isinstance(event, Quarantine):
            trace_events.append(
                {
                    "name": "quarantine",
                    "cat": "fault",
                    "ph": "i",
                    "ts": event.time,
                    "pid": _PID,
                    "tid": 0,
                    "s": "g",  # global scope: poison bars every scheduler
                    "args": event.to_json(),
                }
            )
        elif isinstance(event, QueueDepth):
            trace_events.append(
                {
                    "name": f"run queue core {event.core}",
                    "cat": "queue",
                    "ph": "C",
                    "ts": event.time,
                    "pid": _PID,
                    "tid": event.core,
                    "args": {"depth": event.depth},
                }
            )

    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": SCHEMA,
            "time_unit": "cycles",
            "makespan": makespan,
            "cores": sorted(cores),
        },
    }


def validate_chrome_trace(doc: Dict[str, object]) -> Dict[str, object]:
    """Checks a trace document against the Chrome trace-event schema.

    Verifies the required fields per phase (``ph``/``ts``/``pid``/``tid``,
    ``dur`` and ``name`` for spans, ``s`` for instants) and that spans on
    each track are properly nested (any two either disjoint or one
    containing the other). Raises :class:`ValueError` on violation and
    returns a small summary for callers that want to assert counts.
    """
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        raise ValueError("not a trace document: missing 'traceEvents'")
    trace_events = doc["traceEvents"]
    if not isinstance(trace_events, list):
        raise ValueError("'traceEvents' must be a list")

    spans_by_track: Dict[object, List[Dict[str, object]]] = {}
    tracks = set()
    counts = {"spans": 0, "instants": 0, "counters": 0, "metadata": 0}
    for index, event in enumerate(trace_events):
        if not isinstance(event, dict):
            raise ValueError(f"event {index}: not an object")
        for key in ("ph", "pid", "tid"):
            if key not in event:
                raise ValueError(f"event {index}: missing '{key}'")
        phase = event["ph"]
        if phase == "M":
            counts["metadata"] += 1
            if event.get("name") == "thread_name":
                tracks.add(event["tid"])
            continue
        if "ts" not in event:
            raise ValueError(f"event {index}: missing 'ts'")
        if not isinstance(event["ts"], (int, float)):
            raise ValueError(f"event {index}: non-numeric 'ts'")
        if phase == "X":
            counts["spans"] += 1
            for key in ("dur", "name"):
                if key not in event:
                    raise ValueError(f"event {index}: span missing '{key}'")
            if event["dur"] < 0:
                raise ValueError(f"event {index}: negative span duration")
            spans_by_track.setdefault(event["tid"], []).append(event)
        elif phase == "i":
            counts["instants"] += 1
            if event.get("s") not in ("t", "p", "g"):
                raise ValueError(f"event {index}: instant missing scope 's'")
        elif phase == "C":
            counts["counters"] += 1
            if "args" not in event:
                raise ValueError(f"event {index}: counter missing 'args'")
        else:
            raise ValueError(f"event {index}: unknown phase {phase!r}")

    for tid, spans in spans_by_track.items():
        ordered = sorted(spans, key=lambda s: (s["ts"], -s["dur"]))
        stack: List[Dict[str, object]] = []
        for span in ordered:
            start = span["ts"]
            end = start + span["dur"]
            while stack and start >= stack[-1]["ts"] + stack[-1]["dur"]:
                stack.pop()
            if stack:
                parent_end = stack[-1]["ts"] + stack[-1]["dur"]
                if end > parent_end:
                    raise ValueError(
                        f"track {tid}: span {span['name']!r} at {start} "
                        f"overlaps its predecessor without nesting"
                    )
            stack.append(span)

    return {
        "tracks": sorted(tracks, key=str),
        **counts,
    }


def write_chrome_trace(
    path: str,
    events: List[Event],
    cores: Sequence[int],
    makespan: Optional[int] = None,
) -> Dict[str, object]:
    """Writes the Chrome trace for one run; returns the document."""
    doc = chrome_trace(events, cores, makespan=makespan)
    with open(path, "w") as handle:
        json.dump(doc, handle)
    return doc


def write_metrics_snapshot(path: str, snapshot: Dict[str, object]) -> None:
    """Writes one run's metrics snapshot as indented JSON."""
    with open(path, "w") as handle:
        json.dump(snapshot, handle, indent=2, sort_keys=True)
        handle.write("\n")
