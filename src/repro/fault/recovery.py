"""The recovery engine: what happens when a fault event fires.

Crash recovery leans entirely on the runtime's commit-at-completion
invariant (docs/ARCHITECTURE.md, "Key invariants"): a task's flag/tag
updates, lock-group merges, and object routing apply only at its
completion event, so a core that dies mid-invocation has published
*nothing*. Recovery therefore has four steps, all deterministic:

1. **Roll back** the dead core's in-flight invocation: restore the
   parameter objects' field state from the dispatch-time snapshot and
   discard the pending commit (its completion event becomes a no-op).
2. **Reclaim locks**: every lock group owned by the dead core is released
   (:meth:`repro.runtime.scheduler.LockManager.release_core`) — all were
   held for the rolled-back invocation, which no longer exists.
3. **Rebuild the layout** over the surviving cores
   (:func:`repro.schedule.mapping.with_core_failed` — the same
   layout-as-data edit :class:`repro.core.adaptive.AdaptiveExecutable`
   uses to re-optimize in the field, §7) and refresh the router so no
   future route targets the dead core.
4. **Migrate** every object resident on (or in flight to) the dead core
   to the surviving instance the degraded routing table picks, paying
   mesh message costs; pending and rolled-back invocations re-form there
   through the normal parameter-set machinery and execute exactly once.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Tuple

from ..analysis.astate import state_of_object
from ..obs.events import (
    Crash,
    Detect,
    Evict,
    LinkDegradeEvent,
    MailSend,
    Rejoin,
    Stall,
    Truncate,
)
from ..runtime.objects import BArray, BObject
from ..schedule.layout import Router
from ..schedule.mapping import with_core_failed
from .plan import CoreCrash, FaultError, LinkDegrade, TransientStall
from .stats import RecoveryStats

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.machine import ManyCoreMachine

#: A snapshot entry: (container, saved contents). Containers are the
#: mutable heap values a task body can write through — objects and arrays.
Snapshot = List[Tuple[object, List[object]]]


def snapshot_objects(objects: List[BObject]) -> Snapshot:
    """Captures the field state of everything reachable from ``objects``.

    Flags and tags need no snapshot: they change only at commit, which a
    crash drops wholesale. Only field writes (and array element writes)
    happen eagerly during task execution, so they are what rollback must
    undo.
    """
    entries: Snapshot = []
    seen = set()
    stack: List[object] = list(objects)
    while stack:
        value = stack.pop()
        if isinstance(value, BObject):
            if id(value) in seen:
                continue
            seen.add(id(value))
            entries.append((value, list(value.fields)))
            stack.extend(value.fields)
        elif isinstance(value, BArray):
            if id(value) in seen:
                continue
            seen.add(id(value))
            entries.append((value, list(value.values)))
            stack.extend(value.values)
    return entries


def restore_snapshot(snapshot: Snapshot) -> None:
    """Rolls every snapshotted container back to its saved contents."""
    for container, saved in snapshot:
        if isinstance(container, BObject):
            container.fields[:] = saved
        else:
            container.values[:] = saved


class RecoveryEngine:
    """Applies fault events to a running machine and repairs the damage."""

    def __init__(self, machine: "ManyCoreMachine", stats: RecoveryStats):
        self.machine = machine
        self.stats = stats

    # -- event dispatch ------------------------------------------------------

    def apply(self, event, time: int) -> None:
        if isinstance(event, CoreCrash):
            self._crash(event.core, time)
        elif isinstance(event, TransientStall):
            self._stall(event.core, event.duration, time)
        elif isinstance(event, LinkDegrade):
            self._degrade(event.multiplier, time)
        else:  # pragma: no cover - exhaustive
            raise FaultError(f"unknown fault event {event!r}")

    # -- crash ---------------------------------------------------------------

    def _crash(self, core: int, time: int) -> None:
        """Oracle-driven crash: halt and recover in the same event (PR 1
        semantics, used when no detection-driven resilience is installed)."""
        commit = self.halt_core(core, time)
        if core not in self.machine.halted_cores:
            return  # already dead, or never hosted anything: nothing to do
        self.recover_core(core, time, commit)

    def halt_core(self, core: int, time: int):
        """Silently kills a core: it stops dispatching and heartbeating,
        its pending commit is unscheduled (the completion event becomes a
        no-op), and charged-but-unfinished cycles are written off.

        Publishes *nothing* about the failure — with detection-driven
        resilience the monitor must discover the death from missed
        heartbeats. Returns the in-flight commit (for rollback at recovery
        time), or None if the core was idle.
        """
        machine = self.machine
        if core in machine.halted_cores or core not in machine.schedulers:
            return None
        if core in machine.dead_cores:
            # The detector already evicted this core on a false suspicion;
            # the real crash just makes the eviction permanent. Its work
            # already migrated and its commit already rolled back.
            machine.halted_cores.add(core)
            machine.suspected_cores.discard(core)
            self.stats.crashes += 1
            self.stats.dead_cores.append(core)
            # A suspected core can stall while evicted, bumping its busy
            # horizon past its death cycle; those phantom cycles must be
            # written off or they would outlive the (now permanent) death.
            death = machine.death_cycles.get(core, time)
            machine.busy_until[core] = min(machine.busy_until[core], death)
            if machine.tracer is not None:
                machine.tracer.emit(
                    Crash(time=time, core=core, already_evicted=True)
                )
                machine.tracer.emit(Truncate(time=time, core=core, at=death))
            return None
        machine.halted_cores.add(core)
        machine.death_cycles.setdefault(core, time)
        self.stats.crashes += 1

        # Charged-but-unfinished work on the dead core is lost.
        lost = max(0, machine.busy_until[core] - time)
        machine.busy_until[core] = min(machine.busy_until[core], time)
        self.stats.downtime_cycles += lost
        if machine.tracer is not None:
            machine.tracer.emit(Crash(time=time, core=core))
            machine.tracer.emit(Truncate(time=time, core=core, at=time))

        # Unschedule the in-flight commit so a completion event arriving
        # between halt and detection cannot publish a dead core's effects.
        commit_id = machine._inflight.pop(core, None)
        if commit_id is not None:
            return machine._commits.pop(commit_id, None)
        return None

    def recover_core(
        self, core: int, time: int, commit, detection_latency: Optional[int] = None
    ) -> None:
        """Repairs the machine after ``core``'s death is known: rollback,
        lock reclaim, layout rebuild, and work migration.

        In oracle mode this runs in the same event as :meth:`halt_core`; in
        detection mode it runs when the failure detector's missed-beat
        threshold fires, ``detection_latency`` cycles after the halt.
        """
        machine = self.machine
        machine.dead_cores.add(core)
        self.stats.dead_cores.append(core)
        if detection_latency is not None:
            self.stats.detections += 1
            self.stats.detection_latency_cycles += detection_latency
            if machine.tracer is not None:
                machine.tracer.emit(
                    Detect(time=time, core=core, latency=detection_latency)
                )
        self._reclaim_and_migrate(core, time, commit)

    def evict_live_core(self, core: int, time: int) -> None:
        """False-positive path: the detector suspected a core that is
        merely stalled. The machine cannot tell the difference, so the core
        is treated as dead — in-flight invocation rolled back, locks
        reclaimed, work migrated, layout rebuilt without it. If (when) its
        heartbeat resumes, :meth:`rejoin_core` brings it back; exactly-once
        holds because its commit was unscheduled here.
        """
        machine = self.machine
        machine.suspected_cores.add(core)
        machine.dead_cores.add(core)
        machine.death_cycles.setdefault(core, time)

        lost = max(0, machine.busy_until[core] - time)
        machine.busy_until[core] = min(machine.busy_until[core], time)
        self.stats.downtime_cycles += lost
        if machine.tracer is not None:
            machine.tracer.emit(Evict(time=time, core=core))
            machine.tracer.emit(Truncate(time=time, core=core, at=time))

        commit = None
        commit_id = machine._inflight.pop(core, None)
        if commit_id is not None:
            commit = machine._commits.pop(commit_id, None)
        self._reclaim_and_migrate(core, time, commit)

    def rejoin_core(self, core: int, time: int) -> None:
        """A suspected-then-recovered core produced a heartbeat: it rejoins
        the machine as a live (but empty) core. Its migrated work stays
        where it went — the rolled-back commit was never published, so
        nothing can double-commit.
        """
        machine = self.machine
        machine.suspected_cores.discard(core)
        machine.dead_cores.discard(core)
        machine.death_cycles.pop(core, None)
        # The rejoined core is live but delisted from the degraded layout:
        # pre-eviction mail still in flight to it must re-route on arrival.
        machine._stale_routing = True
        self.stats.false_suspicions += 1
        self.stats.rejoins += 1
        if machine.tracer is not None:
            machine.tracer.emit(Rejoin(time=time, core=core))

    def _reclaim_and_migrate(self, core: int, time: int, commit) -> None:
        """The shared tail of crash recovery and live-core eviction."""
        machine = self.machine

        # Roll back the in-flight invocation, if any; its parameter objects
        # re-route below alongside the pending queue.
        replay: List[Tuple[str, int, BObject]] = []
        if commit is not None:
            if commit.snapshot is not None:
                restore_snapshot(commit.snapshot)
            invocation = commit.invocation
            for param_index, obj in enumerate(invocation.objects):
                replay.append((invocation.task, param_index, obj))
            self.stats.tasks_replayed += 1

        self.stats.locks_reclaimed += machine.locks.release_core(core)

        # Degrade the layout to the survivors and refresh routing state.
        survivors = [
            c for c in machine.layout.cores_used() if c not in machine.dead_cores
        ]
        if not survivors:
            raise FaultError("no surviving cores: cannot recover")
        machine.layout = with_core_failed(machine.layout, core, survivors)
        machine.router = Router(machine.info, machine.layout)
        for survivor in survivors:
            scheduler = machine.schedulers[survivor]
            for task in machine.layout.tasks_on_core(survivor):
                scheduler.adopt_task(task)

        # Migrate everything the dead core was holding.
        pending, ready = machine.schedulers[core].drain()
        if machine.tracer is not None:
            machine.tracer.queue_sample(time, core, 0)
        self.stats.invocations_requeued += len(ready)
        migrations = list(replay)
        for invocation in ready:
            for param_index, obj in enumerate(invocation.objects):
                migrations.append((invocation.task, param_index, obj))
        migrations.extend(pending)
        window = 0
        for task, param_index, obj in migrations:
            window = max(window, self._migrate(core, task, param_index, obj, time))
        self.stats.downtime_cycles += window

        # Wake the survivors that just received work.
        for survivor in survivors:
            if machine.schedulers[survivor].has_work():
                machine._kick(survivor, time)

    def _migrate(
        self, dead_core: int, task: str, param_index: int, obj: BObject, time: int
    ) -> int:
        """Sends one parameter-set entry from the dead core to the instance
        the degraded routing table picks; returns the migration latency."""
        machine = self.machine
        dest, latency = machine._choose_destination(
            dead_core, task, obj, state_of_object(obj)
        )
        machine._push(time + latency, "arrive", (dest, task, param_index, obj))
        machine.messages += 1
        if machine.tracer is not None:
            machine.tracer.emit(
                MailSend(
                    time=time, core=dead_core, dest=dest,
                    task=task, latency=latency,
                )
            )
        self.stats.objects_migrated += 1
        return latency

    def redirect_arrival(
        self, dead_core: int, task: str, param_index: int, obj: BObject, time: int
    ) -> None:
        """Re-routes an object that arrives at a core after it died (the
        message was in flight when the crash happened)."""
        self._migrate(dead_core, task, param_index, obj, time)

    # -- stall / link --------------------------------------------------------

    def _stall(self, core: int, duration: int, time: int) -> None:
        machine = self.machine
        if core in machine.halted_cores or core not in machine.busy_until:
            return
        if core in machine.dead_cores and core not in machine.suspected_cores:
            return  # recovered-dead cores cannot stall; evicted live ones can
        self.stats.stalls += 1
        self.stats.stall_cycles += duration
        begin = max(machine.busy_until[core], time)
        resume = begin + duration
        machine.busy_until[core] = resume
        # A frozen core cannot emit heartbeats; the failure detector reads
        # this map to suppress beats (and may falsely suspect the core).
        machine.stall_until[core] = max(machine.stall_until.get(core, 0), resume)
        if machine.tracer is not None:
            machine.tracer.emit(Stall(time=time, core=core, begin=begin, until=resume))
        # Work arriving during the stall re-kicks itself (deferred to
        # busy_until); an explicit wake-up is needed only for work the
        # core already had queued.
        if machine.schedulers[core].has_work():
            machine._kick(core, resume)

    def _degrade(self, multiplier: float, time: int) -> None:
        self.stats.link_events += 1
        self.machine._link_multiplier = multiplier
        if self.machine.tracer is not None:
            self.machine.tracer.emit(
                LinkDegradeEvent(time=time, multiplier=multiplier)
            )
