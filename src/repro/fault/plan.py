"""Deterministic fault plans.

A :class:`FaultPlan` is an immutable, cycle-ordered list of fault events.
Plans are data, never sampled at run time: a seeded generator
(:meth:`FaultPlan.random_plan`) or an explicit constructor fixes every
event before the machine starts, so a run under a given plan is exactly as
reproducible as a fault-free run — the same plan always produces the same
crash, the same recovery, and the same final cycle count.

Three event kinds cover the failure modes a mesh machine sees:

* :class:`CoreCrash` — the core halts at a cycle and never returns; its
  in-flight invocation rolls back and its work migrates to survivors.
* :class:`TransientStall` — the core freezes for a bounded number of
  cycles (thermal throttling, a hung DMA), then resumes where it was.
* :class:`LinkDegrade` — from a cycle onward every mesh hop costs a
  multiple of its nominal latency (a congested or half-failed link fabric).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Sequence, Tuple, Union

from ..lang.errors import ScheduleError


class FaultError(ScheduleError):
    """A fault plan is malformed or recovery is impossible (all cores dead)."""


@dataclass(frozen=True)
class CoreCrash:
    """Core ``core`` halts permanently at ``cycle``."""

    core: int
    cycle: int


@dataclass(frozen=True)
class TransientStall:
    """Core ``core`` freezes at ``cycle`` for ``duration`` cycles."""

    core: int
    cycle: int
    duration: int


@dataclass(frozen=True)
class LinkDegrade:
    """From ``cycle`` on, every mesh hop costs ``multiplier``× its nominal
    latency. A later event with multiplier 1.0 restores full speed."""

    cycle: int
    multiplier: float


FaultEvent = Union[CoreCrash, TransientStall, LinkDegrade]


def _event_key(event: FaultEvent) -> Tuple[int, int, int]:
    """Total order for events: cycle, then kind, then core — ties between
    same-cycle events resolve identically on every run."""
    if isinstance(event, CoreCrash):
        return (event.cycle, 0, event.core)
    if isinstance(event, TransientStall):
        return (event.cycle, 1, event.core)
    return (event.cycle, 2, -1)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, cycle-ordered schedule of fault events."""

    events: Tuple[FaultEvent, ...]

    # -- constructors --------------------------------------------------------

    @staticmethod
    def make(events: Sequence[FaultEvent]) -> "FaultPlan":
        for event in events:
            if event.cycle < 0:
                raise FaultError(f"fault event at negative cycle: {event}")
            if isinstance(event, TransientStall) and event.duration <= 0:
                raise FaultError(f"stall duration must be positive: {event}")
            if isinstance(event, LinkDegrade) and event.multiplier <= 0:
                raise FaultError(f"link multiplier must be positive: {event}")
        return FaultPlan(events=tuple(sorted(events, key=_event_key)))

    @staticmethod
    def single_crash(core: int, cycle: int) -> "FaultPlan":
        return FaultPlan.make([CoreCrash(core=core, cycle=cycle)])

    @staticmethod
    def random_plan(
        seed: int,
        num_cores: int,
        horizon: int,
        crashes: int = 1,
        stalls: int = 0,
        max_stall: int = 10_000,
        link_events: int = 0,
        max_multiplier: float = 4.0,
    ) -> "FaultPlan":
        """Samples a plan with a private seeded generator.

        Crash cores are drawn without replacement so a plan never crashes
        the same core twice; at most ``num_cores - 1`` crashes are drawn so
        one survivor always remains.
        """
        rng = random.Random(seed)
        events: List[FaultEvent] = []
        crash_cores = rng.sample(range(num_cores), min(crashes, num_cores - 1))
        for core in crash_cores:
            events.append(CoreCrash(core=core, cycle=rng.randrange(1, horizon)))
        for _ in range(stalls):
            events.append(
                TransientStall(
                    core=rng.randrange(num_cores),
                    cycle=rng.randrange(1, horizon),
                    duration=rng.randrange(1, max_stall),
                )
            )
        for _ in range(link_events):
            events.append(
                LinkDegrade(
                    cycle=rng.randrange(1, horizon),
                    multiplier=1.0 + rng.random() * (max_multiplier - 1.0),
                )
            )
        return FaultPlan.make(events)

    @staticmethod
    def parse(specs: Sequence[str]) -> "FaultPlan":
        """Builds a plan from CLI specs (see :func:`parse_fault_spec`)."""
        return FaultPlan.make([parse_fault_spec(spec) for spec in specs])

    # -- accessors ------------------------------------------------------------

    def is_empty(self) -> bool:
        return not self.events

    def crash_cores(self) -> List[int]:
        return [e.core for e in self.events if isinstance(e, CoreCrash)]

    def describe(self) -> str:
        if not self.events:
            return "fault plan: (empty)"
        lines = ["fault plan:"]
        for event in self.events:
            if isinstance(event, CoreCrash):
                lines.append(f"  cycle {event.cycle:>10,}: crash core {event.core}")
            elif isinstance(event, TransientStall):
                lines.append(
                    f"  cycle {event.cycle:>10,}: stall core {event.core} "
                    f"for {event.duration:,} cycles"
                )
            else:
                lines.append(
                    f"  cycle {event.cycle:>10,}: link degrade x{event.multiplier:g}"
                )
        return "\n".join(lines)


def parse_fault_spec(spec: str) -> FaultEvent:
    """Parses one ``--inject-fault`` spec.

    Formats::

        core=K@CYCLE          crash core K at CYCLE
        stall=K@CYCLE:DUR     stall core K at CYCLE for DUR cycles
        link=MULT@CYCLE       degrade every hop to MULT x nominal at CYCLE
    """
    try:
        kind, rest = spec.split("=", 1)
        value, at = rest.split("@", 1)
        if kind == "core":
            return CoreCrash(core=int(value), cycle=int(at))
        if kind == "stall":
            cycle, duration = at.split(":", 1)
            return TransientStall(
                core=int(value), cycle=int(cycle), duration=int(duration)
            )
        if kind == "link":
            return LinkDegrade(cycle=int(at), multiplier=float(value))
    except (ValueError, TypeError) as exc:
        raise FaultError(f"bad fault spec '{spec}': {exc}") from None
    raise FaultError(
        f"bad fault spec '{spec}' (expected core=K@CYCLE, "
        "stall=K@CYCLE:DUR, or link=MULT@CYCLE)"
    )
