"""Fires fault-plan events into the machine's event queue.

The injector is the only coupling point between a plan and a run: at
machine start it pushes one ``"fault"`` event per plan entry into the
ordinary event queue, so faults interleave with arrivals, dispatches, and
completions under the machine's deterministic time/sequence order. A run
with an empty plan pushes nothing and is bit-identical to a fault-free
run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .plan import CoreCrash, FaultError, FaultPlan

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..runtime.machine import ManyCoreMachine


class FaultInjector:
    """Validates a plan against a machine and schedules its events."""

    def __init__(self, machine: "ManyCoreMachine", plan: FaultPlan):
        self.machine = machine
        self.plan = plan
        self._validate()

    def _validate(self) -> None:
        layout = self.machine.layout
        for event in self.plan.events:
            core = getattr(event, "core", None)
            if core is not None and not (0 <= core < layout.num_cores):
                raise FaultError(
                    f"fault targets core {core}, but the machine has "
                    f"cores 0..{layout.num_cores - 1}"
                )
        used = set(layout.cores_used())
        doomed = {e.core for e in self.plan.events if isinstance(e, CoreCrash)}
        if used and not (used - doomed):
            raise FaultError("fault plan crashes every used core")

    def install(self) -> None:
        """Pushes every plan event into the machine's queue."""
        for event in self.plan.events:
            self.machine._push(event.cycle, "fault", (event,))
