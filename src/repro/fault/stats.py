"""Recovery telemetry.

One :class:`RecoveryStats` instance accompanies a machine run whenever a
fault plan is installed; it is surfaced on
:class:`repro.runtime.machine.MachineResult` as ``result.recovery``.

The exactly-once ledger: ``commits_applied`` counts invocations whose
effects actually committed, ``commits_dropped`` counts invocations that
were executing on a core when it crashed (their effects were rolled back
and never published), and ``tasks_replayed`` counts the rolled-back
invocations whose parameter objects were re-routed to survivors. Since a
dropped commit never applies and a replayed invocation commits normally,
every logical task commits exactly once — ``duplicate_commits`` stays 0 by
construction and is asserted in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List


@dataclass
class RecoveryStats:
    """Counters describing fault handling during one machine run."""

    #: core crashes applied (a crash of an already-dead or unused core is
    #: ignored and not counted here)
    crashes: int = 0
    #: transient stalls applied
    stalls: int = 0
    #: link-degradation events applied
    link_events: int = 0
    #: in-flight invocations rolled back at a crash and re-routed — each
    #: re-executes (and commits) exactly once on a survivor
    tasks_replayed: int = 0
    #: pending (formed but not yet dispatched) invocations re-enqueued from
    #: a dead core onto survivors
    invocations_requeued: int = 0
    #: objects resident on (or in flight to) a dead core migrated to a
    #: surviving core, paying mesh message costs
    objects_migrated: int = 0
    #: lock groups reclaimed from crashed cores
    locks_reclaimed: int = 0
    #: completion events whose commit was dropped because the core died
    commits_dropped: int = 0
    #: commits that applied (the exactly-once count)
    commits_applied: int = 0
    #: commits that would have applied twice — impossible by construction,
    #: tracked so tests can assert the invariant
    duplicate_commits: int = 0
    #: work cycles lost to crashes (charged-but-discarded in-flight work)
    #: plus the recovery window (the longest migration latency per crash)
    downtime_cycles: int = 0
    #: cycles cores spent frozen in transient stalls
    stall_cycles: int = 0
    #: cores that died during the run
    dead_cores: List[int] = field(default_factory=list)

    # -- detection-driven resilience (repro.resilience) ----------------------
    #: heartbeat events emitted by live cores
    heartbeats: int = 0
    #: cores the failure detector suspected (missed-beat threshold crossed);
    #: includes both true detections and false positives
    suspicions: int = 0
    #: suspected cores that were truly dead (detection-driven recovery fired)
    detections: int = 0
    #: cycles between a core's silent halt and its detection, summed over
    #: all detections
    detection_latency_cycles: int = 0
    #: suspected cores that turned out alive (long transient stall); counted
    #: when the core's heartbeat resumed and it rejoined
    false_suspicions: int = 0
    #: suspected-then-recovered cores that rejoined the machine
    rejoins: int = 0
    #: invocations preempted by the watchdog for overrunning their deadline
    watchdog_preemptions: int = 0
    #: preempted invocations re-enqueued with backoff (retry budget left)
    retries: int = 0
    #: total deterministic backoff cycles charged to retries
    backoff_cycles: int = 0
    #: (task, object-group) pairs moved to the dead-letter queue after
    #: exhausting their retry budget
    quarantined_groups: int = 0

    def exactly_once(self) -> bool:
        """True when no commit applied more than once."""
        return self.duplicate_commits == 0

    def mean_detection_latency(self) -> float:
        """Average halt-to-detection latency in cycles (0 if none)."""
        if not self.detections:
            return 0.0
        return self.detection_latency_cycles / self.detections

    def describe(self) -> str:
        text = (
            f"recovery: {self.crashes} crash(es) on cores {self.dead_cores}, "
            f"{self.tasks_replayed} task(s) replayed, "
            f"{self.invocations_requeued} invocation(s) requeued, "
            f"{self.objects_migrated} object(s) migrated, "
            f"{self.locks_reclaimed} lock group(s) reclaimed, "
            f"{self.downtime_cycles:,} downtime cycles, "
            f"{self.commits_applied} commit(s) applied / "
            f"{self.commits_dropped} dropped"
        )
        if self.suspicions or self.heartbeats:
            text += (
                f"; resilience: {self.heartbeats} heartbeat(s), "
                f"{self.suspicions} suspicion(s) "
                f"({self.detections} detected dead, "
                f"{self.false_suspicions} false), "
                f"mean detection latency "
                f"{self.mean_detection_latency():,.0f} cycles, "
                f"{self.rejoins} rejoin(s)"
            )
        if self.watchdog_preemptions or self.quarantined_groups:
            text += (
                f"; watchdog: {self.watchdog_preemptions} preemption(s), "
                f"{self.retries} retr(ies), "
                f"{self.quarantined_groups} group(s) quarantined"
            )
        return text
