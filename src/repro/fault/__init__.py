"""Fault injection and transactional task recovery.

Production many-core runtimes treat core and link failure as routine;
Bamboo's commit-at-completion invariant (a task's flag/tag updates and
object routing apply atomically at its completion event) means a crashed
core can never have published partial state, so every in-flight invocation
is safely re-executable. This package models exactly that:

* :mod:`repro.fault.plan` — deterministic, seeded fault plans (core
  crashes, transient stalls, link-degradation multipliers).
* :mod:`repro.fault.injector` — fires plan events into the machine's
  event queue.
* :mod:`repro.fault.recovery` — the recovery engine: rolls back the
  crashed core's in-flight invocation, reclaims its locks, migrates its
  resident objects to survivors, and rebuilds the routing layout over the
  surviving cores.
* :mod:`repro.fault.stats` — recovery telemetry attached to
  :class:`repro.runtime.machine.MachineResult`.
"""

from .plan import (
    CoreCrash,
    FaultError,
    FaultPlan,
    LinkDegrade,
    TransientStall,
    parse_fault_spec,
)
from .injector import FaultInjector
from .recovery import RecoveryEngine, snapshot_objects, restore_snapshot
from .stats import RecoveryStats

__all__ = [
    "CoreCrash",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "LinkDegrade",
    "RecoveryEngine",
    "RecoveryStats",
    "TransientStall",
    "parse_fault_spec",
    "restore_snapshot",
    "snapshot_objects",
]
