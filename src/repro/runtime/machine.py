"""Deterministic discrete-event many-core machine (TILEPro64 substitute).

The machine executes a compiled Bamboo program under a given layout: each
core runs the distributed scheduler of :mod:`repro.runtime.scheduler`, task
bodies execute through the IR interpreter (charging cycle costs from
:mod:`repro.ir.costs`), and inter-core object transfers pay mesh-distance
message latencies. Virtual time is advanced by a single event queue, so the
simulation is exact and reproducible — the role real silicon plays in the
paper, minus the nondeterminism.

Faithfulness notes:

* A task's effects (flag updates, tag rebinding, lock-group merges, and the
  routing of parameter/new objects) commit at the invocation's *completion*
  time; other cores observing flags mid-execution see pre-transition state,
  exactly as with commit-at-end locking on hardware.
* Locks are all-or-nothing at dispatch; a core that cannot lock simply runs
  a different invocation (tasks never abort, §4.7).
* The optional centralized-scheduler mode serializes every dispatch through
  one scheduling bottleneck — the comparison of §4.6.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.astate import AState, state_of_object
from ..ir import costs
from ..lang.errors import ScheduleError
from ..obs.events import (
    Event,
    LockAcquire,
    LockFail,
    MailRecv,
    MailSend,
    TaskCommit,
    TaskDispatch,
    Tracer,
)
from ..schedule.layout import (
    Layout,
    Router,
    common_tag_binding,
    core_speed,
    mesh_hops,
    scale_duration,
)
from .interp import Interpreter, TaskEffects, make_startup_object
from .objects import BObject, Heap
from .profiler import ProfileData
from .scheduler import CoreScheduler, Invocation, LockManager

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..fault.plan import FaultPlan
    from ..fault.stats import RecoveryStats
    from ..resilience.config import ResilienceConfig
    from ..resilience.watchdog import QuarantineRecord

#: Event kinds that are bookkeeping rather than machine activity: they
#: never extend the run's total cycle count.
_SILENT_KINDS = frozenset({"fault", "hb", "monitor", "watchdog"})
#: Event kinds that represent outstanding real work; the resilience
#: machinery keeps its heartbeat/monitor loop armed while any remain.
_REAL_KINDS = frozenset({"arrive", "kick", "complete", "fault"})


@dataclass
class MachineConfig:
    """Tunables for one machine run."""

    centralized_scheduler: bool = False
    #: charge the optional per-access array bounds checks (paper §5.5)
    bounds_checks: bool = False
    #: per-core relative speeds (heterogeneous cores, §4.6 extension);
    #: missing cores default to 1.0
    core_speeds: Optional[Dict[int, float]] = None
    #: injected faults (:mod:`repro.fault`); None means no fault machinery
    #: is installed and the run is bit-identical to one without this field
    fault_plan: Optional["FaultPlan"] = None
    #: detection-driven resilience (:mod:`repro.resilience`): heartbeats,
    #: missed-beat failure detection, watchdog deadlines, retry/backoff,
    #: and poison quarantine; None (or ``enabled=False``) installs nothing
    #: and the run is bit-identical to one without this field
    resilience: Optional["ResilienceConfig"] = None
    #: assert the termination invariant (no locks held, no queued
    #: invocations on live cores) at end of run
    validate: bool = False
    #: record a per-commit/per-fault event trace on the result (for
    #: determinism checks and debugging; off by default). The legacy
    #: string lines are derived from the typed observability events.
    record_trace: bool = False
    #: full observability (:mod:`repro.obs`): collect the typed event
    #: stream on ``MachineResult.events`` and derive the metrics snapshot
    #: (utilization, queue depths, latency histograms, machine-checked
    #: cycle accounting) on ``MachineResult.metrics``. Off by default —
    #: ``observe`` and ``record_trace`` are the only config flags that
    #: allocate per-event; with both off the run is bit-identical to one
    #: without this machinery.
    observe: bool = False
    max_invocations: int = 5_000_000
    max_events: int = 20_000_000
    interp_max_steps: int = 2_000_000_000


@dataclass
class MachineResult:
    """Outcome of a machine run."""

    total_cycles: int
    core_busy: Dict[int, int]
    invocations: Dict[str, int]
    exit_counts: Dict[Tuple[str, int], int]
    messages: int
    retired_objects: int
    stale_invocations: int
    lock_failures: int
    stdout: str
    profile: Optional[ProfileData] = None
    #: fault-handling telemetry; present iff a fault plan or resilience
    #: config was installed
    recovery: Optional["RecoveryStats"] = None
    #: event trace (only with ``MachineConfig.record_trace``)
    trace: Optional[List[str]] = None
    #: typed event stream (only with ``MachineConfig.observe``)
    events: Optional[List[Event]] = None
    #: metrics snapshot derived from the event stream, including the
    #: machine-checked cycle accounting (only with ``observe``)
    metrics: Optional[Dict[str, object]] = None
    #: dead-letter queue of poison (task, object-group) pairs; present iff
    #: resilience was enabled
    quarantined: Optional[List["QuarantineRecord"]] = None
    #: cycle at which each crashed core died (empty on fault-free runs);
    #: used to keep utilization honest about dead cores
    core_death_cycles: Optional[Dict[int, int]] = None

    def busy_fraction(self) -> float:
        """Mean core utilization over each core's *live* window.

        A crashed core stops accruing busy cycles at its death, so its
        post-crash cycles must not dilute the denominator: each core
        contributes only the cycles it was alive for.
        """
        if not self.core_busy or self.total_cycles == 0:
            return 0.0
        deaths = self.core_death_cycles or {}
        live_window = 0
        for core in self.core_busy:
            live_window += min(deaths.get(core, self.total_cycles), self.total_cycles)
        if live_window == 0:
            return 0.0
        return sum(self.core_busy.values()) / live_window


@dataclass
class _Commit:
    """Deferred effects of a running invocation."""

    invocation: Invocation
    effects: TaskEffects
    flag_updates: Dict[int, Dict[str, bool]]
    routes: List[Tuple[BObject, str, int, int, int]]
    # (object, task, param_index, dest core, extra latency)
    #: dispatch-time state of everything the task can write, for crash
    #: rollback (captured only when a fault plan is installed)
    snapshot: Optional[list] = None
    #: output the task produced, published at commit (fault runs only —
    #: a dropped commit must not leave output behind)
    output: Optional[str] = None


class ManyCoreMachine:
    """Runs one compiled program + layout to completion in virtual time."""

    def __init__(
        self,
        compiled,
        layout: Layout,
        config: Optional[MachineConfig] = None,
        collect_profile: bool = False,
    ):
        layout.validate(compiled.info)
        self.compiled = compiled
        self.info = compiled.info
        self.ir_program = compiled.ir_program
        self.lock_plan = compiled.lock_plan
        self.layout = layout
        self.config = config or MachineConfig()
        self.collect_profile = collect_profile

        self.heap = Heap()
        self.interp = Interpreter(
            self.ir_program,
            self.info,
            self.heap,
            max_steps=self.config.interp_max_steps,
            bounds_checks=self.config.bounds_checks,
        )
        self.router = Router(self.info, layout)
        self.locks = LockManager()
        self.schedulers: Dict[int, CoreScheduler] = {}
        for core in layout.cores_used():
            self.schedulers[core] = CoreScheduler(
                core, self.info, layout.tasks_on_core(core)
            )
        self.busy_until: Dict[int, int] = {
            core: costs.RUNTIME_INIT_COST for core in layout.cores_used()
        }
        self._events: List[Tuple[int, int, str, tuple]] = []
        self._seq = 0
        self._rr_state: Dict[Tuple[int, str], int] = {}
        self._sched_clock = 0  # centralized-scheduler serialization point
        self._commits: Dict[int, _Commit] = {}
        self._commit_id = 0

        # Fault machinery — installed only when a plan or a resilience
        # config is present, so a plain run takes exactly the code paths it
        # always did.
        self.dead_cores: Set[int] = set()
        #: silently crashed cores (halted but not yet discovered by the
        #: failure detector); in oracle mode halt and detection coincide
        self.halted_cores: Set[int] = set()
        #: live cores the detector evicted on a false suspicion; they
        #: rejoin when their heartbeat resumes
        self.suspected_cores: Set[int] = set()
        #: cycle at which each core died (or was evicted); rejoins erase
        self.death_cycles: Dict[int, int] = {}
        #: per-core stall horizon (a frozen core cannot emit heartbeats)
        self.stall_until: Dict[int, int] = {}
        #: dead-lettered object ids (shared with every scheduler)
        self.poisoned_ids: Set[int] = set()
        self.quarantined: List = []
        #: set at the first rejoin: a rejoined core is live but delisted
        #: from the (degraded) layout, so pre-eviction mail still in flight
        #: to it must be re-routed on arrival
        self._stale_routing = False
        self._inflight: Dict[int, int] = {}  # core -> pending commit id
        self._link_multiplier = 1.0
        self._real_events = 0
        self.recovery: Optional["RecoveryStats"] = None
        self._fault_engine = None
        self._injector = None
        self._detector = None
        self._watchdog = None
        resilience = self.config.resilience
        self._resilience_on = resilience is not None and resilience.enabled
        has_faults = bool(
            self.config.fault_plan is not None and self.config.fault_plan.events
        )
        if has_faults or self._resilience_on:
            from ..fault.injector import FaultInjector
            from ..fault.plan import FaultError
            from ..fault.recovery import RecoveryEngine
            from ..fault.stats import RecoveryStats

            if self.config.centralized_scheduler:
                raise FaultError(
                    "fault injection is not supported with the "
                    "centralized scheduler (its core-0 hub cannot fail over)"
                )
            self.recovery = RecoveryStats()
            self._fault_engine = RecoveryEngine(self, self.recovery)
            if has_faults:
                self._injector = FaultInjector(self, self.config.fault_plan)
        if self._resilience_on:
            from ..resilience.detector import FailureDetector
            from ..resilience.watchdog import TaskWatchdog

            resilience.validate()
            self._detector = FailureDetector(
                self, resilience, self._fault_engine, self.recovery
            )
            self._watchdog = TaskWatchdog(self, resilience, self.recovery)
            for scheduler in self.schedulers.values():
                scheduler.poisoned = self.poisoned_ids
        #: typed event collector; None unless observability (or the
        #: legacy string trace, now derived from it) was requested — the
        #: ``is not None`` guards keep the off path allocation-free
        self.tracer: Optional[Tracer] = (
            Tracer()
            if (self.config.observe or self.config.record_trace)
            else None
        )

        # statistics
        self.invocation_counts: Dict[str, int] = {}
        self.exit_counts: Dict[Tuple[str, int], int] = {}
        self.messages = 0
        self.retired = 0
        self.stale_invocations = 0
        self.lock_failures = 0
        self.profile = ProfileData() if collect_profile else None

    # -- event plumbing ----------------------------------------------------------

    def _push(self, time: int, kind: str, payload: tuple) -> None:
        self._seq += 1
        if kind in _REAL_KINDS:
            # Heartbeat/monitor/watchdog events re-arm themselves only while
            # real work remains; this counter is how they know.
            self._real_events += 1
        heapq.heappush(self._events, (time, self._seq, kind, payload))

    def _queue_sample(self, core: int, time: int) -> None:
        """Emits a run-queue depth sample for ``core`` (deduplicated by
        the tracer); call after any mutation of a scheduler's ready queue."""
        if self.tracer is not None:
            self.tracer.queue_sample(time, core, len(self.schedulers[core].ready))

    # -- main loop ----------------------------------------------------------------

    def run(self, args: Sequence[str]) -> MachineResult:
        startup = make_startup_object(self.heap, self.info, list(args))
        start_time = costs.RUNTIME_INIT_COST
        self._route_concrete(startup, sender_core=None, time=start_time)
        if self._injector is not None:
            self._injector.install()
        if self._detector is not None:
            self._detector.install(start_time)

        events_processed = 0
        last_time = start_time
        total_invocations = 0
        while self._events:
            time, _, kind, payload = heapq.heappop(self._events)
            if kind in _REAL_KINDS:
                self._real_events -= 1
            if kind not in _SILENT_KINDS:
                # Bookkeeping events (faults, heartbeats, watchdogs) alone
                # are not machine activity: a crash or heartbeat scheduled
                # after quiescence must not extend the run.
                last_time = max(last_time, time)
            events_processed += 1
            if events_processed > self.config.max_events:
                raise ScheduleError("machine event budget exhausted")
            if kind == "arrive":
                core, task, param_index, obj = payload
                if core in self.dead_cores:
                    # The message was in flight when the core died; the
                    # recovery engine forwards it to a survivor.
                    self._fault_engine.redirect_arrival(
                        core, task, param_index, obj, time
                    )
                    continue
                if self._stale_routing and core not in self.layout.cores_of(task):
                    # The core rejoined after a false suspicion, but the
                    # degraded layout no longer lists it for this task;
                    # delivering here would strand the object (its
                    # co-parameters now live on the adopting core).
                    self._fault_engine.redirect_arrival(
                        core, task, param_index, obj, time
                    )
                    continue
                scheduler = self.schedulers[core]
                scheduler.enqueue_object(task, param_index, obj, time)
                if self.tracer is not None:
                    self.tracer.emit(
                        MailRecv(
                            time=time, core=core, task=task,
                            param_index=param_index,
                        )
                    )
                    self._queue_sample(core, time)
                if core in self.halted_cores:
                    # A silently-dead core still receives mail (the sender
                    # cannot know); it piles up until detection migrates it.
                    continue
                if scheduler.has_work():
                    self._kick(core, time)
            elif kind == "kick":
                (core,) = payload
                self._dispatch(core, time)
            elif kind == "complete":
                core, commit_id = payload
                total_invocations += 1
                if total_invocations > self.config.max_invocations:
                    raise ScheduleError("machine invocation budget exhausted")
                self._complete(core, commit_id, time)
            elif kind == "fault":
                (event,) = payload
                if self._detector is not None:
                    self._detector.on_fault(event, time)
                else:
                    self._fault_engine.apply(event, time)
            elif kind == "hb":
                (core,) = payload
                self._detector.on_heartbeat(core, time)
            elif kind == "monitor":
                self._detector.on_monitor(time)
            elif kind == "watchdog":
                core, commit_id = payload
                self._watchdog.on_deadline(core, commit_id, time)
            else:  # pragma: no cover - exhaustive
                raise ScheduleError(f"unknown event kind {kind}")

        if self._fault_engine is not None:
            # Stalls can leave busy_until past the last event on a core
            # with nothing left to run; the program ends with its last
            # arrival/dispatch/commit, not with an idle core's stall tail.
            total = last_time
        else:
            total = max([last_time] + list(self.busy_until.values()))
        busy = {
            core: self.busy_until[core] - costs.RUNTIME_INIT_COST
            for core in self.busy_until
        }
        if self.profile is not None:
            self.profile.run_cycles = total
        if self.config.validate:
            self._assert_quiescent()
        trace = None
        events = None
        if self.tracer is not None:
            if self.config.record_trace:
                trace = self.tracer.legacy_trace()
            if self.config.observe:
                events = self.tracer.events
        result = MachineResult(
            total_cycles=total,
            core_busy=busy,
            invocations=dict(self.invocation_counts),
            exit_counts=dict(self.exit_counts),
            messages=self.messages,
            retired_objects=self.retired,
            stale_invocations=self.stale_invocations,
            lock_failures=self.lock_failures,
            stdout=self.interp.output(),
            profile=self.profile,
            recovery=self.recovery,
            trace=trace,
            quarantined=list(self.quarantined) if self._resilience_on else None,
            core_death_cycles=dict(self.death_cycles) or None,
            events=events,
        )
        if events is not None:
            from ..obs.metrics import build_metrics

            result.metrics = build_metrics(
                events,
                makespan=result.total_cycles,
                core_busy=result.core_busy,
                death_cycles=result.core_death_cycles or {},
                invocations=result.invocations,
                messages=result.messages,
                lock_failures=result.lock_failures,
                busy_fraction=result.busy_fraction(),
            )
        return result

    def _assert_quiescent(self) -> None:
        """The termination invariant: when the event queue drains, no lock
        may still be held and no live core may have runnable work."""
        held = self.locks.held_groups()
        if held:
            raise ScheduleError(
                f"termination invariant violated: {len(held)} lock group(s) "
                f"still held at end of run: {held}"
            )
        for core, scheduler in self.schedulers.items():
            if core in self.dead_cores or core in self.halted_cores:
                continue
            if scheduler.has_work():
                raise ScheduleError(
                    f"termination invariant violated: core {core} still has "
                    f"{len(scheduler.ready)} queued invocation(s) at end of run"
                )

    # -- dispatch ---------------------------------------------------------------------

    def _kick(self, core: int, time: int) -> None:
        ready_at = max(time, self.busy_until.get(core, 0))
        self._push(ready_at, "kick", (core,))

    def _dispatch(self, core: int, time: int) -> None:
        if core in self.dead_cores or core in self.halted_cores:
            return  # crashed (or silently halted); survivors take the work
        if self.busy_until[core] > time:
            return  # busy; the completion handler re-kicks
        scheduler = self.schedulers[core]
        invocation, stale = scheduler.pick_invocation(self.locks)
        if stale:
            self.stale_invocations += len(stale)
            for obj in stale:
                self._route_concrete(obj, sender_core=core, time=time)
        if self.tracer is not None:
            self._queue_sample(core, time)
        if invocation is None:
            if scheduler.has_work():
                self.lock_failures += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        LockFail(
                            time=time, core=core,
                            queued=len(scheduler.ready),
                        )
                    )
            return

        start = time
        if self.config.centralized_scheduler:
            # Every dispatch serializes through the central scheduler on
            # core 0 and pays the request/response round trip to it (§4.6).
            round_trip = 2 * (
                costs.MSG_SEND_COST
                + self.layout.hops(core, 0) * costs.HOP_COST
            )
            slot = max(self._sched_clock, time)
            self._sched_clock = slot + costs.DISPATCH_COST + round_trip
            start = self._sched_clock

        pre_cost = costs.DISPATCH_COST + costs.LOCK_COST * len(invocation.objects)
        snapshot = None
        out_pos = 0
        if self._fault_engine is not None:
            # A crash between dispatch and completion rolls the invocation
            # back: capture the pre-state of everything the body can write,
            # and divert its output so a dropped commit publishes nothing.
            from ..fault.recovery import snapshot_objects

            snapshot = snapshot_objects(invocation.objects)
            out_pos = self.interp.stdout.tell()
        effects = self.interp.run_task(invocation.task, invocation.objects)
        output: Optional[str] = None
        if self._fault_engine is not None:
            buf = self.interp.stdout
            output = buf.getvalue()[out_pos:]
            buf.seek(out_pos)
            buf.truncate()

        func = self.ir_program.tasks[invocation.task]
        spec = func.exits[effects.exit_id]
        flag_updates = {
            index: dict(updates) for index, updates in spec.flag_updates.items()
        }
        commit_cost = costs.FLAG_UPDATE_COST * (
            sum(len(u) for u in flag_updates.values())
            + sum(len(a) for a in effects.tag_actions.values())
        )

        routes, route_cost = self._plan_routing(core, invocation, effects, flag_updates)
        busy = pre_cost + effects.cycles + commit_cost + route_cost
        busy = scale_duration(busy, core_speed(self.config.core_speeds, core))
        completion = start + busy

        self._commit_id += 1
        self._commits[self._commit_id] = _Commit(
            invocation=invocation,
            effects=effects,
            flag_updates=flag_updates,
            routes=routes,
            snapshot=snapshot,
            output=output,
        )
        if self._fault_engine is not None:
            self._inflight[core] = self._commit_id
        self.busy_until[core] = completion
        self._push(completion, "complete", (core, self._commit_id))
        if self._watchdog is not None:
            self._watchdog.arm(core, self._commit_id, invocation.task, start, completion)
        if self.tracer is not None:
            self.tracer.emit(
                LockAcquire(
                    time=time, core=core, task=invocation.task,
                    objects=len(invocation.objects),
                )
            )
            self.tracer.emit(
                TaskDispatch(
                    time=time,
                    core=core,
                    task=invocation.task,
                    span=self._commit_id,
                    start=start,
                    end=completion,
                    formed_at=invocation.formed_at,
                    objects=len(invocation.objects),
                )
            )

        if self.profile is not None:
            allocs: Dict[int, int] = {}
            for record in effects.new_objects:
                allocs[record.site_id] = allocs.get(record.site_id, 0) + 1
            # Profiled cycles include dispatch/lock/commit overhead but not
            # message-send costs: on the profiling (single-core) run all
            # routing is local, matching the paper's bootstrap profiles.
            local_cost = busy - route_cost + self._local_route_cost(routes, core)
            self.profile.record_invocation(
                invocation.task, effects.exit_id, local_cost, allocs
            )

    @staticmethod
    def _local_route_cost(
        routes: List[Tuple[BObject, str, int, int, int]], core: int
    ) -> int:
        return costs.ENQUEUE_COST * sum(1 for r in routes if r[3] == core)

    # -- routing ------------------------------------------------------------------------

    def _future_state(
        self,
        obj: BObject,
        param_index: int,
        flag_updates: Dict[int, Dict[str, bool]],
        effects: TaskEffects,
    ) -> AState:
        flags = set(obj.flags)
        for flag, value in flag_updates.get(param_index, {}).items():
            if value:
                flags.add(flag)
            else:
                flags.discard(flag)
        tag_counts = {t: len(tags) for t, tags in obj.tags.items()}
        for op, tag in effects.tag_actions.get(param_index, []):
            delta = 1 if op == "add" else -1
            tag_counts[tag.tag_type] = tag_counts.get(tag.tag_type, 0) + delta
        return AState.make(flags, tag_counts)

    def _plan_routing(
        self,
        core: int,
        invocation: Invocation,
        effects: TaskEffects,
        flag_updates: Dict[int, Dict[str, bool]],
    ) -> Tuple[List[Tuple[BObject, str, int, int, int]], int]:
        """Determines destinations for parameter and new objects.

        Returns the route list plus the sender-side cycle cost (message
        composition for remote sends, enqueue work for local ones).
        """
        routes: List[Tuple[BObject, str, int, int, int]] = []
        sender_cost = 0
        plans: List[Tuple[BObject, AState, Optional[Dict[str, List[int]]]]] = []
        for param_index, obj in enumerate(invocation.objects):
            future_state = self._future_state(obj, param_index, flag_updates, effects)
            # Routing decisions (tag hashing in particular) must see the
            # tags this exit is *about to* bind, not just the current ones.
            future_tags: Dict[str, List[int]] = {
                tag_type: [t.tag_id for t in tags]
                for tag_type, tags in obj.tags.items()
            }
            for op, tag in effects.tag_actions.get(param_index, []):
                bucket = future_tags.setdefault(tag.tag_type, [])
                if op == "add" and tag.tag_id not in bucket:
                    bucket.append(tag.tag_id)
                elif op == "clear" and tag.tag_id in bucket:
                    bucket.remove(tag.tag_id)
            plans.append((obj, future_state, future_tags))
        for record in effects.new_objects:
            obj = record.obj
            plans.append((obj, state_of_object(obj), None))

        for obj, state, tags_override in plans:
            consumed = False
            for task, param_index in self.router.consumers(obj.class_name, state):
                dest, latency = self._choose_destination(
                    core, task, obj, state, tags_override
                )
                routes.append((obj, task, param_index, dest, latency))
                consumed = True
                if dest == core:
                    sender_cost += costs.ENQUEUE_COST
                else:
                    size = len(obj.fields)
                    sender_cost += costs.MSG_SEND_COST + costs.MSG_WORD_COST * size
            if not consumed:
                self.retired += 1
        return routes, sender_cost

    def _choose_destination(
        self,
        sender: int,
        task: str,
        obj: BObject,
        state: AState,
        tags_override: Optional[Dict[str, List[int]]] = None,
    ) -> Tuple[int, int]:
        tag_hash: Optional[int] = None
        task_info = self.info.task_info(task)
        if len(self.layout.cores_of(task)) > 1 and len(task_info.decl.params) > 1:
            binding = common_tag_binding(task_info.decl)
            if binding is not None:
                tag_type = next(
                    g.tag_type
                    for g in task_info.decl.params[0].tag_guards
                    if g.binding == binding
                )
                if tags_override is not None:
                    tag_ids = tags_override.get(tag_type, [])
                else:
                    tag_ids = [t.tag_id for t in obj.tags_of_type(tag_type)]
                if tag_ids:
                    tag_hash = min(tag_ids)
        dest = self.router.pick_core(task, self._rr_state, sender, tag_hash)
        if dest == sender:
            return dest, 0
        hops = self.layout.hops(sender, dest)
        hop_cost = hops * costs.HOP_COST
        if self._link_multiplier != 1.0:
            # A degraded link fabric (fault injection) inflates per-hop
            # latency; 1.0 leaves the nominal cost expression untouched.
            hop_cost = int(round(hop_cost * self._link_multiplier))
        latency = (
            costs.MSG_SEND_COST
            + hop_cost
            + costs.MSG_WORD_COST * len(obj.fields)
            + costs.ENQUEUE_COST
        )
        return dest, latency

    def _route_concrete(
        self, obj: BObject, sender_core: Optional[int], time: int
    ) -> None:
        """Routes an object according to its *current* state (used for the
        startup object and for stale re-enqueues)."""
        state = state_of_object(obj)
        consumers = self.router.consumers(obj.class_name, state)
        if not consumers:
            self.retired += 1
            return
        for task, param_index in consumers:
            sender = sender_core if sender_core is not None else 0
            dest, latency = self._choose_destination(sender, task, obj, state)
            if sender_core is None:
                latency = 0
            self._push(time + latency, "arrive", (dest, task, param_index, obj))
            if sender_core is not None and dest != sender_core:
                self.messages += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        MailSend(
                            time=time, core=sender_core, dest=dest,
                            task=task, latency=latency,
                        )
                    )

    # -- completion -----------------------------------------------------------------------

    def _complete(self, core: int, commit_id: int, time: int) -> None:
        if commit_id not in self._commits:
            # The owning core crashed mid-flight; the recovery engine
            # already rolled the invocation back and re-routed its objects.
            if self.recovery is not None:
                self.recovery.commits_dropped += 1
            return
        commit = self._commits.pop(commit_id)
        if self._fault_engine is not None:
            self._inflight.pop(core, None)
        invocation = commit.invocation
        effects = commit.effects
        task = invocation.task
        if commit.output:
            self.interp.stdout.write(commit.output)

        # 1. Commit flag updates and tag actions.
        for param_index, updates in commit.flag_updates.items():
            obj = invocation.objects[param_index]
            for flag, value in updates.items():
                obj.set_flag(flag, value)
        for param_index, actions in effects.tag_actions.items():
            obj = invocation.objects[param_index]
            for op, tag in actions:
                if op == "add":
                    obj.bind_tag(tag)
                else:
                    obj.unbind_tag(tag)

        # 2. Merge lock groups for sharing-introducing tasks, then unlock.
        plan = self.lock_plan.plan_for(task)
        for group in plan.shared_groups:
            self.locks.merge(
                [invocation.objects[index].obj_id for index in sorted(group)]
            )
        self.locks.unlock_all(invocation.objects, core)

        # 3. Route objects to their next consumers.
        for obj, dest_task, param_index, dest, latency in commit.routes:
            self._push(time + latency, "arrive", (dest, dest_task, param_index, obj))
            if dest != core:
                self.messages += 1
                if self.tracer is not None:
                    self.tracer.emit(
                        MailSend(
                            time=time, core=core, dest=dest,
                            task=dest_task, latency=latency,
                        )
                    )

        # 4. Statistics.
        self.invocation_counts[task] = self.invocation_counts.get(task, 0) + 1
        key = (task, effects.exit_id)
        self.exit_counts[key] = self.exit_counts.get(key, 0) + 1
        if self.recovery is not None:
            self.recovery.commits_applied += 1
        if self.tracer is not None:
            self.tracer.emit(
                TaskCommit(
                    time=time, core=core, task=task,
                    span=commit_id, exit_id=effects.exit_id,
                )
            )

        # 5. Keep the pipeline moving: this core and any lock-blocked cores.
        self._kick(core, time)
        for other, scheduler in self.schedulers.items():
            if other != core and scheduler.has_work() and self.busy_until[other] <= time:
                self._kick(other, time)


def run_on_machine(
    compiled,
    layout: Layout,
    args: Sequence[str],
    config: Optional[MachineConfig] = None,
    collect_profile: bool = False,
) -> MachineResult:
    """Convenience wrapper: builds a machine and runs it once."""
    machine = ManyCoreMachine(
        compiled, layout, config=config, collect_profile=collect_profile
    )
    return machine.run(args)
