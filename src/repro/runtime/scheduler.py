"""Per-core distributed runtime structures (paper §4.7).

Each core runs a lightweight scheduler: for every task instantiated on the
core there is one *parameter set* per parameter; objects that may satisfy a
parameter's guard are placed in the corresponding set. When an object
arrives, the scheduler forms new task invocations (assignments of parameter
objects to parameters). Before executing an invocation the runtime locks all
parameter objects — if any lock is unavailable it simply tries a different
invocation (tasks never abort). Tag constraints are resolved using the tag
instances' backward references.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..analysis.astate import runtime_guard_matches
from ..lang import ast
from ..sema.symbols import ProgramInfo
from .objects import BObject


@dataclass
class Invocation:
    """One pending task invocation: a full assignment of parameter objects."""

    task: str
    objects: List[BObject]
    formed_at: int  # simulated time, for FIFO fairness and traces
    seq: int = 0

    def __repr__(self) -> str:
        objs = ", ".join(repr(o) for o in self.objects)
        return f"{self.task}({objs})"


class LockManager:
    """Object locks with mergeable lock groups.

    Each global object starts in its own lock group. Tasks the disjointness
    analysis flagged as sharing-introducing merge the groups of the affected
    parameters at commit, so later tasks on either structure serialize —
    the runtime realization of the paper's shared locks.
    """

    def __init__(self):
        self._parent: Dict[int, int] = {}
        self._held: Dict[int, int] = {}  # group root -> owner core

    def _find(self, obj_id: int) -> int:
        parent = self._parent
        parent.setdefault(obj_id, obj_id)
        root = obj_id
        while parent[root] != root:
            parent[root] = parent[parent[root]]
            root = parent[root]
        return root

    def merge(self, obj_ids: Sequence[int]) -> None:
        ids = list(obj_ids)
        for other in ids[1:]:
            ra, rb = self._find(ids[0]), self._find(other)
            if ra != rb:
                held_a = self._held.pop(ra, None)
                held_b = self._held.pop(rb, None)
                self._parent[ra] = rb
                owner = held_a if held_a is not None else held_b
                if owner is not None:
                    self._held[rb] = owner

    def try_lock_all(self, objects: Sequence[BObject], core: int) -> bool:
        """Attempts to lock every object's group; all-or-nothing."""
        roots: Set[int] = {self._find(obj.obj_id) for obj in objects}
        for root in roots:
            owner = self._held.get(root)
            if owner is not None and owner != core:
                return False
        for root in roots:
            self._held[root] = core
        return True

    def unlock_all(self, objects: Sequence[BObject], core: int) -> None:
        for obj in objects:
            root = self._find(obj.obj_id)
            if self._held.get(root) == core:
                del self._held[root]

    def is_locked(self, obj: BObject) -> bool:
        return self._find(obj.obj_id) in self._held

    def release_core(self, core: int) -> int:
        """Releases every lock group owned by ``core``; returns how many.

        Fault recovery calls this when a core crashes: locks are acquired
        all-or-nothing at dispatch and held only for the invocation in
        flight, so everything the dead core owned belonged to the
        invocation being rolled back and can be reclaimed wholesale.
        """
        roots = [root for root, owner in self._held.items() if owner == core]
        for root in roots:
            del self._held[root]
        return len(roots)

    def held_groups(self) -> Dict[int, int]:
        """A snapshot of currently held groups (root -> owner core)."""
        return dict(self._held)


class CoreScheduler:
    """The scheduler state of a single core."""

    def __init__(
        self,
        core: int,
        info: ProgramInfo,
        tasks: Sequence[str],
        poisoned: Optional[Set[int]] = None,
    ):
        self.core = core
        self.info = info
        self.task_names: List[str] = list(tasks)
        #: (task, param index) -> FIFO of candidate objects
        self.param_sets: Dict[Tuple[str, int], Deque[BObject]] = {}
        self.ready: Deque[Invocation] = deque()
        self._seq = 0
        #: shared dead-letter set (object ids quarantined by the resilience
        #: watchdog); None when resilience is off — the enqueue filter then
        #: costs nothing
        self.poisoned = poisoned
        for task in self.task_names:
            task_info = info.task_info(task)
            for param_index in range(len(task_info.decl.params)):
                self.param_sets[(task, param_index)] = deque()

    # -- fault recovery -----------------------------------------------------------

    def adopt_task(self, task: str) -> None:
        """Registers a task newly mapped to this core (degraded layouts map
        a dead core's tasks onto survivors mid-run). Idempotent."""
        if task in self.task_names:
            return
        self.task_names.append(task)
        task_info = self.info.task_info(task)
        for param_index in range(len(task_info.decl.params)):
            self.param_sets[(task, param_index)] = deque()

    def drain(self) -> Tuple[List[Tuple[str, int, BObject]], List[Invocation]]:
        """Empties the scheduler when its core dies.

        Returns ``(pending, ready)``: ``pending`` is every parameter-set
        entry as ``(task, param_index, object)``, ``ready`` is every formed
        but undispatched invocation. The caller migrates both to surviving
        cores; this scheduler keeps no work.
        """
        pending: List[Tuple[str, int, BObject]] = []
        for (task, param_index), bucket in sorted(self.param_sets.items()):
            for obj in bucket:
                pending.append((task, param_index, obj))
            bucket.clear()
        ready = list(self.ready)
        self.ready.clear()
        return pending, ready

    def purge_poisoned(self, poisoned: Set[int]) -> Tuple[int, List[BObject]]:
        """Removes quarantined objects already resident in this scheduler.

        Returns ``(removed, displaced)``: ``removed`` counts the purged
        parameter-set entries and dropped ready invocations; ``displaced``
        holds the *healthy* objects of dropped invocations, which the
        caller must re-route (they were not quarantined themselves).
        """
        removed = 0
        for bucket in self.param_sets.values():
            doomed = [obj for obj in bucket if obj.obj_id in poisoned]
            for obj in doomed:
                bucket.remove(obj)
            removed += len(doomed)
        displaced: List[BObject] = []
        survivors: Deque[Invocation] = deque()
        for invocation in self.ready:
            if any(obj.obj_id in poisoned for obj in invocation.objects):
                removed += 1
                displaced.extend(
                    obj for obj in invocation.objects if obj.obj_id not in poisoned
                )
            else:
                survivors.append(invocation)
        self.ready = survivors
        return removed, displaced

    # -- arrival & invocation formation ------------------------------------------

    def enqueue_object(
        self, task: str, param_index: int, obj: BObject, now: int
    ) -> List[Invocation]:
        """Inserts an object into a parameter set and forms any invocations
        the new object makes possible."""
        if self.poisoned and obj.obj_id in self.poisoned:
            return []  # dead-lettered: quarantined objects never re-enter
        bucket = self.param_sets[(task, param_index)]
        if any(existing is obj for existing in bucket):
            return []
        bucket.append(obj)
        formed = []
        while True:
            invocation = self._try_form(task, now)
            if invocation is None:
                break
            formed.append(invocation)
            self.ready.append(invocation)
        return formed

    def _try_form(self, task: str, now: int) -> Optional[Invocation]:
        task_info = self.info.task_info(task)
        params = task_info.decl.params
        sets = [self.param_sets[(task, i)] for i in range(len(params))]
        if any(not bucket for bucket in sets):
            return None
        if len(params) == 1:
            obj = sets[0].popleft()
            return self._make_invocation(task, [obj], now)
        combo = self._find_tag_compatible(params, sets)
        if combo is None:
            return None
        for bucket, obj in zip(sets, combo):
            bucket.remove(obj)
        return self._make_invocation(task, list(combo), now)

    def _make_invocation(
        self, task: str, objects: List[BObject], now: int
    ) -> Invocation:
        self._seq += 1
        return Invocation(task=task, objects=objects, formed_at=now, seq=self._seq)

    @staticmethod
    def _find_tag_compatible(
        params: Sequence[ast.TaskParam], sets: Sequence[Deque[BObject]]
    ) -> Optional[Tuple[BObject, ...]]:
        """Finds one combination of objects (one per set) whose tag bindings
        are mutually consistent. Bindings shared by several parameters must
        resolve to the same tag instance."""
        bindings: Dict[str, List[Tuple[int, str]]] = {}
        for index, param in enumerate(params):
            for guard in param.tag_guards:
                bindings.setdefault(guard.binding, []).append(
                    (index, guard.tag_type)
                )

        def compatible(combo: Sequence[BObject]) -> bool:
            for constraint in bindings.values():
                shared: Optional[Set[int]] = None
                for param_index, tag_type in constraint:
                    ids = {
                        t.tag_id for t in combo[param_index].tags_of_type(tag_type)
                    }
                    if not ids:
                        return False
                    shared = ids if shared is None else (shared & ids)
                if len(constraint) > 1 and not shared:
                    return False
            return True

        def search(index: int, chosen: List[BObject]) -> Optional[Tuple[BObject, ...]]:
            if index == len(sets):
                combo = tuple(chosen)
                return combo if compatible(combo) else None
            for candidate in sets[index]:
                chosen.append(candidate)
                found = search(index + 1, chosen)
                chosen.pop()
                if found is not None:
                    return found
            return None

        return search(0, [])

    # -- dispatch ---------------------------------------------------------------

    def guards_still_hold(self, invocation: Invocation) -> bool:
        task_info = self.info.task_info(invocation.task)
        for param, obj in zip(task_info.decl.params, invocation.objects):
            if not runtime_guard_matches(param, obj):
                return False
        return True

    def pick_invocation(
        self, locks: LockManager
    ) -> Tuple[Optional[Invocation], List[BObject]]:
        """Selects the next executable invocation.

        Returns ``(invocation, stale_objects)``: ``invocation`` is None when
        nothing can run right now; ``stale_objects`` are objects from
        invalidated invocations that must be re-routed by the caller.
        Lock-blocked invocations stay queued.
        """
        stale: List[BObject] = []
        blocked: List[Invocation] = []
        chosen: Optional[Invocation] = None
        while self.ready:
            invocation = self.ready.popleft()
            if not self.guards_still_hold(invocation):
                stale.extend(invocation.objects)
                continue
            if locks.try_lock_all(invocation.objects, self.core):
                chosen = invocation
                break
            blocked.append(invocation)
        # Preserve queue order for invocations we skipped due to locks.
        for invocation in reversed(blocked):
            self.ready.appendleft(invocation)
        return chosen, stale

    def has_work(self) -> bool:
        return bool(self.ready)
