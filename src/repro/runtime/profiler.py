"""Profile collection and statistics (paper §4.3.1).

A profile records, per task invocation: which taskexit the invocation took,
its cycle count, and how many parameter objects it allocated at each
allocation site. The compiler turns the raw counts into the statistics the
synthesis pipeline needs: average execution time per exit, the probability
of each exit, and the average number of new objects per exit — together
these form the Markov model of the program's execution.

Profiles are gathered by running the program on the machine simulator
(usually on a single core, which the paper uses to bootstrap synthesis).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional


@dataclass
class ExitStats:
    """Aggregate statistics for one (task, exit point) pair."""

    count: int = 0
    total_cycles: int = 0
    allocs: Dict[int, int] = field(default_factory=dict)  # site -> total objects

    @property
    def avg_cycles(self) -> float:
        return self.total_cycles / self.count if self.count else 0.0

    def avg_allocs(self) -> Dict[int, float]:
        if not self.count:
            return {}
        return {site: total / self.count for site, total in self.allocs.items()}


#: Cap on the recorded exit sequence per task (memory guard).
MAX_SEQUENCE = 200_000


@dataclass
class TaskStats:
    invocations: int = 0
    exits: Dict[int, ExitStats] = field(default_factory=dict)
    #: the exit ids in invocation order — replaying it keeps the simulated
    #: per-exit counts exactly equal to the profile-predicted counts at
    #: every prefix (the optimum of the paper's count-matching criterion)
    sequence: List[int] = field(default_factory=list)

    def exit_probability(self, exit_id: int) -> float:
        if not self.invocations:
            return 0.0
        stats = self.exits.get(exit_id)
        return stats.count / self.invocations if stats else 0.0


class ProfileData:
    """Processed profile statistics for a whole program run."""

    def __init__(self):
        self.tasks: Dict[str, TaskStats] = {}
        #: total simulated cycles of the profiled run (informational)
        self.run_cycles: int = 0

    # -- recording ------------------------------------------------------------

    def record_invocation(
        self,
        task: str,
        exit_id: int,
        cycles: int,
        allocs: Optional[Dict[int, int]] = None,
    ) -> None:
        task_stats = self.tasks.setdefault(task, TaskStats())
        task_stats.invocations += 1
        if len(task_stats.sequence) < MAX_SEQUENCE:
            task_stats.sequence.append(exit_id)
        exit_stats = task_stats.exits.setdefault(exit_id, ExitStats())
        exit_stats.count += 1
        exit_stats.total_cycles += cycles
        for site, count in (allocs or {}).items():
            exit_stats.allocs[site] = exit_stats.allocs.get(site, 0) + count

    # -- queries ---------------------------------------------------------------

    def task_names(self) -> List[str]:
        return sorted(self.tasks)

    def invocations(self, task: str) -> int:
        stats = self.tasks.get(task)
        return stats.invocations if stats else 0

    def exit_ids(self, task: str) -> List[int]:
        stats = self.tasks.get(task)
        return sorted(stats.exits) if stats else []

    def exit_probability(self, task: str, exit_id: int) -> float:
        stats = self.tasks.get(task)
        return stats.exit_probability(exit_id) if stats else 0.0

    def exit_sequence(self, task: str) -> List[int]:
        stats = self.tasks.get(task)
        return stats.sequence if stats else []

    def exit_count(self, task: str, exit_id: int) -> int:
        stats = self.tasks.get(task)
        if not stats or exit_id not in stats.exits:
            return 0
        return stats.exits[exit_id].count

    def avg_cycles(self, task: str, exit_id: int) -> float:
        stats = self.tasks.get(task)
        if not stats or exit_id not in stats.exits:
            return 0.0
        return stats.exits[exit_id].avg_cycles

    def avg_task_cycles(self, task: str) -> float:
        """Average cycles over all exits, weighted by exit frequency."""
        stats = self.tasks.get(task)
        if not stats or not stats.invocations:
            return 0.0
        total = sum(e.total_cycles for e in stats.exits.values())
        return total / stats.invocations

    def avg_allocs(self, task: str, exit_id: int) -> Dict[int, float]:
        stats = self.tasks.get(task)
        if not stats or exit_id not in stats.exits:
            return {}
        return stats.exits[exit_id].avg_allocs()

    # -- (de)serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "run_cycles": self.run_cycles,
            "tasks": {
                task: {
                    "invocations": stats.invocations,
                    "sequence": list(stats.sequence),
                    "exits": {
                        str(exit_id): {
                            "count": e.count,
                            "total_cycles": e.total_cycles,
                            "allocs": {str(s): c for s, c in e.allocs.items()},
                        }
                        for exit_id, e in stats.exits.items()
                    },
                }
                for task, stats in self.tasks.items()
            },
        }

    @staticmethod
    def from_dict(data: dict) -> "ProfileData":
        profile = ProfileData()
        profile.run_cycles = data.get("run_cycles", 0)
        for task, tdata in data.get("tasks", {}).items():
            stats = TaskStats(
                invocations=tdata["invocations"],
                sequence=list(tdata.get("sequence", [])),
            )
            for exit_key, edata in tdata["exits"].items():
                stats.exits[int(exit_key)] = ExitStats(
                    count=edata["count"],
                    total_cycles=edata["total_cycles"],
                    allocs={int(s): c for s, c in edata["allocs"].items()},
                )
            profile.tasks[task] = stats
        return profile
