"""Runtime substrate: heap, interpreter, per-core schedulers, machine."""

from .interp import Interpreter, TaskEffects, make_startup_object
from .machine import MachineConfig, MachineResult, ManyCoreMachine, run_on_machine
from .objects import BArray, BObject, Heap, TagInstance
from .profiler import ProfileData
from .scheduler import CoreScheduler, Invocation, LockManager

__all__ = [
    "BArray",
    "BObject",
    "CoreScheduler",
    "Heap",
    "Interpreter",
    "Invocation",
    "LockManager",
    "MachineConfig",
    "MachineResult",
    "ManyCoreMachine",
    "ProfileData",
    "TagInstance",
    "TaskEffects",
    "make_startup_object",
    "run_on_machine",
]
