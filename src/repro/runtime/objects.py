"""Heap model for interpreted Bamboo programs.

Objects carry their class, field values, the set of currently-true flags
(abstract state), and tag bindings. Tag instances keep backward references to
the objects they are bound to — the paper's runtime uses these to prune task
invocations with tag constraints (§4.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set


@dataclass
class TagInstance:
    """A runtime tag instance (created by ``tag t = new tag(T)``)."""

    tag_id: int
    tag_type: str
    bound_objects: Set[int] = field(default_factory=set)  # object ids

    def __hash__(self) -> int:
        return self.tag_id

    def __eq__(self, other: object) -> bool:
        return isinstance(other, TagInstance) and other.tag_id == self.tag_id

    def __repr__(self) -> str:
        return f"tag<{self.tag_type}#{self.tag_id}>"


@dataclass(eq=False)
class BObject:
    """A Bamboo heap object."""

    obj_id: int
    class_name: str
    fields: List[object]
    flags: Set[str] = field(default_factory=set)
    tags: Dict[str, List[TagInstance]] = field(default_factory=dict)

    def flag_state(self) -> FrozenSet[str]:
        return frozenset(self.flags)

    def set_flag(self, flag: str, value: bool) -> None:
        if value:
            self.flags.add(flag)
        else:
            self.flags.discard(flag)

    def bind_tag(self, tag: TagInstance) -> None:
        bucket = self.tags.setdefault(tag.tag_type, [])
        if tag not in bucket:
            bucket.append(tag)
            tag.bound_objects.add(self.obj_id)

    def unbind_tag(self, tag: TagInstance) -> None:
        bucket = self.tags.get(tag.tag_type, [])
        if tag in bucket:
            bucket.remove(tag)
            tag.bound_objects.discard(self.obj_id)

    def tags_of_type(self, tag_type: str) -> List[TagInstance]:
        return list(self.tags.get(tag_type, []))

    def tag_count_class(self, tag_type: str) -> int:
        """1-limited count (0, 1, 2 meaning 'at least 2') of bound tags."""
        count = len(self.tags.get(tag_type, []))
        return min(count, 2)

    def __repr__(self) -> str:
        flags = ",".join(sorted(self.flags)) or "-"
        return f"{self.class_name}#{self.obj_id}[{flags}]"


@dataclass(eq=False)
class BArray:
    """A Bamboo array value."""

    elem_type: str
    values: List[object]

    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"{self.elem_type}[{len(self.values)}]"


class Heap:
    """Allocates objects, arrays, and tags with deterministic ids."""

    def __init__(self):
        self._next_obj_id = 0
        self._next_tag_id = 0
        self.objects: Dict[int, BObject] = {}

    def new_object(self, class_name: str, num_fields: int) -> BObject:
        obj = BObject(
            obj_id=self._next_obj_id,
            class_name=class_name,
            fields=[None] * num_fields,
        )
        self._next_obj_id += 1
        self.objects[obj.obj_id] = obj
        return obj

    def new_array(self, elem_type: str, length: int, fill: object = None) -> BArray:
        return BArray(elem_type=elem_type, values=[fill] * length)

    def new_tag(self, tag_type: str) -> TagInstance:
        tag = TagInstance(tag_id=self._next_tag_id, tag_type=tag_type)
        self._next_tag_id += 1
        return tag

    def object_count(self) -> int:
        return len(self.objects)


def default_field_value(type_name: str) -> object:
    if type_name == "int":
        return 0
    if type_name == "float":
        return 0.0
    if type_name == "boolean":
        return False
    return None
