"""IR interpreter with cycle accounting.

This stands in for the machine code the paper's compiler emits for the
TILEPro64: executing a task or method yields both its *result* (heap effects,
exit point taken, objects allocated) and its *cost* in simulated cycles under
the :mod:`repro.ir.costs` model.

The interpreter is deliberately independent of the many-core machine — the
machine simulator calls :meth:`Interpreter.run_task` / ``run_method`` and
spends the returned cycles on a core's clock, while the sequential baseline
harness calls ``run_method`` directly (no runtime overhead), mirroring the
paper's single-core C versions.
"""

from __future__ import annotations

import io as _io
import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..lang.errors import RuntimeBambooError
from ..sema import builtins
from ..sema.symbols import ProgramInfo
from ..ir import costs
from ..ir import instructions as ir
from .objects import BArray, BObject, Heap, TagInstance, default_field_value

#: Hard limit on interpreted instructions per top-level run, to turn infinite
#: loops in user programs into errors instead of hangs.
DEFAULT_MAX_STEPS = 500_000_000

_MAX_CALL_DEPTH = 400


def _int_div(a: int, b: int) -> int:
    if b == 0:
        raise RuntimeBambooError("integer division by zero")
    quotient = abs(a) // abs(b)
    return -quotient if (a < 0) != (b < 0) else quotient


def _int_rem(a: int, b: int) -> int:
    return a - b * _int_div(a, b)


@dataclass
class NewObjectRecord:
    """An object allocated during one task invocation, with its site."""

    obj: BObject
    site_id: int


@dataclass
class TaskEffects:
    """Everything the runtime needs to commit after a task invocation."""

    exit_id: int
    cycles: int
    new_objects: List[NewObjectRecord] = field(default_factory=list)
    #: Resolved tag actions per parameter index: (op, tag instance).
    tag_actions: Dict[int, List[Tuple[str, TagInstance]]] = field(default_factory=dict)


class Interpreter:
    """Executes IR functions against a shared heap."""

    def __init__(
        self,
        ir_program: ir.IRProgram,
        info: ProgramInfo,
        heap: Optional[Heap] = None,
        max_steps: int = DEFAULT_MAX_STEPS,
        bounds_checks: bool = False,
    ):
        self.ir_program = ir_program
        self.info = info
        self.heap = heap if heap is not None else Heap()
        self.max_steps = max_steps
        #: When True, every array access pays BOUNDS_CHECK_COST extra cycles
        #: (the paper's optional safety mode, §5.5). The interpreter always
        #: *performs* the check — Python-level safety — so the flag only
        #: affects cost accounting, exactly like enabling the emitted checks
        #: in the paper's generated C code.
        self._array_access_cost_extra = (
            costs.BOUNDS_CHECK_COST if bounds_checks else 0
        )
        self.steps = 0
        self.stdout = _io.StringIO()
        self._builtin_cache: Dict[str, builtins.BuiltinFunction] = {
            fn.key: fn for fn in builtins.all_builtins()
        }
        # Per-run state:
        self._cycles = 0
        self._new_objects: List[NewObjectRecord] = []

    # -- public API ----------------------------------------------------------

    def run_method(self, qualified_name: str, args: List[object]) -> Tuple[object, int]:
        """Runs a method/constructor; returns ``(return value, cycles)``."""
        func = self.ir_program.methods[qualified_name]
        start = self._cycles
        value = self._run(func, list(args), depth=0)
        return value, self._cycles - start

    def run_task(self, task_name: str, params: List[BObject]) -> TaskEffects:
        """Runs a task body on the given parameter objects.

        Returns the exit point taken, the cycle cost of the body, the objects
        it allocated (with their allocation sites, already carrying their
        initial flags), and the resolved taskexit tag actions. Flag updates
        from the exit spec are **not** applied here — the runtime commits
        them (and pays :data:`repro.ir.costs.FLAG_UPDATE_COST`) so that
        dispatch policy stays out of the interpreter.
        """
        func = self.ir_program.tasks[task_name]
        start_cycles = self._cycles
        saved_new = self._new_objects
        self._new_objects = []
        exit_state = self._run(func, list(params), depth=0)
        assert isinstance(exit_state, _TaskExitSignal)
        effects = TaskEffects(
            exit_id=exit_state.exit_id,
            cycles=self._cycles - start_cycles,
            new_objects=self._new_objects,
            tag_actions=exit_state.tag_actions,
        )
        self._new_objects = saved_new
        return effects

    def output(self) -> str:
        return self.stdout.getvalue()

    # -- execution core ---------------------------------------------------------

    def _run(self, func: ir.IRFunction, args: List[object], depth: int):
        if depth > _MAX_CALL_DEPTH:
            raise RuntimeBambooError(f"call depth exceeded in {func.name}")
        regs: List[object] = [None] * func.num_regs
        for index, value in enumerate(args):
            regs[index] = value

        block = func.blocks[func.entry]
        instr_index = 0
        instructions = block.instructions
        heap = self.heap

        while True:
            self.steps += 1
            if self.steps > self.max_steps:
                raise RuntimeBambooError(
                    f"instruction budget exhausted in {func.name}"
                )
            instr = instructions[instr_index]
            instr_index += 1
            kind = type(instr)

            if kind is ir.Move:
                self._cycles += costs.MOVE_COST
                src = instr.src
                regs[instr.dst.index] = (
                    regs[src.index] if type(src) is ir.Reg else src.value
                )
            elif kind is ir.BinOp:
                self._cycles += costs.binop_cost(instr.op, instr.kind)
                a = instr.a
                b = instr.b
                left = regs[a.index] if type(a) is ir.Reg else a.value
                right = regs[b.index] if type(b) is ir.Reg else b.value
                regs[instr.dst.index] = self._binop(instr.op, instr.kind, left, right)
            elif kind is ir.UnOp:
                self._cycles += costs.instruction_cost(instr)
                a = instr.a
                value = regs[a.index] if type(a) is ir.Reg else a.value
                regs[instr.dst.index] = self._unop(instr.op, instr.kind, value)
            elif kind is ir.Load:
                self._cycles += costs.LOAD_COST
                obj = self._operand(regs, instr.obj)
                if obj is None:
                    raise RuntimeBambooError(
                        f"null dereference loading .{instr.field_name} in {func.name}"
                    )
                regs[instr.dst.index] = obj.fields[instr.field_index]
            elif kind is ir.Store:
                self._cycles += costs.STORE_COST
                obj = self._operand(regs, instr.obj)
                if obj is None:
                    raise RuntimeBambooError(
                        f"null dereference storing .{instr.field_name} in {func.name}"
                    )
                obj.fields[instr.field_index] = self._operand(regs, instr.src)
            elif kind is ir.ALoad:
                self._cycles += costs.ALOAD_COST + self._array_access_cost_extra
                array = self._operand(regs, instr.array)
                index = self._operand(regs, instr.index)
                self._check_array(array, index, func)
                regs[instr.dst.index] = array.values[index]
            elif kind is ir.AStore:
                self._cycles += costs.ASTORE_COST + self._array_access_cost_extra
                array = self._operand(regs, instr.array)
                index = self._operand(regs, instr.index)
                self._check_array(array, index, func)
                array.values[index] = self._operand(regs, instr.src)
            elif kind is ir.ArrLen:
                self._cycles += costs.ARRLEN_COST
                array = self._operand(regs, instr.array)
                if array is None:
                    raise RuntimeBambooError(f"null array length in {func.name}")
                regs[instr.dst.index] = len(array.values)
            elif kind is ir.NewObj:
                self._cycles += costs.NEWOBJ_COST
                regs[instr.dst.index] = self._new_object(instr)
            elif kind is ir.NewArr:
                dims = [self._operand(regs, d) for d in instr.dims]
                regs[instr.dst.index] = self._new_array(instr, dims)
            elif kind is ir.Call:
                self._cycles += costs.CALL_OVERHEAD
                callee = self.ir_program.methods[instr.target]
                call_args = [self._operand(regs, a) for a in instr.args]
                result = self._run(callee, call_args, depth + 1)
                if instr.dst is not None:
                    regs[instr.dst.index] = result
            elif kind is ir.CallBuiltin:
                fn = self._builtin_cache[instr.key]
                self._cycles += fn.cost
                call_args = [self._operand(regs, a) for a in instr.args]
                result = self._call_builtin(fn, call_args)
                if instr.dst is not None:
                    regs[instr.dst.index] = result
            elif kind is ir.NewTag:
                self._cycles += costs.NEWTAG_COST
                regs[instr.dst.index] = heap.new_tag(instr.tag_type)
            elif kind is ir.BindTag:
                self._cycles += costs.BINDTAG_COST
                obj = self._operand(regs, instr.obj)
                tag = self._operand(regs, instr.tag)
                obj.bind_tag(tag)
            elif kind is ir.Jump:
                self._cycles += costs.JUMP_COST
                block = func.blocks[instr.target]
                instructions = block.instructions
                instr_index = 0
            elif kind is ir.Branch:
                self._cycles += costs.BRANCH_COST
                cond = self._operand(regs, instr.cond)
                target = instr.true_target if cond else instr.false_target
                block = func.blocks[target]
                instructions = block.instructions
                instr_index = 0
            elif kind is ir.Ret:
                self._cycles += costs.RET_COST
                if instr.src is None:
                    return None
                return self._operand(regs, instr.src)
            elif kind is ir.Exit:
                self._cycles += costs.EXIT_COST
                spec = func.exits[instr.exit_id]
                tag_actions: Dict[int, List[Tuple[str, TagInstance]]] = {}
                for param_index, actions in spec.tag_updates.items():
                    resolved = []
                    for action in actions:
                        tag = regs[action.tag_reg.index]
                        if not isinstance(tag, TagInstance):
                            raise RuntimeBambooError(
                                "taskexit tag action on an unbound tag variable"
                            )
                        resolved.append((action.op, tag))
                    tag_actions[param_index] = resolved
                return _TaskExitSignal(exit_id=instr.exit_id, tag_actions=tag_actions)
            elif kind is ir.Trap:
                raise RuntimeBambooError(instr.message)
            else:  # pragma: no cover - exhaustive over instruction set
                raise RuntimeBambooError(f"unknown instruction {instr!r}")

    @staticmethod
    def _operand(regs: List[object], operand: ir.Operand):
        return regs[operand.index] if type(operand) is ir.Reg else operand.value

    def _check_array(self, array, index, func: ir.IRFunction) -> None:
        if array is None:
            raise RuntimeBambooError(f"null array access in {func.name}")
        if not isinstance(index, int) or not (0 <= index < len(array.values)):
            raise RuntimeBambooError(
                f"array index {index} out of bounds "
                f"(length {len(array.values)}) in {func.name}"
            )

    def _binop(self, op: str, kind: str, left, right):
        if kind == "int":
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                return _int_div(left, right)
            if op == "%":
                return _int_rem(left, right)
        elif kind == "float":
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if op == "/":
                if right == 0.0:
                    raise RuntimeBambooError("float division by zero")
                return left / right
        if op == "<":
            return left < right
        if op == ">":
            return left > right
        if op == "<=":
            return left <= right
        if op == ">=":
            return left >= right
        if op == "==":
            return self._ref_eq(left, right) if kind == "ref" else left == right
        if op == "!=":
            return not self._ref_eq(left, right) if kind == "ref" else left != right
        if op == "concat":
            return left + right
        if op in ("&&", "||"):
            # Only produced by non-short-circuit contexts (none today), keep
            # strict semantics for completeness.
            return (left and right) if op == "&&" else (left or right)
        raise RuntimeBambooError(f"unknown {kind} operator '{op}'")

    @staticmethod
    def _ref_eq(left, right) -> bool:
        if isinstance(left, str) or isinstance(right, str):
            return left == right
        return left is right

    @staticmethod
    def _unop(op: str, kind: str, value):
        if op == "neg":
            return -value
        if op == "not":
            return not value
        if op == "i2f":
            return float(value)
        if op == "f2i":
            return math.trunc(value)
        if op == "tostr":
            if kind == "bool":
                return "true" if value else "false"
            if kind == "float":
                return repr(float(value))
            return str(value)
        raise RuntimeBambooError(f"unknown unary operator '{op}'")

    def _call_builtin(self, fn: builtins.BuiltinFunction, args: List[object]):
        result = fn.impl(self.stdout, *args)
        if isinstance(result, list):  # String.split returns a Python list
            return BArray(elem_type="String", values=result)
        return result

    def _new_object(self, instr: ir.NewObj) -> BObject:
        class_info = self.info.class_info(instr.class_name)
        obj = self.heap.new_object(instr.class_name, len(class_info.fields))
        for fld in class_info.fields.values():
            obj.fields[fld.index] = default_field_value(str(fld.type))
        site = self.ir_program.alloc_sites[instr.site_id]
        for flag, value in site.flag_inits.items():
            obj.set_flag(flag, value)
        self._new_objects.append(NewObjectRecord(obj=obj, site_id=instr.site_id))
        return obj

    def _new_array(self, instr: ir.NewArr, dims: List[int]) -> BArray:
        return self._alloc_array_level(instr.elem_type, dims, instr.extra_dims, 0)

    def _alloc_array_level(
        self, elem_type: str, dims: List[int], extra_dims: int, level: int
    ) -> BArray:
        length = dims[level]
        if not isinstance(length, int) or length < 0:
            raise RuntimeBambooError(f"invalid array length {length}")
        self._cycles += costs.NEWARR_BASE_COST + costs.NEWARR_PER_ELEM_COST * length
        if level + 1 < len(dims):
            values = [
                self._alloc_array_level(elem_type, dims, extra_dims, level + 1)
                for _ in range(length)
            ]
            return BArray(elem_type=elem_type, values=values)
        fill = default_field_value(elem_type) if extra_dims == 0 else None
        return BArray(elem_type=elem_type, values=[fill] * length)


@dataclass
class _TaskExitSignal:
    exit_id: int
    tag_actions: Dict[int, List[Tuple[str, TagInstance]]]


def make_startup_object(
    heap: Heap, info: ProgramInfo, args: List[str]
) -> BObject:
    """Creates the StartupObject in the ``initialstate`` abstract state."""
    class_info = info.class_info(builtins.STARTUP_CLASS)
    obj = heap.new_object(builtins.STARTUP_CLASS, len(class_info.fields))
    args_field = class_info.fields[builtins.STARTUP_ARGS_FIELD]
    obj.fields[args_field.index] = BArray(elem_type="String", values=list(args))
    obj.set_flag(builtins.STARTUP_FLAG, True)
    return obj
