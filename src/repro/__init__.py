"""Reproduction of *Bamboo: A Data-Centric, Object-Oriented Approach to
Many-core Software* (Zhou & Demsky, PLDI 2010).

Subpackages:

* :mod:`repro.lang` — the Bamboo surface language (lexer/parser/AST).
* :mod:`repro.sema` — type checking and symbol tables.
* :mod:`repro.ir` — register IR, lowering, and the cycle cost model.
* :mod:`repro.analysis` — dependence (ASTG/CSTG) and disjointness analyses.
* :mod:`repro.schedule` — implementation synthesis: layouts, rules, mapping
  search, the scheduling simulator, critical paths, and DSA.
* :mod:`repro.runtime` — the interpreter, distributed scheduler, and the
  many-core machine simulator.
* :mod:`repro.core` — the public API.
* :mod:`repro.search` — the parallel, memoized layout-evaluation engine.
* :mod:`repro.serve` — the synthesis daemon: compile/profile/synthesize/
  simulate served over a socket, with a disk-persistent simulation cache
  shared across requests and restarts (results bit-identical to offline).
* :mod:`repro.bench` — the paper's benchmarks and experiment runners.
* :mod:`repro.viz` — DOT/text visualization.

The public API re-exports here, so typical use is just::

    from repro import (
        RunOptions, SynthesisOptions,
        compile_program, profile_program, run_layout, synthesize_layout,
    )
"""

from .core import (
    CompiledProgram,
    DistOptions,
    RunOptions,
    SequentialResult,
    SynthesisOptions,
    SynthesisReport,
    annotated_cstg,
    compile_program,
    profile_program,
    run_layout,
    run_sequential,
    single_core_layout,
    synthesize_layout,
)
from .schedule import DeltaMove, SimResult, SimSession, simulate

__all__ = [
    "CompiledProgram",
    "DeltaMove",
    "DistOptions",
    "RunOptions",
    "SequentialResult",
    "SimResult",
    "SimSession",
    "SynthesisOptions",
    "SynthesisReport",
    "annotated_cstg",
    "compile_program",
    "profile_program",
    "run_layout",
    "run_sequential",
    "simulate",
    "single_core_layout",
    "synthesize_layout",
]

__version__ = "1.1.0"
