"""Experiment runners shared by the benchmark harness and the examples.

These functions implement the measurement protocols of paper §5:

* :func:`run_three_versions` — the Figure 7 protocol: single-core C
  (sequential), single-core Bamboo, and N-core Bamboo, all in simulated
  cycles, plus speedups and the §5.5 overhead.
* :func:`estimate_vs_real` — the Figure 9 protocol: scheduling-simulator
  estimate vs the machine's real cycle count for a layout.
* :func:`generality_run` — the Figure 11 protocol: layouts synthesized from
  Profile(original) and Profile(double), both executed on Input(double).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..core.api import (
    CompiledProgram,
    profile_program,
    run_layout,
    run_sequential,
    single_core_layout,
)
from ..core.options import SynthesisOptions
from ..core.pipeline import SynthesisReport, synthesize_layout
from ..runtime.profiler import ProfileData
from ..schedule.anneal import AnnealConfig
from ..schedule.layout import Layout
from ..schedule.simulator import simulate
from .suite import get_spec, load_benchmark

#: The paper's machine: a 64-core TILEPro64 with 2 cores reserved for the
#: PCI bus, leaving 62 usable cores on an 8x8 mesh.
PAPER_CORES = 62
PAPER_MESH_WIDTH = 8


@dataclass
class ThreeVersionResult:
    """Figure 7 row for one benchmark."""

    name: str
    seq_cycles: int
    one_core_cycles: int
    many_core_cycles: int
    num_cores: int
    speedup_vs_bamboo: float
    speedup_vs_seq: float
    overhead: float
    layout: Layout
    report: Optional[SynthesisReport] = None
    outputs_match: bool = True


def synthesize_for(
    compiled: CompiledProgram,
    profile: ProfileData,
    num_cores: int,
    seed: int = 0,
    hints: Optional[Dict[str, str]] = None,
    mesh_width: Optional[int] = None,
    config: Optional[AnnealConfig] = None,
    workers: int = 1,
    sim_cache: bool = True,
) -> SynthesisReport:
    return synthesize_layout(
        compiled,
        profile,
        num_cores,
        options=SynthesisOptions(
            seed=seed,
            anneal=config,
            hints=hints,
            mesh_width=mesh_width,
            workers=workers,
            sim_cache=sim_cache,
        ),
    )


def run_three_versions(
    name: str,
    num_cores: int = PAPER_CORES,
    seed: int = 0,
    mesh_width: Optional[int] = PAPER_MESH_WIDTH,
    args: Optional[Sequence[str]] = None,
) -> ThreeVersionResult:
    """Runs the Figure 7 protocol for one benchmark."""
    spec = get_spec(name)
    compiled = load_benchmark(name)
    workload = list(args if args is not None else spec.args)

    seq = run_sequential(compiled, workload)
    one = run_layout(compiled, single_core_layout(compiled), workload)
    profile = profile_program(compiled, workload)
    report = synthesize_for(
        compiled,
        profile,
        num_cores,
        seed=seed,
        hints=spec.hints,
        mesh_width=mesh_width,
    )
    many = run_layout(compiled, report.layout, workload)

    outputs_match = (
        seq.stdout == one.stdout == many.stdout if spec.check_output else True
    )
    return ThreeVersionResult(
        name=name,
        seq_cycles=seq.cycles,
        one_core_cycles=one.total_cycles,
        many_core_cycles=many.total_cycles,
        num_cores=num_cores,
        speedup_vs_bamboo=one.total_cycles / many.total_cycles,
        speedup_vs_seq=seq.cycles / many.total_cycles,
        overhead=(one.total_cycles - seq.cycles) / seq.cycles,
        layout=report.layout,
        report=report,
        outputs_match=outputs_match,
    )


@dataclass
class AccuracyRow:
    """Figure 9 row: estimated vs real cycles for one layout."""

    name: str
    layout_kind: str  # "1-core" | "N-core"
    estimated: int
    real: int

    @property
    def error(self) -> float:
        return (self.estimated - self.real) / self.real


def estimate_vs_real(
    name: str,
    layout: Layout,
    layout_kind: str,
    args: Optional[Sequence[str]] = None,
) -> AccuracyRow:
    spec = get_spec(name)
    compiled = load_benchmark(name)
    workload = list(args if args is not None else spec.args)
    profile = profile_program(compiled, workload)
    estimate = simulate(compiled, layout, profile, hints=spec.hints)
    real = run_layout(compiled, layout, workload)
    return AccuracyRow(
        name=name,
        layout_kind=layout_kind,
        estimated=estimate.total_cycles,
        real=real.total_cycles,
    )


@dataclass
class GeneralityRow:
    """Figure 11 row for one benchmark."""

    name: str
    one_core_cycles: int  # 1-core Bamboo on Input_double
    original_profile_cycles: int  # layout from Profile_original on Input_double
    double_profile_cycles: int  # layout from Profile_double on Input_double
    speedup_original: float
    speedup_double: float


def generality_run(
    name: str,
    num_cores: int = PAPER_CORES,
    seed: int = 0,
    mesh_width: Optional[int] = PAPER_MESH_WIDTH,
) -> GeneralityRow:
    spec = get_spec(name)
    compiled = load_benchmark(name)
    original_args = list(spec.args)
    double_args = list(spec.double_args)

    profile_original = profile_program(compiled, original_args)
    profile_double = profile_program(compiled, double_args)

    layout_original = synthesize_for(
        compiled, profile_original, num_cores, seed=seed, hints=spec.hints,
        mesh_width=mesh_width,
    ).layout
    layout_double = synthesize_for(
        compiled, profile_double, num_cores, seed=seed, hints=spec.hints,
        mesh_width=mesh_width,
    ).layout

    one = run_layout(compiled, single_core_layout(compiled), double_args)
    with_original = run_layout(compiled, layout_original, double_args)
    with_double = run_layout(compiled, layout_double, double_args)
    return GeneralityRow(
        name=name,
        one_core_cycles=one.total_cycles,
        original_profile_cycles=with_original.total_cycles,
        double_profile_cycles=with_double.total_cycles,
        speedup_original=one.total_cycles / with_original.total_cycles,
        speedup_double=one.total_cycles / with_double.total_cycles,
    )
