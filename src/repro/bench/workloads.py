"""Workload scaling helpers.

Each benchmark's arguments encode a workload; experiments scale them along
the *data-parallel* axis (more chunks/rows/simulations) while holding the
per-chunk work fixed — the paper's Input_double doubles the workload the
same way (§5.4). ``scale_args`` generalizes that to arbitrary factors for
scaling studies.
"""

from __future__ import annotations

from typing import List, Sequence

#: Index of the argument that carries the data-parallel workload size.
_SCALABLE_ARG = {
    "Tracking": 0,      # image strips
    "KMeans": 0,        # point chunks
    "MonteCarlo": 0,    # simulations
    "FilterBank": 0,    # channels
    "Fractal": 0,       # image rows
    "Series": 0,        # coefficient pairs
    "Keyword": 0,       # text sections
}


def scale_args(name: str, args: Sequence[str], factor: float) -> List[str]:
    """Scales a benchmark's workload by ``factor`` (>= such that the scaled
    size is at least 1). Only the data-parallel dimension changes."""
    if name not in _SCALABLE_ARG:
        raise KeyError(f"unknown benchmark '{name}'")
    index = _SCALABLE_ARG[name]
    scaled = list(args)
    scaled[index] = str(max(1, int(round(int(args[index]) * factor))))
    return scaled


def double_args(name: str, args: Sequence[str]) -> List[str]:
    """The paper's Input_double: twice the workload (§5.4)."""
    return scale_args(name, args, 2.0)
