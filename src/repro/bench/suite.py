"""The benchmark suite of paper §5.

Six benchmarks (Tracking, KMeans, MonteCarlo, FilterBank, Fractal, Series)
plus the keyword-counting example of §2. Each entry names the Bamboo source
file, the standard workload arguments (``Input_original``) and the doubled
workload (``Input_double``) used by the generality experiment (§5.4,
Figure 11), and the simulator exit-count hints (§4.4).

Workload sizes are scaled to the interpreter substrate (DESIGN.md §2) —
the *shape* of the task graph matches the original benchmarks while keeping
simulated runs tractable.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..core.api import CompiledProgram, compile_program

_PROGRAM_DIR = os.path.join(os.path.dirname(__file__), "programs")


@dataclass(frozen=True)
class BenchmarkSpec:
    """One benchmark: program + workloads + simulator hints."""

    name: str
    filename: str
    args: Tuple[str, ...]
    double_args: Tuple[str, ...]
    description: str
    hints: Optional[Dict[str, str]] = None
    #: expected stdout (same for sequential and Bamboo versions); checked by
    #: tests to validate that every execution mode computes the same answer
    check_output: bool = True

    @property
    def path(self) -> str:
        return os.path.join(_PROGRAM_DIR, self.filename)


BENCHMARKS: Dict[str, BenchmarkSpec] = {
    spec.name: spec
    for spec in [
        BenchmarkSpec(
            name="Tracking",
            filename="tracking.bam",
            args=("60", "10"),
            double_args=("120", "10"),
            description="feature tracking from computer vision (SD-VBS)",
        ),
        BenchmarkSpec(
            name="KMeans",
            filename="kmeans.bam",
            args=("62", "60", "4"),
            double_args=("124", "60", "4"),
            description="K-means clustering (STAMP)",
        ),
        BenchmarkSpec(
            name="MonteCarlo",
            filename="montecarlo.bam",
            args=("124", "260"),
            double_args=("248", "260"),
            description="Monte Carlo simulation (Java Grande)",
        ),
        BenchmarkSpec(
            name="FilterBank",
            filename="filterbank.bam",
            args=("62", "72"),
            double_args=("124", "72"),
            description="multi-channel filter bank (StreamIt)",
        ),
        BenchmarkSpec(
            name="Fractal",
            filename="fractal.bam",
            args=("186",),
            double_args=("372",),
            description="Mandelbrot set computation",
        ),
        BenchmarkSpec(
            name="Series",
            filename="series.bam",
            args=("186", "128"),
            double_args=("372", "128"),
            description="Fourier series coefficients (Java Grande)",
        ),
        BenchmarkSpec(
            name="Keyword",
            filename="keyword.bam",
            args=("64",),
            double_args=("128",),
            description="keyword counting (the paper's §2 example)",
        ),
    ]
}

#: The six benchmarks of the paper's evaluation, in Figure 7 order.
PAPER_BENCHMARKS: List[str] = [
    "Tracking",
    "KMeans",
    "MonteCarlo",
    "FilterBank",
    "Fractal",
    "Series",
]

_SOURCE_CACHE: Dict[str, str] = {}
_COMPILE_CACHE: Dict[str, CompiledProgram] = {}


def benchmark_names() -> List[str]:
    return sorted(BENCHMARKS)


def get_spec(name: str) -> BenchmarkSpec:
    try:
        return BENCHMARKS[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark '{name}' (have {benchmark_names()})"
        ) from None


def load_source(name: str) -> str:
    spec = get_spec(name)
    if name not in _SOURCE_CACHE:
        with open(spec.path, "r") as handle:
            _SOURCE_CACHE[name] = handle.read()
    return _SOURCE_CACHE[name]


def load_benchmark(name: str) -> CompiledProgram:
    """Compiles (and caches) a benchmark program."""
    if name not in _COMPILE_CACHE:
        spec = get_spec(name)
        _COMPILE_CACHE[name] = compile_program(load_source(name), spec.filename)
    return _COMPILE_CACHE[name]
