"""Benchmark suite: the paper's six applications plus the §2 example."""

from .runner import (
    PAPER_CORES,
    PAPER_MESH_WIDTH,
    AccuracyRow,
    GeneralityRow,
    ThreeVersionResult,
    estimate_vs_real,
    generality_run,
    run_three_versions,
    synthesize_for,
)
from .workloads import double_args, scale_args
from .suite import (
    BENCHMARKS,
    PAPER_BENCHMARKS,
    BenchmarkSpec,
    benchmark_names,
    get_spec,
    load_benchmark,
    load_source,
)

__all__ = [
    "BENCHMARKS",
    "PAPER_BENCHMARKS",
    "PAPER_CORES",
    "PAPER_MESH_WIDTH",
    "AccuracyRow",
    "BenchmarkSpec",
    "GeneralityRow",
    "ThreeVersionResult",
    "benchmark_names",
    "estimate_vs_real",
    "generality_run",
    "get_spec",
    "load_benchmark",
    "load_source",
    "run_three_versions",
    "scale_args",
    "double_args",
    "synthesize_for",
]
