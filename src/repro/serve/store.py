"""The disk-persistent, cross-request simulation cache.

One :class:`SimCacheStore` holds a family of
:class:`repro.search.SimCache` instances, one per *simulation context*
(:func:`repro.serve.protocol.context_key` — program source, profiling
arguments, optimize flag), because a layout fingerprint only identifies
a simulation outcome within one context. Request handlers share cache
instances, so all mutation safety comes from the SimCache's own lock;
the store's lock only guards the context map.

Persistence (``repro.serve/simcache-v1``)
-----------------------------------------

The store is **write-behind**: every insert lands in memory first, and a
flush serializes all contexts into one record via
:mod:`repro.search.storage` — the same atomic-write (tmp + fsync +
rename + dir-fsync) + sha256-digest machinery search checkpoints use, so
a crash mid-flush leaves the previous cache file intact and truncation
is detected on load. On startup the whole file is restored, so a
restarted daemon answers repeated synthesize requests from a warm cache.

A corrupted, truncated, or foreign cache file is **refused with a clear
error** (never half-loaded): the load report carries the diagnostic, the
offending file is preserved under ``<path>.corrupt`` for inspection, and
the daemon starts with a fresh cache — losing a cache is a performance
event, not a correctness event, because the SimCache is semantically
transparent.

The quarantine itself is bounded: the newest refused file sits at
``<path>.corrupt``, older ones rotate to ``<path>.corrupt.1``,
``.corrupt.2``, … up to ``max_quarantine`` total, and anything beyond
that is deleted (counted as ``serve_quarantine_evictions`` in the serve
metrics). Without the bound, a daemon restart-looping against a bad disk
would mint one orphan file per restart, forever.
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass, field
from typing import Dict, Optional

from ..search.cache import SimCache
from ..search.storage import (
    StorageError,
    read_pickle_record,
    write_pickle_record,
)

SIMCACHE_FORMAT = "repro.serve/simcache-v1"


@dataclass
class StoreLoadReport:
    """What happened when the store read its file at startup."""

    path: Optional[str]
    #: a previous cache file was restored
    loaded: bool = False
    #: a file existed but was refused (corrupt/foreign); see ``error``
    refused: bool = False
    error: Optional[str] = None
    #: where a refused file was preserved for inspection
    quarantined_to: Optional[str] = None
    contexts: int = 0
    entries: int = 0

    def describe(self) -> str:
        if self.path is None:
            return "simcache persistence off (no --cache path)"
        if self.refused:
            return (
                f"refused existing cache file: {self.error} "
                f"(preserved at {self.quarantined_to}; starting fresh)"
            )
        if self.loaded:
            return (
                f"warm cache: {self.entries} entries across "
                f"{self.contexts} contexts from {self.path}"
            )
        return f"cold cache: no file at {self.path} yet"


class SimCacheStore:
    """A persistent, shared, per-context family of simulation caches."""

    def __init__(
        self,
        path: Optional[str] = None,
        max_entries: Optional[int] = None,
        registry=None,
        max_quarantine: int = 3,
    ):
        self.path = path
        #: LRU bound applied to every per-context cache (None = unbounded)
        self.max_entries = max_entries
        #: receives the ``sim_cache_*`` counters of every context cache
        self.registry = registry
        #: refused cache files kept for inspection (newest first);
        #: the rotation evicts anything older
        self.max_quarantine = max(1, max_quarantine)
        #: quarantined files deleted by the rotation bound, lifetime
        self.quarantine_evictions = 0
        self._caches: Dict[str, SimCache] = {}
        self._lock = threading.RLock()
        self._dirty = False
        self.flushes = 0
        #: fault point: the next N flushes raise StorageError instead of
        #: writing (armed by the net-chaos harness and the ``inject`` op;
        #: never set in normal operation)
        self.fail_flushes = 0

    # -- the context map -----------------------------------------------------

    def cache_for(self, context: str) -> SimCache:
        """The shared cache of one simulation context (get-or-create)."""
        with self._lock:
            cache = self._caches.get(context)
            if cache is None:
                cache = SimCache(
                    max_entries=self.max_entries, registry=self.registry
                )
                self._caches[context] = cache
            return cache

    def context_count(self) -> int:
        with self._lock:
            return len(self._caches)

    def entry_count(self) -> int:
        with self._lock:
            return sum(len(cache) for cache in self._caches.values())

    # -- write-behind dirtiness ----------------------------------------------

    def mark_dirty(self) -> None:
        with self._lock:
            self._dirty = True

    @property
    def dirty(self) -> bool:
        with self._lock:
            return self._dirty

    # -- persistence ---------------------------------------------------------

    def load(self) -> StoreLoadReport:
        """Restores a previously flushed store, refusing damaged files."""
        report = StoreLoadReport(path=self.path)
        if self.path is None or not os.path.exists(self.path):
            return report
        try:
            header, payload = read_pickle_record(
                self.path,
                SIMCACHE_FORMAT,
                expected_type=dict,
                kind="simcache",
                long_kind="persistent simulation cache",
            )
        except StorageError as exc:
            report.refused = True
            report.error = str(exc)
            report.quarantined_to = self._quarantine()
            return report
        with self._lock:
            for context, state in payload.get("contexts", {}).items():
                # Restore before attaching the registry: the persisted
                # counter totals describe past runs and must not replay
                # into this daemon's fresh serve metrics.
                cache = SimCache(max_entries=self.max_entries)
                cache.restore(state)
                cache.registry = self.registry
                self._caches[context] = cache
            report.loaded = True
            report.contexts = len(self._caches)
            report.entries = sum(len(c) for c in self._caches.values())
        return report

    def _quarantine_name(self, index: int) -> str:
        suffix = ".corrupt" if index == 0 else f".corrupt.{index}"
        return self.path + suffix

    def _quarantine(self) -> Optional[str]:
        """Moves the refused cache file into the bounded quarantine
        rotation; returns where it landed (the newest slot)."""
        oldest = self._quarantine_name(self.max_quarantine - 1)
        if os.path.exists(oldest):
            try:
                os.remove(oldest)
                self.quarantine_evictions += 1
                if self.registry is not None:
                    self.registry.counter("serve_quarantine_evictions").inc()
            except OSError:  # pragma: no cover - racing deletion
                pass
        for index in range(self.max_quarantine - 1, 0, -1):
            older = self._quarantine_name(index - 1)
            if os.path.exists(older):
                try:
                    os.replace(older, self._quarantine_name(index))
                except OSError:  # pragma: no cover - racing deletion
                    pass
        target = self._quarantine_name(0)
        try:
            os.replace(self.path, target)
        except OSError:  # pragma: no cover - racing deletion
            return None
        return target

    def flush(self) -> Optional[Dict[str, object]]:
        """Atomically writes every context's snapshot; returns the record
        header (None when persistence is off). Clears the dirty flag
        before snapshotting, so an insert racing the flush re-dirties the
        store and is picked up by the next write-behind cycle."""
        if self.path is None:
            return None
        with self._lock:
            if self.fail_flushes > 0:
                self.fail_flushes -= 1
                # Leave the store dirty: the failed write persisted
                # nothing, so the next cycle must try again.
                raise StorageError(
                    "injected flush failure (store fault point)"
                )
            self._dirty = False
            caches = dict(self._caches)
        contexts = {
            context: cache.state() for context, cache in caches.items()
        }
        header = write_pickle_record(
            self.path,
            SIMCACHE_FORMAT,
            {"contexts": contexts},
            extra_header={
                "contexts": len(contexts),
                "entries": sum(len(s["entries"]) for s in contexts.values()),
            },
        )
        with self._lock:
            self.flushes += 1
        return header

    # -- reporting -----------------------------------------------------------

    def stats(self) -> Dict[str, object]:
        """A JSON-ready snapshot of the store and its context caches."""
        with self._lock:
            return {
                "path": self.path,
                "contexts": len(self._caches),
                "entries": sum(len(c) for c in self._caches.values()),
                "max_entries_per_context": self.max_entries,
                "dirty": self._dirty,
                "flushes": self.flushes,
                "max_quarantine": self.max_quarantine,
                "quarantine_evictions": self.quarantine_evictions,
                "per_context": {
                    context: cache.cache_stats()
                    for context, cache in sorted(self._caches.items())
                },
            }
