"""A blocking client for the synthesis service.

:class:`ServeClient` speaks the newline-delimited-JSON protocol of
:mod:`repro.serve.protocol` over one TCP connection, pipelining requests
in order. It is deliberately synchronous — callers are scripts, tests,
and the ``repro request`` command, none of which want an event loop.

Failures split into two exceptions: :class:`ServeError` wraps an error
*response* (the daemon answered ``ok: false`` — the ``code`` attribute
carries the protocol error code, e.g. ``overloaded``), while plain
``ConnectionError``/``OSError`` mean the daemon could not be reached at
all.
"""

from __future__ import annotations

import socket
import time
from typing import Dict, List, Optional, Sequence

from ..lang.errors import BambooError
from .protocol import MAX_LINE_BYTES, ProtocolError, decode, encode


class ServeError(BambooError):
    """The daemon answered with an error response."""

    def __init__(self, code: str, message: str):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.reason = message


class ServeClient:
    """One connection to a running daemon; usable as a context manager."""

    def __init__(self, host: str, port: int, timeout: Optional[float] = 60.0):
        self.host = host
        self.port = port
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._reader = self._sock.makefile("rb")

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the protocol --------------------------------------------------------

    def call(self, op: str, **params) -> Dict[str, object]:
        """One round trip; returns the full response object (``ok: true``
        guaranteed — error responses raise :class:`ServeError`)."""
        request: Dict[str, object] = {"op": op}
        request.update(params)
        self._sock.sendall(encode(request))
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError(
                f"daemon at {self.host}:{self.port} closed the connection"
            )
        response = decode(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServeError(
                str(error.get("code", "unknown")),
                str(error.get("message", "no message")),
            )
        return response

    # -- op conveniences -----------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self.call("ping")["result"]

    def metrics(self) -> Dict[str, object]:
        return self.call("metrics")["result"]

    def flush(self) -> Dict[str, object]:
        return self.call("flush")["result"]

    def shutdown(self) -> Dict[str, object]:
        return self.call("shutdown")["result"]

    def compile(
        self, source: str, filename: str = "<client>", optimize: bool = True
    ) -> Dict[str, object]:
        return self.call(
            "compile", source=source, filename=filename, optimize=optimize
        )["result"]

    def profile(
        self,
        source: str,
        args: Sequence[str] = (),
        filename: str = "<client>",
        optimize: bool = True,
    ) -> Dict[str, object]:
        return self.call(
            "profile",
            source=source,
            args=list(args),
            filename=filename,
            optimize=optimize,
        )["result"]

    def synthesize(
        self,
        source: str,
        cores: int,
        args: Sequence[str] = (),
        seed: int = 0,
        filename: str = "<client>",
        optimize: bool = True,
        mesh_width: Optional[int] = None,
        hints: Optional[Dict[str, List[int]]] = None,
        max_iterations: Optional[int] = None,
        max_evaluations: Optional[int] = None,
    ) -> Dict[str, object]:
        """Synthesize a layout; returns the full response so callers can
        read ``result`` (deterministic) and ``telemetry`` separately."""
        params: Dict[str, object] = {
            "source": source,
            "args": list(args),
            "filename": filename,
            "optimize": optimize,
            "cores": cores,
            "seed": seed,
        }
        if mesh_width is not None:
            params["mesh_width"] = mesh_width
        if hints is not None:
            params["hints"] = hints
        if max_iterations is not None:
            params["max_iterations"] = max_iterations
        if max_evaluations is not None:
            params["max_evaluations"] = max_evaluations
        return self.call("synthesize", **params)

    def simulate(
        self,
        source: str,
        cores: int,
        mapping: Dict[str, List[int]],
        args: Sequence[str] = (),
        filename: str = "<client>",
        optimize: bool = True,
        mesh_width: Optional[int] = None,
    ) -> Dict[str, object]:
        params: Dict[str, object] = {
            "source": source,
            "args": list(args),
            "filename": filename,
            "optimize": optimize,
            "cores": cores,
            "layout": mapping,
        }
        if mesh_width is not None:
            params["mesh_width"] = mesh_width
        return self.call("simulate", **params)


def wait_for_server(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Blocks until a daemon answers ``ping`` at ``host:port``.

    Raises :class:`ProtocolError` when the deadline passes — used by
    scripts that spawned ``repro serve`` and need to know it is up.
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=interval * 10) as client:
                client.ping()
            return
        except (OSError, ConnectionError, ServeError) as exc:
            last_error = exc
            time.sleep(interval)
    raise ProtocolError(
        f"no daemon answered at {host}:{port} within {timeout:.1f}s "
        f"(last error: {last_error})"
    )
