"""A blocking client for the synthesis service.

:class:`ServeClient` speaks the newline-delimited-JSON protocol of
:mod:`repro.serve.protocol` over one TCP connection, pipelining requests
in order. It is deliberately synchronous — callers are scripts, tests,
and the ``repro request`` command, none of which want an event loop.

Failures split into three exceptions:

* :class:`ServeError` — the daemon answered ``ok: false``; the ``code``
  attribute carries the protocol error code (e.g. ``overloaded``) and
  ``retry_after_ms`` the server's optional backoff hint.
* :class:`ServeUnavailable` — the daemon could not be reached at all (or
  a retrying client exhausted its attempts trying). Subsumes the raw
  ``ConnectionError``/``OSError`` a single attempt raises.
* plain ``ConnectionError``/``OSError`` — a non-retrying client's single
  attempt failed at the socket layer (legacy behavior, kept so existing
  callers see exactly what the OS said).

Retrying (:class:`ClientRetryPolicy`)
-------------------------------------

Served results are deterministic — the same request always produces the
same bytes, whether it is answered by a fresh execution, a coalesced
in-flight one, or the persistent cache. That makes blind retry *safe*:
re-sending a request after a dropped connection cannot change the answer,
only recover it (the duplicated work is usually absorbed by the daemon's
SimCache or coalescing). A :class:`ServeClient` constructed with a
``retry_policy`` therefore:

* reconnects and re-sends after connection-level failures (drop, reset,
  timeout, a garbled response line) with capped exponential backoff and
  deterministic sha256 jitter — the same backoff shape as
  :class:`repro.search.supervise.RetryPolicy`;
* retries ``overloaded``/``draining`` error responses, honoring the
  server-supplied ``retry_after_ms`` hint (capped by the policy);
* never retries deterministic failures (``bad_request``,
  ``program_error``, ``deadline_exceeded``) — they would fail again;
* raises :class:`ServeUnavailable` when the attempt budget is exhausted.
"""

from __future__ import annotations

import os
import socket
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..lang.errors import BambooError
from ..search.retry import backoff_delay
from ..search.retry import jitter as _jitter
from .protocol import (
    HEAVY_OPS,
    MAX_LINE_BYTES,
    RETRYABLE_CODES,
    ProtocolError,
    decode,
    encode,
)


class ServeError(BambooError):
    """The daemon answered with an error response."""

    def __init__(
        self, code: str, message: str, retry_after_ms: Optional[int] = None
    ):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.reason = message
        #: the server's advisory backoff hint, when it sent one
        self.retry_after_ms = retry_after_ms


class ServeUnavailable(BambooError):
    """No daemon could be reached (or retries against one were exhausted).

    Distinct from :class:`ProtocolError` (a framing problem on a *live*
    connection) and :class:`ServeError` (the daemon answered, negatively):
    this one means the service itself is gone. ``last_error`` carries the
    final underlying failure.
    """

    def __init__(self, message: str, last_error: Optional[Exception] = None):
        super().__init__(message)
        self.last_error = last_error


@dataclass(frozen=True)
class ClientRetryPolicy:
    """Retry knobs for :class:`ServeClient`.

    The backoff before attempt ``n`` (counting failures from 1) is
    ``min(backoff_cap, backoff_base * 2**(n-1))`` scaled into
    ``[0.5, 1.0)`` of itself by a deterministic sha256 jitter — the same
    shape :class:`repro.search.supervise.RetryPolicy` uses, so replayed
    failure traces sleep identically while concurrent clients do not
    thunder in lockstep. A server ``retry_after_ms`` hint overrides the
    computed backoff, capped at ``retry_after_cap``.
    """

    #: total tries per call (first attempt included)
    max_attempts: int = 4
    #: base backoff in seconds; doubles per failed attempt
    backoff_base: float = 0.05
    #: backoff ceiling in seconds
    backoff_cap: float = 2.0
    #: per-reconnect TCP connect timeout in seconds
    connect_timeout: float = 5.0
    #: ceiling on a server-supplied ``retry_after_ms`` hint, in seconds
    retry_after_cap: float = 5.0

    def validate(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff parameters must be non-negative")
        if self.connect_timeout <= 0:
            raise ValueError("connect_timeout must be positive")
        if self.retry_after_cap < 0:
            raise ValueError("retry_after_cap must be non-negative")

    def backoff(self, op: str, failure: int) -> float:
        """The jittered sleep before retrying ``op`` after its
        ``failure``-th consecutive failure (1-based): the shared
        :func:`repro.search.retry.backoff_delay` in the client shape
        (spread into ``[0.5, 1.0)`` of the capped base)."""
        return backoff_delay(
            self.backoff_base, self.backoff_cap, failure, op,
            low=0.5, high=1.0,
        )


class ServeClient:
    """One connection to a running daemon; usable as a context manager.

    Without a ``retry_policy`` the client is exactly one TCP connection:
    any failure surfaces raw (legacy behavior). With one, the connection
    is a disposable resource — dropped, reset, or timed-out sockets are
    torn down and rebuilt transparently, and ``call`` only raises after
    the policy's attempt budget is spent.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = 60.0,
        retry_policy: Optional[ClientRetryPolicy] = None,
        trace: bool = False,
    ):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.retry_policy = retry_policy
        if retry_policy is not None:
            retry_policy.validate()
        #: with ``trace=True`` every heavy call carries a generated
        #: ``trace_id`` and :attr:`last_trace` holds the round trip
        self.trace = trace
        #: ``{"trace_id", "op", "client_span", "server"}`` of the most
        #: recent traced heavy call (``server`` is the daemon's telemetry
        #: echo: its ``span_id`` plus the spans its pipeline closed)
        self.last_trace: Optional[Dict[str, object]] = None
        #: connection-level retries performed over this client's lifetime
        self.retries = 0
        #: reconnections performed (first connect excluded)
        self.reconnects = 0
        self._sock: Optional[socket.socket] = None
        self._reader = None
        if retry_policy is None:
            self._connect()
        else:
            # The initial connect participates in the retry budget too —
            # a daemon still coming up is indistinguishable from one that
            # dropped us between requests.
            self._connected_or_raise("connect")

    # -- connection management -----------------------------------------------

    def _connect(self) -> None:
        connect_timeout = (
            self.retry_policy.connect_timeout
            if self.retry_policy is not None
            else self.timeout
        )
        sock = socket.create_connection(
            (self.host, self.port), timeout=connect_timeout
        )
        sock.settimeout(self.timeout)
        self._sock = sock
        self._reader = sock.makefile("rb")

    def _teardown(self) -> None:
        """Drops the current connection (if any); the next attempt will
        reconnect. A socket that failed mid-exchange is never reused —
        its stream position is unknowable."""
        reader, sock = self._reader, self._sock
        self._reader = None
        self._sock = None
        try:
            if reader is not None:
                reader.close()
        except OSError:  # pragma: no cover - already dead
            pass
        try:
            if sock is not None:
                sock.close()
        except OSError:  # pragma: no cover - already dead
            pass

    def _connected_or_raise(self, op: str) -> None:
        """Ensures a live connection under the retry policy, raising
        :class:`ServeUnavailable` once the attempt budget is spent."""
        policy = self.retry_policy
        assert policy is not None
        failures = 0
        while self._sock is None:
            try:
                self._connect()
                if failures or self.retries:
                    self.reconnects += 1
                return
            except (ConnectionError, OSError) as exc:
                failures += 1
                if failures >= policy.max_attempts:
                    raise ServeUnavailable(
                        f"daemon at {self.host}:{self.port} unreachable "
                        f"after {failures} connect attempt(s): {exc}",
                        last_error=exc,
                    )
                time.sleep(policy.backoff(op, failures))

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._teardown()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the protocol --------------------------------------------------------

    def _call_once(self, request: Dict[str, object]) -> Dict[str, object]:
        """One request/response exchange on the current connection."""
        assert self._sock is not None and self._reader is not None
        self._sock.sendall(encode(request))
        line = self._reader.readline(MAX_LINE_BYTES + 1)
        if not line:
            raise ConnectionError(
                f"daemon at {self.host}:{self.port} closed the connection"
            )
        response = decode(line)
        if not response.get("ok"):
            error = response.get("error") or {}
            retry_after = error.get("retry_after_ms")
            raise ServeError(
                str(error.get("code", "unknown")),
                str(error.get("message", "no message")),
                retry_after_ms=(
                    int(retry_after)
                    if isinstance(retry_after, int)
                    and not isinstance(retry_after, bool)
                    else None
                ),
            )
        return response

    def call(self, op: str, **params) -> Dict[str, object]:
        """One logical call; returns the full response object (``ok:
        true`` guaranteed — error responses raise :class:`ServeError`).
        Under a retry policy, transparently survives connection drops and
        retryable error responses; the returned bytes are bit-identical
        to an undisturbed call because served results are deterministic.
        """
        request: Dict[str, object] = {"op": op}
        request.update(params)
        trace_id: Optional[str] = None
        if self.trace and op in HEAVY_OPS:
            trace_id = request.get("trace_id") or os.urandom(8).hex()
            request["trace_id"] = trace_id
            started_ns = time.perf_counter_ns()
        try:
            response = self._call_with_retries(op, request)
        finally:
            if trace_id is not None:
                self.last_trace = None
        if trace_id is not None:
            telemetry = response.get("telemetry")
            self.last_trace = {
                "trace_id": trace_id,
                "op": op,
                "client_span": {
                    "name": f"client.{op}",
                    "start_ns": 0,
                    "dur_ns": time.perf_counter_ns() - started_ns,
                },
                "server": (
                    telemetry.get("trace")
                    if isinstance(telemetry, dict)
                    else None
                ),
            }
        return response

    def _call_with_retries(
        self, op: str, request: Dict[str, object]
    ) -> Dict[str, object]:
        policy = self.retry_policy
        if policy is None:
            return self._call_once(request)
        failures = 0
        while True:
            try:
                self._connected_or_raise(op)
                return self._call_once(request)
            except ServeError as exc:
                # The daemon answered; the connection is still in sync.
                if exc.code not in RETRYABLE_CODES:
                    raise
                failures += 1
                if failures >= policy.max_attempts:
                    raise ServeUnavailable(
                        f"daemon at {self.host}:{self.port} still "
                        f"{exc.code} after {failures} attempt(s)",
                        last_error=exc,
                    )
                delay = policy.backoff(op, failures)
                if exc.retry_after_ms is not None:
                    delay = min(
                        exc.retry_after_ms / 1000.0, policy.retry_after_cap
                    )
            except (ProtocolError, ConnectionError, OSError) as exc:
                # Dropped mid-exchange (or the response was garbled): the
                # connection's state is unknown, so discard it entirely.
                self._teardown()
                failures += 1
                if failures >= policy.max_attempts:
                    raise ServeUnavailable(
                        f"call {op!r} to {self.host}:{self.port} failed "
                        f"after {failures} attempt(s): {exc}",
                        last_error=exc,
                    )
                delay = policy.backoff(op, failures)
            self.retries += 1
            time.sleep(delay)

    # -- op conveniences -----------------------------------------------------

    def ping(self) -> Dict[str, object]:
        return self.call("ping")["result"]

    def metrics(self) -> Dict[str, object]:
        return self.call("metrics")["result"]

    def flush(self) -> Dict[str, object]:
        return self.call("flush")["result"]

    def shutdown(self) -> Dict[str, object]:
        return self.call("shutdown")["result"]

    def compile(
        self, source: str, filename: str = "<client>", optimize: bool = True
    ) -> Dict[str, object]:
        return self.call(
            "compile", source=source, filename=filename, optimize=optimize
        )["result"]

    def profile(
        self,
        source: str,
        args: Sequence[str] = (),
        filename: str = "<client>",
        optimize: bool = True,
    ) -> Dict[str, object]:
        return self.call(
            "profile",
            source=source,
            args=list(args),
            filename=filename,
            optimize=optimize,
        )["result"]

    def synthesize(
        self,
        source: str,
        cores: int,
        args: Sequence[str] = (),
        seed: int = 0,
        filename: str = "<client>",
        optimize: bool = True,
        mesh_width: Optional[int] = None,
        hints: Optional[Dict[str, List[int]]] = None,
        max_iterations: Optional[int] = None,
        max_evaluations: Optional[int] = None,
        deadline_ms: Optional[int] = None,
    ) -> Dict[str, object]:
        """Synthesize a layout; returns the full response so callers can
        read ``result`` (deterministic) and ``telemetry`` separately.
        ``deadline_ms`` asks the server to abandon the request past that
        wall-clock budget (it answers ``deadline_exceeded``)."""
        params: Dict[str, object] = {
            "source": source,
            "args": list(args),
            "filename": filename,
            "optimize": optimize,
            "cores": cores,
            "seed": seed,
        }
        if mesh_width is not None:
            params["mesh_width"] = mesh_width
        if hints is not None:
            params["hints"] = hints
        if max_iterations is not None:
            params["max_iterations"] = max_iterations
        if max_evaluations is not None:
            params["max_evaluations"] = max_evaluations
        if deadline_ms is not None:
            params["deadline_ms"] = deadline_ms
        return self.call("synthesize", **params)

    def simulate(
        self,
        source: str,
        cores: int,
        mapping: Dict[str, List[int]],
        args: Sequence[str] = (),
        filename: str = "<client>",
        optimize: bool = True,
        mesh_width: Optional[int] = None,
    ) -> Dict[str, object]:
        params: Dict[str, object] = {
            "source": source,
            "args": list(args),
            "filename": filename,
            "optimize": optimize,
            "cores": cores,
            "layout": mapping,
        }
        if mesh_width is not None:
            params["mesh_width"] = mesh_width
        return self.call("simulate", **params)


def wait_for_server(
    host: str, port: int, timeout: float = 10.0, interval: float = 0.05
) -> None:
    """Blocks until a daemon answers ``ping`` at ``host:port``.

    Raises :class:`ServeUnavailable` when the deadline passes — used by
    scripts that spawned ``repro serve`` and need to know it is up.
    (A framing problem on a live daemon still raises
    :class:`ProtocolError`; "nobody answered" is not a framing problem.)
    """
    deadline = time.monotonic() + timeout
    last_error: Optional[Exception] = None
    while time.monotonic() < deadline:
        try:
            with ServeClient(host, port, timeout=interval * 10) as client:
                client.ping()
            return
        except (OSError, ConnectionError, ServeError) as exc:
            last_error = exc
            time.sleep(interval)
    raise ServeUnavailable(
        f"no daemon answered at {host}:{port} within {timeout:.1f}s "
        f"(last error: {last_error})",
        last_error=last_error,
    )
