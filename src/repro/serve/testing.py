"""In-process daemon harness for tests and benchmarks.

:class:`ServerThread` runs a :class:`repro.serve.server.SynthesisServer`
on a dedicated thread with its own event loop, so synchronous test code
can exercise the real socket path (admission control, coalescing,
persistence) without spawning a subprocess::

    with ServerThread(ServeConfig(cache_path=path)) as handle:
        with ServeClient(handle.host, handle.port) as client:
            client.ping()

Entering the context blocks until the socket is listening; leaving it
performs the full graceful shutdown (which flushes the store).
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional

from .client import ServeClient, ServeUnavailable
from .server import ServeConfig, SynthesisServer


class ServerThread:
    """A live daemon on a background thread (context manager)."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.server: Optional[SynthesisServer] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        #: bound observability-HTTP port (None unless the config asked)
        self.metrics_port: Optional[int] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread = threading.Thread(
            target=self._run, name="repro-serve-test", daemon=True
        )

    # -- thread body ---------------------------------------------------------

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # pragma: no cover - startup failure
            self._startup_error = exc
            self._ready.set()

    async def _main(self) -> None:
        self.server = SynthesisServer(self.config)
        self._loop = asyncio.get_event_loop()
        await self.server.start()
        self.host, self.port = self.server.host, self.server.port
        self.metrics_port = self.server.metrics_port
        self._ready.set()
        await self.server.serve_until_shutdown()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30.0):  # pragma: no cover
            raise ServeUnavailable("test daemon did not come up within 30s")
        if self._startup_error is not None:
            raise ServeUnavailable(
                f"test daemon failed to start: {self._startup_error}",
                last_error=self._startup_error,
            )
        return self

    def stop(self) -> None:
        if (
            self._loop is not None
            and self.server is not None
            and not self._loop.is_closed()
        ):
            try:
                self._loop.call_soon_threadsafe(self.server.request_shutdown)
            except RuntimeError:
                # The daemon already shut down (e.g. the test sent the
                # `shutdown` op) and its loop closed under us.
                pass
        self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- conveniences --------------------------------------------------------

    def client(
        self,
        timeout: Optional[float] = 60.0,
        retry_policy=None,
        trace: bool = False,
    ) -> ServeClient:
        assert self.host is not None and self.port is not None
        return ServeClient(
            self.host,
            self.port,
            timeout=timeout,
            retry_policy=retry_policy,
            trace=trace,
        )
