"""Operation execution — the one code path served and offline requests share.

Each ``execute_*`` function runs one protocol operation through the
exact public offline pipeline (:func:`repro.compile_program` →
:func:`repro.profile_program` → :func:`repro.synthesize_layout`) and
splits the outcome into:

* ``result`` — the deterministic payload. Bit-identical for the same
  request whether it runs offline, against a cold daemon, a warm daemon,
  or a daemon restarted from its persistent cache. This is the contract
  the serve tests and the CI smoke job enforce with a byte comparison.
* ``telemetry`` — wall-clock and cache accounting, explicitly outside
  the determinism contract.

Determinism against a warm cache holds because served synthesize
requests force ``AnnealConfig.budget_charges_hits``: the evaluation
budget charges per *request* rather than per real simulation, so a warm
cache cannot stretch the search past the trajectory of the cold run —
it only makes the same trajectory cheaper.

The compiled-program and profile memos (:class:`ProgramMemo`) are
deterministic pure-function caches, so sharing them across requests is
free of semantic risk; they exist because the ROADMAP's motivating
complaint is that every invocation recompiles and re-profiles from
scratch.
"""

from __future__ import annotations

import hashlib
import os
import threading
import time as _time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..core import (
    SynthesisOptions,
    compile_program,
    profile_program,
    synthesize_layout,
)
from ..obs import prof
from ..schedule.anneal import AnnealConfig, SearchCancelled
from ..schedule.layout import Layout
from ..search.cache import SimCache
from ..search.evaluator import SerialEvaluator
from .protocol import (
    SYNTHESIS_FORMAT,
    ProtocolError,
    context_key,
)

_P_SERVE = {
    op: prof.intern_phase(f"serve.{op}")
    for op in ("compile", "profile", "synthesize", "simulate")
}


@contextmanager
def _request_trace(params: Dict[str, object], op: str):
    """Profiler scope of one served request.

    Wraps the request body in a ``serve.<op>`` phase and captures the
    span slice the worker thread closes inside it (``reset=True`` so a
    pooled thread's buffer never leaks across requests). Yields a dict
    that, when the client sent a ``trace_id``, is filled *after* the body
    with the trace echo — ``trace_id``, a fresh ``span_id``, and the
    captured spans — for the caller to attach to telemetry. Results are
    untouched: the echo rides in telemetry only, which is explicitly
    outside the determinism contract.
    """
    trace_id = params.get("trace_id")
    if trace_id is not None and not isinstance(trace_id, str):
        raise ProtocolError("'trace_id' must be a string")
    trace: Dict[str, object] = {}
    with prof.collect_spans(reset=True) as spans:
        with prof.phase(_P_SERVE[op]):
            yield trace
    if trace_id is not None:
        trace["trace_id"] = trace_id
        trace["span_id"] = os.urandom(8).hex()
        trace["spans"] = spans


def _check_cancel(cancel, where: str) -> None:
    """Cooperative cancellation point between pipeline stages.

    ``cancel`` is anything with ``is_set()`` (a ``threading.Event`` in
    the daemon); raising :class:`SearchCancelled` here releases the
    worker thread back to the pool instead of computing an answer nobody
    is waiting for. Cancellation can only stop work early — a run it
    does not stop is untouched, so the transparency contract holds.
    """
    if cancel is not None and cancel.is_set():
        raise SearchCancelled(f"request cancelled before {where}")


def _require(params: Dict[str, object], name: str, kind, what: str):
    value = params.get(name)
    if not isinstance(value, kind):
        raise ProtocolError(f"'{name}' must be {what}")
    return value


def _string_list(params: Dict[str, object], name: str) -> Tuple[str, ...]:
    value = params.get(name, [])
    if not isinstance(value, (list, tuple)) or not all(
        isinstance(item, str) for item in value
    ):
        raise ProtocolError(f"'{name}' must be a list of strings")
    return tuple(value)


@dataclass(frozen=True)
class ProgramSpec:
    """The simulation context every operation names: one program + one
    profiling workload."""

    source: str
    filename: str
    args: Tuple[str, ...]
    optimize: bool

    @staticmethod
    def parse(params: Dict[str, object]) -> "ProgramSpec":
        return ProgramSpec(
            source=_require(params, "source", str, "the program source text"),
            filename=str(params.get("filename", "<request>")),
            args=_string_list(params, "args"),
            optimize=bool(params.get("optimize", False)),
        )

    def context(self) -> str:
        return context_key(self.source, self.args, self.optimize)

    def canonical(self) -> Dict[str, object]:
        """The deterministic identity of the context (``filename`` only
        flavors error messages, so it is deliberately excluded)."""
        return {
            "source_sha256": hashlib.sha256(
                self.source.encode("utf-8")
            ).hexdigest(),
            "args": list(self.args),
            "optimize": self.optimize,
        }


@dataclass(frozen=True)
class SynthesizeSpec:
    """One synthesize request: context + cores + the search schedule."""

    program: ProgramSpec
    cores: int
    seed: int
    mesh_width: Optional[int]
    hints: Optional[Tuple[Tuple[str, str], ...]]
    max_iterations: Optional[int]
    max_evaluations: Optional[int]

    @staticmethod
    def parse(params: Dict[str, object]) -> "SynthesizeSpec":
        program = ProgramSpec.parse(params)
        cores = _require(params, "cores", int, "a positive core count")
        if isinstance(cores, bool) or cores < 1:
            raise ProtocolError("'cores' must be a positive core count")
        hints = params.get("hints")
        if hints is not None:
            if not isinstance(hints, dict) or not all(
                isinstance(k, str) and isinstance(v, str)
                for k, v in hints.items()
            ):
                raise ProtocolError("'hints' must map task names to policies")
            hints = tuple(sorted(hints.items()))
        for name in ("seed", "mesh_width", "max_iterations", "max_evaluations"):
            value = params.get(name)
            if value is not None and (
                isinstance(value, bool) or not isinstance(value, int)
            ):
                raise ProtocolError(f"'{name}' must be an integer")
        return SynthesizeSpec(
            program=program,
            cores=cores,
            seed=int(params.get("seed", 0) or 0),
            mesh_width=params.get("mesh_width"),
            hints=hints,
            max_iterations=params.get("max_iterations"),
            max_evaluations=params.get("max_evaluations"),
        )

    def canonical(self) -> Dict[str, object]:
        return {
            **self.program.canonical(),
            "cores": self.cores,
            "seed": self.seed,
            "mesh_width": self.mesh_width,
            "hints": [list(item) for item in self.hints or []],
            "max_iterations": self.max_iterations,
            "max_evaluations": self.max_evaluations,
        }

    def anneal_config(self) -> AnnealConfig:
        config = AnnealConfig(seed=self.seed, budget_charges_hits=True)
        if self.max_iterations is not None:
            config.max_iterations = self.max_iterations
        if self.max_evaluations is not None:
            config.max_evaluations = self.max_evaluations
        return config


@dataclass(frozen=True)
class SimulateSpec:
    """One simulate request: context + an explicit layout to score."""

    program: ProgramSpec
    cores: int
    mesh_width: Optional[int]
    mapping: Tuple[Tuple[str, Tuple[int, ...]], ...]
    hints: Optional[Tuple[Tuple[str, str], ...]]

    @staticmethod
    def parse(params: Dict[str, object]) -> "SimulateSpec":
        program = ProgramSpec.parse(params)
        cores = _require(params, "cores", int, "a positive core count")
        if isinstance(cores, bool) or cores < 1:
            raise ProtocolError("'cores' must be a positive core count")
        layout = params.get("layout")
        if not isinstance(layout, dict) or not layout:
            raise ProtocolError(
                "'layout' must map task names to lists of core ids"
            )
        mapping = []
        for task, task_cores in sorted(layout.items()):
            if not isinstance(task, str) or not isinstance(
                task_cores, (list, tuple)
            ) or not all(
                isinstance(c, int) and not isinstance(c, bool)
                for c in task_cores
            ):
                raise ProtocolError(
                    "'layout' must map task names to lists of core ids"
                )
            mapping.append((task, tuple(task_cores)))
        hints = params.get("hints")
        if hints is not None:
            if not isinstance(hints, dict):
                raise ProtocolError("'hints' must map task names to policies")
            hints = tuple(sorted(hints.items()))
        mesh_width = params.get("mesh_width")
        if mesh_width is not None and (
            isinstance(mesh_width, bool) or not isinstance(mesh_width, int)
        ):
            raise ProtocolError("'mesh_width' must be an integer")
        return SimulateSpec(
            program=program,
            cores=cores,
            mesh_width=mesh_width,
            mapping=tuple(mapping),
            hints=hints,
        )

    def canonical(self) -> Dict[str, object]:
        return {
            **self.program.canonical(),
            "cores": self.cores,
            "mesh_width": self.mesh_width,
            "layout": {task: list(cores) for task, cores in self.mapping},
            "hints": [list(item) for item in self.hints or []],
        }


# -- pure-function memos -------------------------------------------------------


class ProgramMemo:
    """Cross-request memo of compiled programs and bootstrap profiles.

    Both are deterministic functions of their keys, so the memo is
    semantically invisible; it removes the recompile/re-profile tax every
    offline invocation pays. Thread-safe: compilation runs outside the
    lock (two racing threads may both compile, one result wins — cheaper
    than serializing every compile behind one lock).
    """

    def __init__(self):
        self._compiled: Dict[Tuple[str, bool], object] = {}
        self._profiles: Dict[Tuple[str, Tuple[str, ...], bool], object] = {}
        self._lock = threading.Lock()
        self.compile_hits = 0
        self.compile_misses = 0
        self.profile_hits = 0
        self.profile_misses = 0

    def _source_key(self, spec: ProgramSpec) -> str:
        return hashlib.sha256(spec.source.encode("utf-8")).hexdigest()

    def compiled(self, spec: ProgramSpec):
        key = (self._source_key(spec), spec.optimize)
        with self._lock:
            cached = self._compiled.get(key)
            if cached is not None:
                self.compile_hits += 1
                return cached
            self.compile_misses += 1
        compiled = compile_program(
            spec.source, spec.filename, optimize=spec.optimize
        )
        with self._lock:
            return self._compiled.setdefault(key, compiled)

    def profile(self, spec: ProgramSpec):
        key = (self._source_key(spec), spec.args, spec.optimize)
        with self._lock:
            cached = self._profiles.get(key)
            if cached is not None:
                self.profile_hits += 1
                return cached
            self.profile_misses += 1
        profile = profile_program(self.compiled(spec), spec.args)
        with self._lock:
            return self._profiles.setdefault(key, profile)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "compiled": len(self._compiled),
                "profiles": len(self._profiles),
                "compile_hits": self.compile_hits,
                "compile_misses": self.compile_misses,
                "profile_hits": self.profile_hits,
                "profile_misses": self.profile_misses,
            }


# -- operations ----------------------------------------------------------------


def execute_compile(
    params: Dict[str, object],
    memo: Optional[ProgramMemo] = None,
    cancel=None,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    spec = ProgramSpec.parse(params)
    memo = memo or ProgramMemo()
    started = _time.perf_counter()
    with _request_trace(params, "compile") as trace:
        _check_cancel(cancel, "compile")
        compiled = memo.compiled(spec)
    result = {
        "tasks": compiled.task_names(),
        "classes": sorted(compiled.info.classes),
        "context": spec.context(),
    }
    telemetry: Dict[str, object] = {
        "wall_seconds": _time.perf_counter() - started
    }
    if trace:
        telemetry["trace"] = trace
    return result, telemetry


def execute_profile(
    params: Dict[str, object],
    memo: Optional[ProgramMemo] = None,
    cancel=None,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    spec = ProgramSpec.parse(params)
    memo = memo or ProgramMemo()
    started = _time.perf_counter()
    with _request_trace(params, "profile") as trace:
        _check_cancel(cancel, "profile")
        profile = memo.profile(spec)
    result = {
        "context": spec.context(),
        "run_cycles": profile.run_cycles,
        "tasks": {
            task: {"invocations": stats.invocations}
            for task, stats in sorted(profile.tasks.items())
        },
    }
    telemetry: Dict[str, object] = {
        "wall_seconds": _time.perf_counter() - started
    }
    if trace:
        telemetry["trace"] = trace
    return result, telemetry


def execute_synthesize(
    params: Dict[str, object],
    memo: Optional[ProgramMemo] = None,
    cache: Optional[SimCache] = None,
    workers: int = 1,
    cancel=None,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Runs one synthesize request through the offline pipeline.

    ``cache``/``workers`` never change the result — the former by the
    SimCache transparency + request-charged budget, the latter by the
    :mod:`repro.search` batch contract — so the daemon passes its shared
    persistent cache and its configured worker pool here while the
    offline comparator passes neither. ``cancel`` (anything with
    ``is_set()``) is polled between pipeline stages and at every search
    iteration boundary; setting it raises :class:`SearchCancelled` and
    reclaims the thread.
    """
    spec = SynthesizeSpec.parse(params)
    memo = memo or ProgramMemo()
    started = _time.perf_counter()
    with _request_trace(params, "synthesize") as trace:
        _check_cancel(cancel, "compile")
        compiled = memo.compiled(spec.program)
        _check_cancel(cancel, "profile")
        profile = memo.profile(spec.program)
        report = synthesize_layout(
            compiled,
            profile,
            spec.cores,
            options=SynthesisOptions(
                anneal=spec.anneal_config(),
                hints=dict(spec.hints) if spec.hints else None,
                mesh_width=spec.mesh_width,
                workers=workers,
                cache=cache,
                cancel_check=cancel.is_set if cancel is not None else None,
            ),
        )
    layout = report.layout
    result = {
        "format": SYNTHESIS_FORMAT,
        "request": spec.canonical(),
        "layout": {task: list(cores) for task, cores in layout.instances},
        "num_cores": layout.num_cores,
        "mesh_width": layout.mesh_width,
        "topology": layout.topology,
        "estimated_cycles": report.estimated_cycles,
        "iterations": report.iterations,
        "history": report.history,
        # Requests (simulations + hits) are cache-state independent under
        # the request-charged budget, so this is a deterministic field;
        # the hit/miss split is not, and lives in telemetry.
        "requested_evaluations": report.requested_evaluations,
    }
    telemetry = {
        "wall_seconds": _time.perf_counter() - started,
        "evaluations": report.evaluations,
        "cache_hits": report.cache_hits,
        "pruned_evaluations": report.pruned_evaluations,
    }
    if trace:
        telemetry["trace"] = trace
    return result, telemetry


def execute_simulate(
    params: Dict[str, object],
    memo: Optional[ProgramMemo] = None,
    cache: Optional[SimCache] = None,
    cancel=None,
) -> Tuple[Dict[str, object], Dict[str, object]]:
    """Scores one explicit layout (sharing the context's SimCache, so a
    layout the search already visited is answered without simulating)."""
    spec = SimulateSpec.parse(params)
    memo = memo or ProgramMemo()
    started = _time.perf_counter()
    with _request_trace(params, "simulate") as trace:
        _check_cancel(cancel, "compile")
        compiled = memo.compiled(spec.program)
        _check_cancel(cancel, "profile")
        profile = memo.profile(spec.program)
        layout = Layout.make(
            spec.cores,
            {task: list(cores) for task, cores in spec.mapping},
            mesh_width=spec.mesh_width,
        )
        layout.validate(compiled.info)
        evaluator = SerialEvaluator(
            compiled,
            profile,
            hints=dict(spec.hints) if spec.hints else None,
            cache=cache,
        )
        _check_cancel(cancel, "simulate")
        outcome = evaluator.evaluate([layout])
    scored = outcome.scored[0]
    result = {
        "request": spec.canonical(),
        "cycles": scored.cycles,
        "finished": scored.result.finished,
        "utilization": scored.result.utilization,
        "invocations": dict(sorted(scored.result.invocations.items())),
    }
    telemetry = {
        "wall_seconds": _time.perf_counter() - started,
        "cache_hits": outcome.cache_hits,
        "evaluations": outcome.simulations,
    }
    if trace:
        telemetry["trace"] = trace
    return result, telemetry
