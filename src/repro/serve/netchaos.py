"""Network-level chaos for the serving layer: seeded faults, checked invariants.

The third rung of the chaos ladder — :mod:`repro.resilience.chaos`
injects faults into the *simulated machine*, :mod:`repro.search.hostchaos`
into the *host worker processes*, and this module into the *network and
daemon process* between a client and the synthesis service:

* a fault-injecting TCP proxy (:class:`ChaosProxy`) sits between a
  retrying :class:`repro.serve.client.ServeClient` and a real ``repro
  serve`` subprocess, and — per a seeded :class:`NetChaosPlan` — resets
  connections, truncates responses mid-line, injects garbage bytes, or
  delays responses past the client's timeout;
* server-side fault points fire through the daemon's gated ``inject``
  operation (a failing store flush) and through a mid-request SIGKILL of
  the daemon process followed by a restart on the same cache file.

:func:`run_net_chaos` sweeps N plans (plan 0 is always the fault-free
control) and machine-checks the serve-layer failure contract:

* **Typed outcomes** — every client call either returns the
  bit-identical result of the same request run offline, or raises a
  typed error (:class:`ServeError` / :class:`ServeUnavailable`); never a
  hang, never silently wrong bytes. Retry safety comes from determinism:
  re-sending a request after a drop can only *recover* the answer.
* **Liveness** — the daemon answers ``ping`` after every plan; injected
  client-visible faults never crash it.
* **Durability** — the on-disk cache file stays digest-valid after every
  SIGKILL (atomic writes mean a kill mid-flush leaves the previous file
  intact), and a clean ``shutdown`` at the end of the sweep exits 0 with
  a loadable, non-empty cache.
* **Degradation honesty** — an injected flush failure flips the
  daemon's ``degraded`` flag on, and the next successful flush flips it
  back off.
* **Accounting** — every planned proxy fault fires and forces at least
  one client retry; the control plan fires nothing and retries nothing.

Like its siblings, nothing raises on violation — the
:class:`NetChaosReport` carries the verdicts (and serializes to JSON for
the CI artifact).
"""

from __future__ import annotations

import json
import os
import random
import re
import socket
import struct
import subprocess
import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from .client import (
    ClientRetryPolicy,
    ServeClient,
    ServeError,
    ServeUnavailable,
)
from .protocol import ProtocolError

#: client-visible proxy fault kinds
PROXY_FAULT_KINDS = ("reset", "truncate", "garbage", "delay")


@dataclass(frozen=True)
class NetFault:
    """One injected network misbehavior, keyed by the proxy's global
    request sequence (retries included, so a plan is pure data)."""

    request: int
    kind: str  # one of PROXY_FAULT_KINDS


@dataclass(frozen=True)
class NetChaosPlan:
    """A seeded set of serve-layer faults for one sweep iteration."""

    faults: Tuple[NetFault, ...]
    seed: int = 0
    #: arm the daemon's flush fault point and check degradation reporting
    flush_fail: bool = False
    #: SIGKILL the daemon mid-request, check the cache file, restart
    kill: bool = False

    @classmethod
    def make(
        cls,
        index: int,
        seed: int,
        horizon: int = 3,
        max_faults: int = 2,
    ) -> "NetChaosPlan":
        """Builds the ``index``-th plan of a sweep. Plan 0 is always
        empty — the control. ``horizon`` must not exceed the number of
        workload calls per plan, so every designated request id is
        reached even when no retry inflates the count."""
        if index == 0:
            return cls(faults=(), seed=seed)
        rng = random.Random(seed)
        count = rng.randint(1, max(1, max_faults))
        picks = rng.sample(range(max(1, horizon)), min(horizon, count))
        faults = tuple(
            NetFault(request=pick, kind=rng.choice(PROXY_FAULT_KINDS))
            for pick in sorted(picks)
        )
        # Server-side fault points rotate on fixed strides so even a
        # small sweep exercises both; proxy faults stay rng-driven.
        return cls(
            faults=faults,
            seed=seed,
            flush_fail=index % 4 == 1,
            kill=index % 3 == 2,
        )

    def is_empty(self) -> bool:
        return not (self.faults or self.flush_fail or self.kill)

    def describe(self) -> str:
        if self.is_empty():
            return "net chaos: empty plan (control)"
        parts = [
            f"{fault.kind}@{fault.request}"
            for fault in sorted(self.faults, key=lambda f: f.request)
        ]
        if self.flush_fail:
            parts.append("flush_fail")
        if self.kill:
            parts.append("kill")
        return f"net chaos: {len(parts)} fault(s): {', '.join(parts)}"


# -- the fault-injecting proxy -------------------------------------------------


class ChaosProxy:
    """A line-oriented TCP proxy that injects :class:`NetFault` kinds.

    Forwards newline-delimited requests to the upstream daemon and
    responses back, counting requests on one global sequence (shared
    across connections, so retries advance it). When the armed plan
    designates the current request, the proxy misbehaves *on the
    response path* — the daemon always sees and executes the request,
    which is exactly the hard case: the client must decide to re-send
    without knowing whether the work happened. Determinism makes that
    safe.

    ``set_upstream`` re-points the proxy after a daemon restart; new
    connections reach the new daemon while old ones die with the old.
    """

    def __init__(
        self,
        upstream_port: int,
        host: str = "127.0.0.1",
        delay_seconds: float = 1.6,
    ):
        self.host = host
        self.delay_seconds = delay_seconds
        self._upstream_port = upstream_port
        self._plan: Optional[NetChaosPlan] = None
        self._lock = threading.Lock()
        self._sequence = 0
        #: (request, kind) pairs that actually fired since the last arm()
        self.fired: List[Tuple[int, str]] = []
        self._closing = False
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind((host, 0))
        self._listener.listen(16)
        self.port = self._listener.getsockname()[1]
        self._accepter = threading.Thread(
            target=self._accept_loop, name="chaos-proxy-accept", daemon=True
        )
        self._accepter.start()

    def arm(self, plan: Optional[NetChaosPlan]) -> None:
        """Installs a plan and resets the request sequence and the fired
        log (each plan numbers its own requests from 0)."""
        with self._lock:
            self._plan = plan
            self._sequence = 0
            self.fired = []

    def set_upstream(self, port: int) -> None:
        with self._lock:
            self._upstream_port = port

    def close(self) -> None:
        self._closing = True
        try:
            self._listener.close()
        except OSError:  # pragma: no cover
            pass

    # -- internals -----------------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                client, _ = self._listener.accept()
            except OSError:
                return
            threading.Thread(
                target=self._handle,
                args=(client,),
                name="chaos-proxy-conn",
                daemon=True,
            ).start()

    def _next_fault(self) -> Optional[str]:
        with self._lock:
            sequence = self._sequence
            self._sequence += 1
            plan = self._plan
            if plan is None:
                return None
            for fault in plan.faults:
                if fault.request == sequence:
                    self.fired.append((sequence, fault.kind))
                    return fault.kind
            return None

    def _handle(self, client: socket.socket) -> None:
        with self._lock:
            upstream_port = self._upstream_port
        try:
            upstream = socket.create_connection(
                (self.host, upstream_port), timeout=5.0
            )
        except OSError:
            # Daemon down (e.g. between kill and restart): drop the
            # client, which sees a clean connection failure and retries.
            client.close()
            return
        client_reader = client.makefile("rb")
        upstream_reader = upstream.makefile("rb")
        try:
            while True:
                request = client_reader.readline()
                if not request:
                    return
                kind = self._next_fault()
                upstream.sendall(request)
                response = upstream_reader.readline()
                if not response:
                    return
                if kind is None:
                    client.sendall(response)
                    continue
                if kind == "reset":
                    # RST instead of FIN: the hard drop.
                    client.setsockopt(
                        socket.SOL_SOCKET,
                        socket.SO_LINGER,
                        struct.pack("ii", 1, 0),
                    )
                    return
                if kind == "truncate":
                    client.sendall(response[: max(1, len(response) // 2)])
                    return
                if kind == "garbage":
                    client.sendall(b"\x16\x03\x01 not json \xff\xfe\n")
                    return
                # "delay": hold the response past the client's timeout;
                # the late bytes land on a connection the client already
                # abandoned.
                time.sleep(self.delay_seconds)
                client.sendall(response)
        except OSError:
            return
        finally:
            for handle in (client_reader, upstream_reader, client, upstream):
                try:
                    handle.close()
                except OSError:  # pragma: no cover
                    pass


# -- daemon subprocess management ----------------------------------------------

_LISTEN_RE = re.compile(r"listening on ([\d.]+):(\d+)")


class DaemonProcess:
    """One ``repro serve`` subprocess with its announced address."""

    def __init__(
        self,
        cache_path: str,
        flush_interval: float = 3600.0,
        extra_args: Sequence[str] = (),
        startup_timeout: float = 30.0,
    ):
        self.cache_path = cache_path
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))
        )
        source_root = os.path.dirname(package_root)
        env = dict(os.environ)
        env["PYTHONPATH"] = source_root + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro",
                "serve",
                "--host",
                "127.0.0.1",
                "--port",
                "0",
                "--cache",
                cache_path,
                # A long write-behind period makes flushing fully
                # harness-driven (explicit `flush` ops), so the injected
                # flush-failure window is deterministic, not a race
                # against the background flusher.
                "--flush-interval",
                str(flush_interval),
                "--allow-chaos",
                *extra_args,
            ],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.PIPE,
        )
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        self.stderr_tail: List[str] = []
        deadline = time.monotonic() + startup_timeout
        assert self.proc.stderr is not None
        while time.monotonic() < deadline:
            line = self.proc.stderr.readline()
            if not line:
                break
            text = line.decode("utf-8", "replace").rstrip()
            self.stderr_tail.append(text)
            match = _LISTEN_RE.search(text)
            if match:
                self.host, self.port = match.group(1), int(match.group(2))
                break
        if self.port is None:
            self.kill()
            raise ServeUnavailable(
                "chaos daemon did not announce a listening address; "
                f"stderr: {self.stderr_tail!r}"
            )
        self._drainer = threading.Thread(
            target=self._drain_stderr, name="chaos-daemon-stderr", daemon=True
        )
        self._drainer.start()

    def _drain_stderr(self) -> None:
        assert self.proc.stderr is not None
        for line in self.proc.stderr:
            self.stderr_tail.append(line.decode("utf-8", "replace").rstrip())
            del self.stderr_tail[:-50]

    def kill(self) -> None:
        """SIGKILL — no drain, no flush; the crash case."""
        self.proc.kill()
        self.proc.wait()

    def wait(self, timeout: float = 30.0) -> Optional[int]:
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            return None

    def client(
        self,
        timeout: float = 30.0,
        retry_policy: Optional[ClientRetryPolicy] = None,
    ) -> ServeClient:
        assert self.host is not None and self.port is not None
        return ServeClient(
            self.host, self.port, timeout=timeout, retry_policy=retry_policy
        )


# -- the sweep -----------------------------------------------------------------


@dataclass
class NetChaosRun:
    """Outcome of one plan."""

    index: int
    seed: int
    plan: NetChaosPlan
    calls: int = 0
    retries: int = 0
    fired: List[Tuple[int, str]] = field(default_factory=list)
    #: typed errors accepted by the contract (kill-phase call only)
    typed_errors: List[str] = field(default_factory=list)
    error: Optional[str] = None
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.error is None and not self.violations


@dataclass
class NetChaosReport:
    """Outcome of a full net-chaos sweep."""

    runs: List[NetChaosRun]
    #: exit code of the final graceful shutdown (0 = clean drain + flush)
    shutdown_exit: Optional[int] = None
    #: sweep-level violations (shutdown / final cache checks)
    sweep_violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.sweep_violations and all(run.ok for run in self.runs)

    def violations(self) -> List[str]:
        lines: List[str] = []
        for run in self.runs:
            if run.error is not None:
                lines.append(f"plan {run.index} (seed {run.seed}): {run.error}")
            for violation in run.violations:
                lines.append(
                    f"plan {run.index} (seed {run.seed}): {violation}"
                )
        lines.extend(f"sweep: {violation}" for violation in self.sweep_violations)
        return lines

    def total_fired(self) -> int:
        return sum(len(run.fired) for run in self.runs)

    def total_retries(self) -> int:
        return sum(run.retries for run in self.runs)

    def describe(self) -> str:
        kills = sum(1 for run in self.runs if run.plan.kill)
        flush_fails = sum(1 for run in self.runs if run.plan.flush_fail)
        lines = [
            f"net chaos: {len(self.runs)} plan(s), "
            f"{self.total_fired()} proxy fault(s) fired, "
            f"{kills} daemon kill(s), {flush_fails} flush failure(s), "
            f"{self.total_retries()} client retry(ies), "
            f"shutdown exit {self.shutdown_exit}"
        ]
        bad = self.violations()
        if bad:
            lines.append(f"INVARIANT VIOLATIONS ({len(bad)}):")
            lines.extend(f"  {line}" for line in bad)
        else:
            lines.append(
                "all invariants held: typed outcomes, result bit-identity, "
                "daemon liveness, cache durability, degradation reporting"
            )
        return "\n".join(lines)

    def as_dict(self) -> Dict[str, object]:
        """JSON-ready form (the CI chaos-report artifact)."""
        return {
            "format": "repro.serve/net-chaos-report-v1",
            "ok": self.ok,
            "plans": len(self.runs),
            "proxy_faults_fired": self.total_fired(),
            "client_retries": self.total_retries(),
            "shutdown_exit": self.shutdown_exit,
            "violations": self.violations(),
            "runs": [
                {
                    "index": run.index,
                    "seed": run.seed,
                    "plan": run.plan.describe(),
                    "calls": run.calls,
                    "retries": run.retries,
                    "fired": [list(item) for item in run.fired],
                    "typed_errors": run.typed_errors,
                    "error": run.error,
                    "violations": run.violations,
                    "ok": run.ok,
                }
                for run in self.runs
            ],
        }


def _canonical(result) -> str:
    """The byte-comparison form of a deterministic result (matches the
    ``repro request`` stdout contract: sorted keys)."""
    return json.dumps(result, sort_keys=True)


def _default_params(
    bench: str, cores: int, seed: int, max_evaluations: int
) -> Dict[str, object]:
    from ..bench import get_spec

    spec = get_spec(bench)
    with open(spec.path, "r") as handle:
        source = handle.read()
    return {
        "source": source,
        "filename": spec.filename,
        "args": ["24"],
        "optimize": True,
        "cores": cores,
        "seed": seed,
        "max_iterations": 6,
        "max_evaluations": max_evaluations,
    }


def run_net_chaos(
    plans: int = 8,
    base_seed: int = 0,
    workdir: Optional[str] = None,
    bench: str = "Keyword",
    cores: int = 4,
    seed: int = 0,
    max_evaluations: int = 60,
    client_timeout: float = 1.0,
    delay_seconds: float = 1.6,
    params: Optional[Dict[str, object]] = None,
) -> NetChaosReport:
    """Runs a full net-chaos sweep against a real daemon subprocess.

    Per plan, a retrying client issues three heavy calls (synthesize,
    simulate with the synthesized layout, synthesize again) through the
    fault-injecting proxy; plans may additionally SIGKILL the daemon
    mid-request (with restart + cache durability check) and arm the
    flush fault point (with degradation reporting check). ``params``
    overrides the synthesize request (default: the Keyword benchmark at
    a small budget). Nothing raises on violation — the report carries
    the verdicts.
    """
    import tempfile

    from .service import execute_simulate, execute_synthesize

    cleanup: Optional[tempfile.TemporaryDirectory] = None
    if workdir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-netchaos-")
        workdir = cleanup.name
    cache_path = os.path.join(workdir, "netchaos-cache.bin")
    synth_params = dict(
        params
        if params is not None
        else _default_params(bench, cores, seed, max_evaluations)
    )

    try:
        # Offline baselines: the bytes every served call must reproduce.
        synth_result, _ = execute_synthesize(dict(synth_params))
        synth_baseline = _canonical(synth_result)
        simulate_params = {
            key: synth_params[key]
            for key in ("source", "filename", "args", "optimize", "cores")
        }
        simulate_params["layout"] = synth_result["layout"]
        simulate_baseline = _canonical(
            execute_simulate(dict(simulate_params))[0]
        )
        workload = [
            ("synthesize", synth_params, synth_baseline),
            ("simulate", simulate_params, simulate_baseline),
            ("synthesize", synth_params, synth_baseline),
        ]

        daemon = DaemonProcess(cache_path)
        proxy = ChaosProxy(daemon.port, delay_seconds=delay_seconds)
        try:
            # Warm the daemon (cache + program memo) and persist once, so
            # plan calls answer in milliseconds and a short client
            # timeout cannot fire spuriously on the control plan.
            with daemon.client() as warmup:
                warmup.call("synthesize", **synth_params)
                warmup.call("simulate", **simulate_params)
                warmup.flush()

            runs: List[NetChaosRun] = []
            for index in range(plans):
                plan_seed = base_seed + index
                plan = NetChaosPlan.make(
                    index, plan_seed, horizon=len(workload)
                )
                run = NetChaosRun(index=index, seed=plan_seed, plan=plan)
                try:
                    daemon = _run_plan(
                        run,
                        plan,
                        daemon,
                        proxy,
                        workload,
                        cache_path,
                        client_timeout,
                        execute_synthesize,
                        synth_params,
                    )
                except Exception as exc:  # noqa: BLE001 - verdict, not flow
                    run.error = f"{type(exc).__name__}: {exc}"
                runs.append(run)

            report = NetChaosReport(runs=runs)
            _final_checks(report, daemon, cache_path)
        finally:
            proxy.close()
            if daemon.proc.poll() is None:
                daemon.kill()
        return report
    finally:
        if cleanup is not None:
            cleanup.cleanup()


def _run_plan(
    run: NetChaosRun,
    plan: NetChaosPlan,
    daemon: DaemonProcess,
    proxy: ChaosProxy,
    workload,
    cache_path: str,
    client_timeout: float,
    execute_synthesize,
    synth_params: Dict[str, object],
) -> DaemonProcess:
    """One plan: proxy-faulted workload, then the server-side fault
    phases. Returns the (possibly restarted) daemon."""
    proxy.arm(plan)
    policy = ClientRetryPolicy(
        max_attempts=6, backoff_base=0.02, backoff_cap=0.25
    )
    with ServeClient(
        proxy.host, proxy.port, timeout=client_timeout, retry_policy=policy
    ) as client:
        for op, call_params, baseline in workload:
            run.calls += 1
            response = client.call(op, **call_params)
            if _canonical(response["result"]) != baseline:
                run.violations.append(
                    f"call {run.calls} ({op}) diverged from the offline "
                    f"baseline through injected faults"
                )
        run.retries = client.retries
    run.fired = list(proxy.fired)
    proxy.arm(None)

    if plan.kill:
        daemon = _kill_phase(
            run, daemon, proxy, cache_path, execute_synthesize, synth_params
        )
    if plan.flush_fail:
        _flush_fail_phase(run, daemon, synth_params)

    # Liveness: whatever was injected, the daemon answers afterwards.
    try:
        with daemon.client(timeout=10.0) as probe:
            probe.ping()
    except Exception as exc:  # noqa: BLE001
        run.violations.append(
            f"daemon unresponsive after plan: {type(exc).__name__}: {exc}"
        )

    # Accounting invariants.
    if plan.is_empty():
        if run.fired:
            run.violations.append(
                f"control plan fired {len(run.fired)} fault(s)"
            )
        if run.retries:
            run.violations.append(
                f"control plan needed {run.retries} retry(ies)"
            )
    elif plan.faults:
        if len(run.fired) != len(plan.faults):
            run.violations.append(
                f"{len(plan.faults)} fault(s) planned but {len(run.fired)} "
                f"fired"
            )
        if run.retries < len(run.fired):
            run.violations.append(
                f"{len(run.fired)} fault(s) fired but only {run.retries} "
                f"retry(ies) recorded"
            )
    return daemon


def _kill_phase(
    run: NetChaosRun,
    daemon: DaemonProcess,
    proxy: ChaosProxy,
    cache_path: str,
    execute_synthesize,
    synth_params: Dict[str, object],
) -> DaemonProcess:
    """SIGKILL the daemon while a cold request is in flight, verify the
    cache file survived, restart, and require the in-flight call to end
    in bit-identity or a typed error."""
    from .store import SimCacheStore

    cold_params = dict(synth_params)
    cold_params["seed"] = 1000 + run.index
    cold_baseline = _canonical(execute_synthesize(dict(cold_params))[0])

    outcome: Dict[str, object] = {}

    def _background_call() -> None:
        try:
            with ServeClient(
                proxy.host,
                proxy.port,
                timeout=15.0,
                retry_policy=ClientRetryPolicy(
                    max_attempts=10, backoff_base=0.05, backoff_cap=0.5
                ),
            ) as client:
                outcome["result"] = client.call("synthesize", **cold_params)[
                    "result"
                ]
        except (ServeError, ServeUnavailable, ProtocolError, OSError) as exc:
            outcome["typed_error"] = f"{type(exc).__name__}: {exc}"
        except BaseException as exc:  # noqa: BLE001 - anything else is a bug
            outcome["untyped_error"] = f"{type(exc).__name__}: {exc}"

    caller = threading.Thread(
        target=_background_call, name="chaos-kill-call", daemon=True
    )
    caller.start()

    # Kill once the daemon has admitted the request (or the call won the
    # race and already finished — also a legal interleaving).
    deadline = time.monotonic() + 10.0
    while time.monotonic() < deadline and caller.is_alive():
        try:
            with daemon.client(timeout=2.0) as probe:
                if int(probe.metrics().get("admitted", 0)) >= 1:
                    break
        except Exception:  # noqa: BLE001 - daemon busy/slow; keep polling
            pass
        time.sleep(0.005)
    daemon.kill()

    # Durability: atomic writes must leave the cache file digest-valid
    # (or absent) after an uncoordinated kill.
    probe_store = SimCacheStore(path=cache_path)
    load = probe_store.load()
    if load.refused:
        run.violations.append(
            f"cache file corrupt after SIGKILL: {load.error}"
        )

    daemon = DaemonProcess(cache_path)
    proxy.set_upstream(daemon.port)

    caller.join(timeout=60.0)
    if caller.is_alive():
        run.violations.append(
            "client call hung through daemon kill (typed outcome contract "
            "broken)"
        )
    elif "untyped_error" in outcome:
        run.violations.append(
            f"client call died with an untyped error: "
            f"{outcome['untyped_error']}"
        )
    elif "typed_error" in outcome:
        run.typed_errors.append(str(outcome["typed_error"]))
    elif _canonical(outcome.get("result")) != cold_baseline:
        run.violations.append(
            "call surviving the daemon kill returned bytes different from "
            "the offline baseline"
        )
    return daemon


def _flush_fail_phase(
    run: NetChaosRun, daemon: DaemonProcess, synth_params: Dict[str, object]
) -> None:
    """Arm one flush failure; the daemon must report ``degraded: true``
    until the next successful flush clears it."""
    with daemon.client(timeout=30.0) as client:
        client.call("inject", fault="flush_fail", count=1)
        client.call("synthesize", **synth_params)  # dirty the store
        try:
            client.flush()
            run.violations.append(
                "armed flush failure did not fail the flush operation"
            )
            return
        except ServeError as exc:
            if exc.code != "internal_error":
                run.violations.append(
                    f"injected flush failure surfaced as {exc.code!r}, "
                    f"expected 'internal_error'"
                )
        if not client.ping().get("degraded"):
            run.violations.append(
                "daemon did not report degraded after a failed flush"
            )
        metrics = client.metrics()
        if not metrics.get("degraded") or not metrics.get("last_flush_error"):
            run.violations.append(
                "metrics snapshot missing degraded/last_flush_error after "
                "a failed flush"
            )
        client.flush()
        if client.ping().get("degraded"):
            run.violations.append(
                "degraded flag stuck after a successful flush"
            )


def _final_checks(
    report: NetChaosReport, daemon: DaemonProcess, cache_path: str
) -> None:
    """Graceful-shutdown invariants: clean exit, loadable non-empty cache."""
    from .store import SimCacheStore

    try:
        with daemon.client(timeout=30.0) as client:
            client.shutdown()
    except Exception as exc:  # noqa: BLE001
        report.sweep_violations.append(
            f"graceful shutdown request failed: {type(exc).__name__}: {exc}"
        )
        return
    exit_code = daemon.wait(timeout=30.0)
    report.shutdown_exit = exit_code
    if exit_code != 0:
        report.sweep_violations.append(
            f"daemon exited {exit_code} from a graceful shutdown"
        )
    load = SimCacheStore(path=cache_path).load()
    if load.refused:
        report.sweep_violations.append(
            f"cache file corrupt after graceful shutdown: {load.error}"
        )
    elif load.entries < 1:
        report.sweep_violations.append(
            "graceful shutdown flushed an empty cache despite served work"
        )
