"""The synthesis daemon: an asyncio server around the shared SimCache.

Architecture (one process, three layers):

* **Intake** (event loop) — newline-delimited-JSON connections
  (:mod:`repro.serve.protocol`). Cheap operations (``ping``,
  ``metrics``, ``flush``, ``shutdown``) are answered inline; heavy
  operations (``compile``/``profile``/``synthesize``/``simulate``) pass
  through admission control and coalescing before execution.
* **Execution** (worker threads) — a bounded thread pool runs
  :mod:`repro.serve.service` operations. Each synthesize may itself fan
  candidate simulations across the :mod:`repro.search` process pool
  (``ServeConfig.workers``), so the thread count bounds *searches in
  flight* while the process pool bounds *simulations in flight*.
* **State** (shared) — the persistent :class:`repro.serve.store.SimCacheStore`,
  the compiled/profile :class:`repro.serve.service.ProgramMemo`, and one
  :class:`repro.obs.MetricsRegistry` for every serve metric. All three
  are internally locked; handlers never touch unguarded shared state.

Admission control: at most ``max_concurrency`` heavy operations execute
while ``queue_limit`` more wait; a request beyond that is load-shed
immediately with an ``overloaded`` error rather than queued into
unbounded latency. Coalescing: identical in-flight requests (by
:func:`repro.serve.protocol.request_key`) attach to the running
execution and do not consume admission slots — under a thundering herd
of identical synthesize requests the daemon does the work once.

Metrics: per-operation request counters and latency histograms,
load-shed/coalesce counters, queue-depth and inflight gauges, the
``sim_cache_*`` counters of every context cache, and the store/memo
snapshots — exported through the ``metrics`` operation as a
``repro.obs/serve-metrics-v1`` document.

Determinism: results come from :mod:`repro.serve.service`, which runs
the offline pipeline under a request-charged budget — so a served
result is bit-identical to the offline run of the same request, warm or
cold cache (test- and CI-enforced).
"""

from __future__ import annotations

import asyncio
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..lang.errors import BambooError
from ..obs.metrics import MetricsRegistry, build_serve_metrics
from .protocol import (
    E_BAD_REQUEST,
    E_INTERNAL,
    E_OVERLOADED,
    E_PROGRAM,
    E_UNKNOWN_OP,
    HEAVY_OPS,
    MAX_LINE_BYTES,
    PROTOCOL,
    ProtocolError,
    decode,
    encode,
    error_response,
    ok_response,
    request_key,
)
from .service import (
    ProgramMemo,
    ProgramSpec,
    SimulateSpec,
    SynthesizeSpec,
    execute_compile,
    execute_profile,
    execute_simulate,
    execute_synthesize,
)
from .store import SimCacheStore


@dataclass
class ServeConfig:
    """Ops knobs of one daemon (see ``docs/SERVING.md``)."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (reported once the server is up)
    port: int = 0
    #: persistent SimCache file; None serves from memory only
    cache_path: Optional[str] = None
    #: heavy operations executing at once (worker threads)
    max_concurrency: int = 2
    #: heavy operations allowed to *wait*; beyond this, load-shed
    queue_limit: int = 8
    #: process-pool fan-out inside each synthesize (repro.search workers)
    workers: int = 1
    #: LRU bound per context cache (None = unbounded)
    cache_entries: Optional[int] = None
    #: seconds between write-behind flush checks
    flush_interval: float = 0.25


class SynthesisServer:
    """One daemon instance; create, ``await start()``, then
    ``await serve_until_shutdown()``."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.store = SimCacheStore(
            path=self.config.cache_path,
            max_entries=self.config.cache_entries,
            registry=self.registry,
        )
        self.load_report = self.store.load()
        self.memo = ProgramMemo()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        #: coalescing table: request key → future of (result, telemetry)
        self._inflight: Dict[str, "asyncio.Future"] = {}
        #: heavy ops admitted (executing + waiting); event-loop only
        self._admitted = 0
        self._started_monotonic = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None
        self._flusher: Optional[asyncio.Task] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._stop = asyncio.Event()
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        self._flusher = asyncio.ensure_future(self._flush_behind())

    async def serve_until_shutdown(self) -> None:
        """Serves until a ``shutdown`` request (or :meth:`request_shutdown`),
        then flushes the store and releases every resource."""
        assert self._server is not None and self._stop is not None
        try:
            await self._stop.wait()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self._flusher is not None:
                self._flusher.cancel()
                try:
                    await self._flusher
                except asyncio.CancelledError:
                    pass
            await asyncio.get_event_loop().run_in_executor(
                None, self.store.flush
            )
            self._executor.shutdown(wait=True)

    def request_shutdown(self) -> None:
        """Thread-unsafe shutdown trigger; from other threads use
        ``loop.call_soon_threadsafe(server.request_shutdown)``."""
        if self._stop is not None:
            self._stop.set()

    # -- write-behind flushing ------------------------------------------------

    async def _flush_behind(self) -> None:
        """Flushes the store off the request path whenever it is dirty."""
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.config.flush_interval)
            if self.store.dirty:
                try:
                    await loop.run_in_executor(None, self.store.flush)
                    self._count("serve_flushes")
                except Exception as exc:  # pragma: no cover - disk trouble
                    self._count("serve_flush_errors")
                    print(
                        f"repro.serve: background flush failed: {exc}",
                        file=sys.stderr,
                    )

    # -- connection handling --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Over-long line or peer reset: nothing sane to answer.
                    break
                if not line:
                    break
                response = await self._handle_line(line)
                writer.write(encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, AttributeError):  # pragma: no cover
                pass

    async def _handle_line(self, line: bytes) -> Dict[str, object]:
        try:
            message = decode(line)
        except ProtocolError as exc:
            self._count("serve_errors")
            return error_response({}, E_BAD_REQUEST, str(exc))
        op = message.get("op")
        self._count("serve_requests")
        if isinstance(op, str):
            self._count(f"serve_requests[{op}]")
        started = time.perf_counter()
        try:
            response = await self._dispatch(op, message)
        except ProtocolError as exc:
            self._count("serve_errors")
            response = error_response(message, E_BAD_REQUEST, str(exc))
        except BambooError as exc:
            self._count("serve_errors")
            response = error_response(message, E_PROGRAM, str(exc))
        except Exception as exc:
            self._count("serve_errors")
            response = error_response(
                message, E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        if isinstance(op, str):
            self.registry.histogram(f"serve_latency[{op}]").observe(
                time.perf_counter() - started
            )
        return response

    # -- dispatch -------------------------------------------------------------

    async def _dispatch(self, op, message) -> Dict[str, object]:
        if op == "ping":
            return ok_response(
                message,
                {
                    "pong": True,
                    "protocol": PROTOCOL,
                    "cache": self.load_report.describe(),
                },
            )
        if op == "metrics":
            return ok_response(message, self.metrics_snapshot())
        if op == "flush":
            loop = asyncio.get_event_loop()
            header = await loop.run_in_executor(None, self.store.flush)
            return ok_response(
                message,
                {"flushed": header is not None, "path": self.store.path},
            )
        if op == "shutdown":
            self.request_shutdown()
            return ok_response(message, {"stopping": True})
        if op in HEAVY_OPS:
            return await self._heavy(op, message)
        self._count("serve_errors")
        return error_response(
            message, E_UNKNOWN_OP, f"unknown operation {op!r}"
        )

    def _heavy_plan(self, op, message) -> Tuple[str, object]:
        """Validates the request eagerly (so malformed requests are
        rejected without consuming an admission slot) and returns its
        coalescing key plus the executor thunk."""
        if op == "synthesize":
            key = SynthesizeSpec.parse(message).canonical()
            thunk = lambda: execute_synthesize(
                message,
                memo=self.memo,
                cache=self.store.cache_for(
                    ProgramSpec.parse(message).context()
                ),
                workers=self.config.workers,
            )
        elif op == "simulate":
            key = SimulateSpec.parse(message).canonical()
            thunk = lambda: execute_simulate(
                message,
                memo=self.memo,
                cache=self.store.cache_for(
                    ProgramSpec.parse(message).context()
                ),
            )
        elif op == "compile":
            key = ProgramSpec.parse(message).canonical()
            thunk = lambda: execute_compile(message, memo=self.memo)
        else:  # profile
            key = ProgramSpec.parse(message).canonical()
            thunk = lambda: execute_profile(message, memo=self.memo)
        return request_key(op, key), thunk

    async def _heavy(self, op, message) -> Dict[str, object]:
        key, thunk = self._heavy_plan(op, message)

        existing = self._inflight.get(key)
        if existing is not None:
            # Coalesce: ride the in-flight execution; no admission slot.
            self._count("serve_coalesced")
            result, telemetry = await asyncio.shield(existing)
            telemetry = dict(telemetry)
            telemetry["coalesced"] = True
            return ok_response(message, result, telemetry)

        capacity = self.config.max_concurrency + self.config.queue_limit
        if self._admitted >= capacity:
            self._count("serve_shed")
            return error_response(
                message,
                E_OVERLOADED,
                f"daemon at capacity ({self._admitted} heavy requests "
                f"admitted, limit {capacity}); retry later",
            )

        loop = asyncio.get_event_loop()
        future: "asyncio.Future" = loop.create_future()
        # Followers that get cancelled must not mark the exception
        # unretrieved; shield() plus this no-op retrieval keeps asyncio's
        # GC warnings quiet.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        self._inflight[key] = future
        self._admitted += 1
        self._set_pressure_gauges()
        try:
            outcome = await loop.run_in_executor(self._executor, thunk)
            future.set_result(outcome)
        except Exception as exc:
            future.set_exception(exc)
            raise
        finally:
            self._inflight.pop(key, None)
            self._admitted -= 1
            self._set_pressure_gauges()
        result, telemetry = outcome
        if op in ("synthesize", "simulate"):
            self.store.mark_dirty()
            self.registry.counter("serve_evaluations").inc(
                int(telemetry.get("evaluations", 0))
            )
            self.registry.counter("serve_cache_hits").inc(
                int(telemetry.get("cache_hits", 0))
            )
        return ok_response(message, result, dict(telemetry))

    # -- metrics --------------------------------------------------------------

    def _count(self, name: str) -> None:
        self.registry.counter(name).inc()

    def _set_pressure_gauges(self) -> None:
        executing = min(self._admitted, self.config.max_concurrency)
        self.registry.gauge("serve_inflight").set(float(executing))
        self.registry.gauge("serve_queue_depth").set(
            float(self._admitted - executing)
        )

    def metrics_snapshot(self) -> Dict[str, object]:
        return build_serve_metrics(
            registry=self.registry,
            store=self.store.stats(),
            memo=self.memo.stats(),
            load_report={
                "loaded": self.load_report.loaded,
                "refused": self.load_report.refused,
                "error": self.load_report.error,
                "contexts": self.load_report.contexts,
                "entries": self.load_report.entries,
            },
            uptime_seconds=time.monotonic() - self._started_monotonic,
            admitted=self._admitted,
            capacity=self.config.max_concurrency + self.config.queue_limit,
        )


async def _serve_main(config: ServeConfig, announce) -> None:
    server = SynthesisServer(config)
    await server.start()
    if announce is not None:
        announce(server)
    try:
        import signal

        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    except ImportError:  # pragma: no cover - no signal module
        pass
    await server.serve_until_shutdown()


def run_server(config: Optional[ServeConfig] = None, announce=None) -> int:
    """Blocking daemon entry point (the ``repro serve`` command).

    ``announce(server)`` is called once the socket is listening — the CLI
    prints the bound address there so scripts can wait for readiness.
    """
    try:
        asyncio.run(_serve_main(config or ServeConfig(), announce))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130
    return 0
