"""The synthesis daemon: an asyncio server around the shared SimCache.

Architecture (one process, three layers):

* **Intake** (event loop) — newline-delimited-JSON connections
  (:mod:`repro.serve.protocol`). Cheap operations (``ping``,
  ``metrics``, ``flush``, ``shutdown``) are answered inline; heavy
  operations (``compile``/``profile``/``synthesize``/``simulate``) pass
  through admission control and coalescing before execution.
* **Execution** (worker threads) — a bounded thread pool runs
  :mod:`repro.serve.service` operations. Each synthesize may itself fan
  candidate simulations across the :mod:`repro.search` process pool
  (``ServeConfig.workers``), so the thread count bounds *searches in
  flight* while the process pool bounds *simulations in flight*.
* **State** (shared) — the persistent :class:`repro.serve.store.SimCacheStore`,
  the compiled/profile :class:`repro.serve.service.ProgramMemo`, and one
  :class:`repro.obs.MetricsRegistry` for every serve metric. All three
  are internally locked; handlers never touch unguarded shared state.

Admission control: at most ``max_concurrency`` heavy operations execute
while ``queue_limit`` more wait; a request beyond that is load-shed
immediately with an ``overloaded`` error (plus a ``retry_after_ms``
hint) rather than queued into unbounded latency. Coalescing: identical
in-flight requests (by :func:`repro.serve.protocol.request_key`) attach
to the running execution and do not consume admission slots — under a
thundering herd of identical synthesize requests the daemon does the
work once.

Failure story (the serve counterpart of ``repro.resilience`` /
``repro.search.supervise``):

* **Request deadlines** — every heavy request gets a wall-clock budget
  (``ServeConfig.request_deadline``, tightened per request by a
  ``deadline_ms`` parameter). A breach answers ``deadline_exceeded``
  immediately and fires the request's cancellation token; the service
  layer polls it between pipeline stages and at every search iteration
  boundary, so the worker thread is *reclaimed*, not abandoned.
* **Graceful drain** — ``shutdown`` stops admitting heavy work (new
  requests get ``draining`` with a retry hint) but answers everything
  already admitted, bounded by ``drain_timeout``; stragglers past the
  bound are cooperatively cancelled. The store is flushed last.
* **Idle timeouts** — a connection silent for ``idle_timeout`` seconds
  is closed, so abandoned sockets cannot accumulate.
* **Degradation reporting** — a failing background flush no longer dies
  on stderr alone: the last flush error and its timestamp are kept, and
  ``ping``/``metrics`` report ``degraded: true`` until a flush succeeds
  again, so clients and smoke jobs can detect a daemon that can no
  longer persist its cache.

Metrics: per-operation request counters and latency histograms,
load-shed/coalesce/deadline/drain counters, queue-depth and inflight
gauges, the ``sim_cache_*`` counters of every context cache, and the
store/memo snapshots — exported through the ``metrics`` operation as a
``repro.obs/serve-metrics-v1`` document.

Determinism: results come from :mod:`repro.serve.service`, which runs
the offline pipeline under a request-charged budget — so a served
result is bit-identical to the offline run of the same request, warm or
cold cache (test- and CI-enforced). Deadlines and drain can only *stop*
work (a typed error instead of an answer), never alter an answer that
is produced.
"""

from __future__ import annotations

import asyncio
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import json

from ..lang.errors import BambooError
from ..obs import prof
from ..obs.metrics import MetricsRegistry, build_serve_metrics
from ..obs.promexp import render_prometheus
from ..obs.runmeta import run_metadata
from ..schedule.anneal import SearchCancelled
from .protocol import (
    E_BAD_REQUEST,
    E_DEADLINE,
    E_DRAINING,
    E_INTERNAL,
    E_OVERLOADED,
    E_PROGRAM,
    E_UNKNOWN_OP,
    HEAVY_OPS,
    MAX_LINE_BYTES,
    PROTOCOL,
    ProtocolError,
    decode,
    encode,
    error_response,
    ok_response,
    request_key,
)
from .service import (
    ProgramMemo,
    ProgramSpec,
    SimulateSpec,
    SynthesizeSpec,
    execute_compile,
    execute_profile,
    execute_simulate,
    execute_synthesize,
)
from ..search.storage import StorageError
from .store import SimCacheStore

#: advisory client backoff sent with ``overloaded`` responses
RETRY_AFTER_OVERLOADED_MS = 250
#: advisory client backoff sent with ``draining`` responses (the daemon
#: is going away; a successor needs time to come up)
RETRY_AFTER_DRAINING_MS = 1000


@dataclass
class ServeConfig:
    """Ops knobs of one daemon (see ``docs/SERVING.md``)."""

    host: str = "127.0.0.1"
    #: 0 = pick an ephemeral port (reported once the server is up)
    port: int = 0
    #: persistent SimCache file; None serves from memory only
    cache_path: Optional[str] = None
    #: heavy operations executing at once (worker threads)
    max_concurrency: int = 2
    #: heavy operations allowed to *wait*; beyond this, load-shed
    queue_limit: int = 8
    #: process-pool fan-out inside each synthesize (repro.search workers)
    workers: int = 1
    #: LRU bound per context cache (None = unbounded)
    cache_entries: Optional[int] = None
    #: refused (corrupt/foreign) cache files kept for inspection; older
    #: ones are evicted by the quarantine rotation
    quarantine_keep: int = 3
    #: seconds between write-behind flush checks
    flush_interval: float = 0.25
    #: per-request wall-clock deadline in seconds for heavy operations
    #: (None = unbounded); requests may tighten it with ``deadline_ms``
    request_deadline: Optional[float] = None
    #: seconds granted to in-flight requests on graceful shutdown before
    #: they are cooperatively cancelled
    drain_timeout: float = 5.0
    #: close a connection silent for this many seconds (None = never)
    idle_timeout: Optional[float] = 300.0
    #: accept the ``inject`` fault-point operation (chaos testing only)
    allow_fault_injection: bool = False
    #: serve ``GET /metrics`` (Prometheus text), ``/healthz``, and
    #: ``/profilez`` on this HTTP port (0 = ephemeral, None = no listener)
    metrics_port: Optional[int] = None
    #: install a wall-clock profiler for the daemon's lifetime; it feeds
    #: ``/profilez``, the profiler series on ``/metrics``, and the span
    #: slices echoed in request telemetry. Never changes results.
    profile: bool = True


class SynthesisServer:
    """One daemon instance; create, ``await start()``, then
    ``await serve_until_shutdown()``."""

    def __init__(self, config: Optional[ServeConfig] = None):
        self.config = config or ServeConfig()
        self.registry = MetricsRegistry()
        self.store = SimCacheStore(
            path=self.config.cache_path,
            max_entries=self.config.cache_entries,
            registry=self.registry,
            max_quarantine=self.config.quarantine_keep,
        )
        self.load_report = self.store.load()
        self.memo = ProgramMemo()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="repro-serve",
        )
        #: coalescing table: request key → future of (result, telemetry)
        self._inflight: Dict[str, "asyncio.Future"] = {}
        #: heavy ops admitted (executing + waiting); event-loop only
        self._admitted = 0
        #: cancellation tokens of admitted requests (drain fires them)
        self._cancels: set = set()
        #: connections mid-request (read line → response written);
        #: event-loop only — drain waits for this to reach zero
        self._busy_lines = 0
        #: shutdown requested; new heavy ops are refused with `draining`
        self._draining = False
        #: ``{"error": str, "time": epoch}`` of the most recent failed
        #: store flush, cleared by the next successful one
        self.last_flush_error: Optional[Dict[str, object]] = None
        self._started_monotonic = time.monotonic()
        self._server: Optional[asyncio.base_events.Server] = None
        self._stop: Optional[asyncio.Event] = None
        self._flusher: Optional[asyncio.Task] = None
        self.host: Optional[str] = None
        self.port: Optional[int] = None
        #: the daemon's wall-clock profiler (None with ``profile=False``)
        self.profiler: Optional[prof.Profiler] = (
            prof.Profiler(record_spans=True) if self.config.profile else None
        )
        self._previous_profiler: Optional[prof.Profiler] = None
        self._http_server: Optional[asyncio.base_events.Server] = None
        #: bound address of the observability listener, once it is up
        self.metrics_host: Optional[str] = None
        self.metrics_port: Optional[int] = None

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> None:
        self._stop = asyncio.Event()
        if self.profiler is not None:
            self._previous_profiler = prof.install(self.profiler)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host=self.config.host,
            port=self.config.port,
            limit=MAX_LINE_BYTES,
        )
        address = self._server.sockets[0].getsockname()
        self.host, self.port = address[0], address[1]
        if self.config.metrics_port is not None:
            self._http_server = await asyncio.start_server(
                self._handle_http,
                host=self.config.host,
                port=self.config.metrics_port,
            )
            http_address = self._http_server.sockets[0].getsockname()
            self.metrics_host, self.metrics_port = (
                http_address[0],
                http_address[1],
            )
        self._flusher = asyncio.ensure_future(self._flush_behind())

    async def serve_until_shutdown(self) -> None:
        """Serves until a ``shutdown`` request (or :meth:`request_shutdown`),
        drains in-flight work, then flushes the store and releases every
        resource."""
        assert self._server is not None and self._stop is not None
        try:
            await self._stop.wait()
            await self._drain()
        finally:
            self._server.close()
            await self._server.wait_closed()
            if self._http_server is not None:
                self._http_server.close()
                await self._http_server.wait_closed()
            if self.profiler is not None:
                prof.uninstall(self._previous_profiler)
            if self._flusher is not None:
                self._flusher.cancel()
                try:
                    await self._flusher
                except asyncio.CancelledError:
                    pass
            try:
                await asyncio.get_event_loop().run_in_executor(
                    None, self._flush_store
                )
            except Exception:  # pragma: no cover - disk trouble at exit
                pass
            # Cooperative cancellation means drained threads have already
            # exited (or will at their next boundary); never block
            # shutdown on a straggler.
            self._executor.shutdown(wait=False)

    async def _drain(self) -> None:
        """Answers everything admitted (bounded by ``drain_timeout``),
        then cooperatively cancels whatever is left. ``_draining`` was
        set before this runs, so no *new* heavy work can arrive."""
        self._draining = True
        loop = asyncio.get_event_loop()
        deadline = loop.time() + max(0.0, self.config.drain_timeout)
        while (
            (self._admitted > 0 or self._busy_lines > 0)
            and loop.time() < deadline
        ):
            await asyncio.sleep(0.01)
        if self._admitted > 0:
            self._count("serve_drain_timeouts")
            for cancel in list(self._cancels):
                cancel.set()
            # Give the cancelled handlers one scheduling round to write
            # their typed `draining` responses before the loop dies.
            grace = loop.time() + 1.0
            while self._busy_lines > 0 and loop.time() < grace:
                await asyncio.sleep(0.01)
        else:
            self._count("serve_drained_clean")

    def request_shutdown(self) -> None:
        """Thread-unsafe shutdown trigger; from other threads use
        ``loop.call_soon_threadsafe(server.request_shutdown)``. Refuses
        new heavy work immediately; the drain happens in
        :meth:`serve_until_shutdown`."""
        self._draining = True
        if self._stop is not None:
            self._stop.set()

    # -- write-behind flushing ------------------------------------------------

    def _flush_store(self):
        """Blocking store flush that tracks the daemon's persistence
        health; runs on an executor thread. Raises on failure (callers
        on the request path answer ``internal_error``) after recording
        it, so ``degraded`` flips without losing the error."""
        try:
            header = self.store.flush()
        except Exception as exc:
            self.last_flush_error = {"error": str(exc), "time": time.time()}
            raise
        self.last_flush_error = None
        return header

    @property
    def degraded(self) -> bool:
        """True while the daemon cannot persist its cache (the most
        recent flush failed and none has succeeded since)."""
        return self.last_flush_error is not None

    async def _flush_behind(self) -> None:
        """Flushes the store off the request path whenever it is dirty."""
        loop = asyncio.get_event_loop()
        while True:
            await asyncio.sleep(self.config.flush_interval)
            if self.store.dirty:
                try:
                    await loop.run_in_executor(None, self._flush_store)
                    self._count("serve_flushes")
                except Exception as exc:
                    self._count("serve_flush_errors")
                    print(
                        f"repro.serve: background flush failed: {exc}",
                        file=sys.stderr,
                    )

    # -- connection handling --------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        idle = self.config.idle_timeout
        try:
            while True:
                try:
                    if idle is not None:
                        line = await asyncio.wait_for(
                            reader.readline(), timeout=idle
                        )
                    else:
                        line = await reader.readline()
                except asyncio.TimeoutError:
                    # Abandoned socket: reclaim it instead of accumulating.
                    self._count("serve_idle_closed")
                    break
                except ValueError:
                    # Over-long line. The framing is broken (we cannot
                    # know where the oversized line ends), but the
                    # *transport* is fine — answer with a typed error
                    # before closing so the client learns why.
                    self._count("serve_errors")
                    self._count("serve_overlong_lines")
                    try:
                        writer.write(
                            encode(
                                error_response(
                                    {},
                                    E_BAD_REQUEST,
                                    f"request line exceeds the "
                                    f"{MAX_LINE_BYTES}-byte limit",
                                )
                            )
                        )
                        await writer.drain()
                    except (ConnectionError, OSError):
                        pass
                    break
                except ConnectionError:
                    break
                if not line:
                    break
                self._busy_lines += 1
                try:
                    response = await self._handle_line(line)
                    writer.write(encode(response))
                    try:
                        await writer.drain()
                    except ConnectionError:
                        break
                finally:
                    self._busy_lines -= 1
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, AttributeError):  # pragma: no cover
                pass

    # -- observability HTTP listener ------------------------------------------

    async def _handle_http(self, reader, writer) -> None:
        """One HTTP/1.x exchange on the observability port.

        Deliberately minimal (stdlib asyncio, GET only, connection:
        close) — the audience is ``curl``, a Prometheus scraper, and the
        CI smoke job, not a general web stack. Requests here never touch
        admission control: scraping a draining or saturated daemon must
        keep working, that is the point of the endpoint.
        """
        try:
            request_line = await asyncio.wait_for(
                reader.readline(), timeout=10.0
            )
            parts = request_line.decode("latin-1", "replace").split()
            # Drain the headers; nothing in them changes the answer.
            while True:
                header = await asyncio.wait_for(
                    reader.readline(), timeout=10.0
                )
                if not header or header in (b"\r\n", b"\n"):
                    break
            if len(parts) < 2:
                status, content_type, body = (
                    "400 Bad Request",
                    "text/plain; charset=utf-8",
                    b"malformed request line\n",
                )
            else:
                status, content_type, body = self._http_response(
                    parts[0], parts[1].split("?", 1)[0]
                )
            writer.write(
                (
                    f"HTTP/1.1 {status}\r\n"
                    f"Content-Type: {content_type}\r\n"
                    f"Content-Length: {len(body)}\r\n"
                    f"Connection: close\r\n\r\n"
                ).encode("ascii")
                + body
            )
            await writer.drain()
        except (asyncio.TimeoutError, ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):  # pragma: no cover
                pass

    def _http_response(
        self, method: str, path: str
    ) -> Tuple[str, str, bytes]:
        if method not in ("GET", "HEAD"):
            return (
                "405 Method Not Allowed",
                "text/plain; charset=utf-8",
                b"only GET is supported\n",
            )
        if path == "/metrics":
            text = render_prometheus(
                self.registry,
                profiler=self.profiler,
                extra_gauges={
                    "serve_uptime_seconds": time.monotonic()
                    - self._started_monotonic,
                    "serve_admitted": float(self._admitted),
                    "serve_draining": 1.0 if self._draining else 0.0,
                    "serve_degraded": 1.0 if self.degraded else 0.0,
                },
            )
            return (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                text.encode("utf-8"),
            )
        if path == "/healthz":
            healthy = not self._draining
            body = json.dumps(
                {
                    "ok": healthy,
                    "draining": self._draining,
                    "degraded": self.degraded,
                    "uptime_seconds": time.monotonic()
                    - self._started_monotonic,
                },
                sort_keys=True,
            ).encode("utf-8")
            status = "200 OK" if healthy else "503 Service Unavailable"
            return (status, "application/json", body + b"\n")
        if path == "/profilez":
            if self.profiler is None:
                return (
                    "404 Not Found",
                    "text/plain; charset=utf-8",
                    b"profiling is disabled on this daemon\n",
                )
            doc = self.profiler.snapshot(
                meta=run_metadata(),
                extra={
                    "uptime_seconds": time.monotonic()
                    - self._started_monotonic
                },
            )
            return (
                "200 OK",
                "application/json",
                (json.dumps(doc, sort_keys=True) + "\n").encode("utf-8"),
            )
        return (
            "404 Not Found",
            "text/plain; charset=utf-8",
            b"unknown path; try /metrics, /healthz, or /profilez\n",
        )

    async def _handle_line(self, line: bytes) -> Dict[str, object]:
        try:
            message = decode(line)
        except ProtocolError as exc:
            self._count("serve_errors")
            return error_response({}, E_BAD_REQUEST, str(exc))
        op = message.get("op")
        self._count("serve_requests")
        if isinstance(op, str):
            self._count(f"serve_requests[{op}]")
        started = time.perf_counter()
        try:
            response = await self._dispatch(op, message)
        except ProtocolError as exc:
            self._count("serve_errors")
            response = error_response(message, E_BAD_REQUEST, str(exc))
        except SearchCancelled as exc:
            # An admitted request cancelled mid-flight: by drain if the
            # daemon is going away, by a deadline otherwise (the leader
            # answers its own timeout before this; followers and
            # drain-cancelled requests land here).
            self._count("serve_errors")
            if self._draining:
                response = error_response(
                    message,
                    E_DRAINING,
                    f"daemon shutting down: {exc}",
                    retry_after_ms=RETRY_AFTER_DRAINING_MS,
                )
            else:
                response = error_response(message, E_DEADLINE, str(exc))
        except StorageError as exc:
            # A BambooError subclass, but the daemon's storage failing is
            # an internal condition, not a problem with the client's
            # program.
            self._count("serve_errors")
            response = error_response(
                message, E_INTERNAL, f"storage failure: {exc}"
            )
        except BambooError as exc:
            self._count("serve_errors")
            response = error_response(message, E_PROGRAM, str(exc))
        except Exception as exc:
            self._count("serve_errors")
            response = error_response(
                message, E_INTERNAL, f"{type(exc).__name__}: {exc}"
            )
        if isinstance(op, str):
            self.registry.histogram(f"serve_latency[{op}]").observe(
                time.perf_counter() - started
            )
        return response

    # -- dispatch -------------------------------------------------------------

    async def _dispatch(self, op, message) -> Dict[str, object]:
        if op == "ping":
            return ok_response(
                message,
                {
                    "pong": True,
                    "protocol": PROTOCOL,
                    "cache": self.load_report.describe(),
                    "degraded": self.degraded,
                    "draining": self._draining,
                },
            )
        if op == "metrics":
            return ok_response(message, self.metrics_snapshot())
        if op == "flush":
            loop = asyncio.get_event_loop()
            header = await loop.run_in_executor(None, self._flush_store)
            return ok_response(
                message,
                {"flushed": header is not None, "path": self.store.path},
            )
        if op == "shutdown":
            self.request_shutdown()
            return ok_response(
                message,
                {
                    "stopping": True,
                    "draining": self._admitted,
                    "drain_timeout": self.config.drain_timeout,
                },
            )
        if op == "inject" and self.config.allow_fault_injection:
            return self._inject(message)
        if op in HEAVY_OPS:
            return await self._heavy(op, message)
        self._count("serve_errors")
        return error_response(
            message, E_UNKNOWN_OP, f"unknown operation {op!r}"
        )

    def _inject(self, message) -> Dict[str, object]:
        """Arms a server-side fault point (``--allow-chaos`` only); the
        net-chaos harness uses this to make the daemon's next flush fail
        without touching its disk."""
        fault = message.get("fault")
        if fault == "flush_fail":
            count = message.get("count", 1)
            if (
                isinstance(count, bool)
                or not isinstance(count, int)
                or count < 1
            ):
                raise ProtocolError("'count' must be a positive integer")
            self.store.fail_flushes += count
            self._count("serve_injected_faults")
            return ok_response(message, {"armed": "flush_fail", "count": count})
        raise ProtocolError(f"unknown fault point {fault!r}")

    def _deadline_for(self, message) -> Optional[float]:
        """The effective wall-clock budget of one heavy request: the
        tighter of the server default and the request's ``deadline_ms``."""
        requested = message.get("deadline_ms")
        if requested is not None and (
            isinstance(requested, bool)
            or not isinstance(requested, int)
            or requested < 1
        ):
            raise ProtocolError(
                "'deadline_ms' must be a positive integer of milliseconds"
            )
        configured = self.config.request_deadline
        if requested is None:
            return configured
        if configured is None:
            return requested / 1000.0
        return min(configured, requested / 1000.0)

    def _heavy_plan(self, op, message) -> Tuple[str, object]:
        """Validates the request eagerly (so malformed requests are
        rejected without consuming an admission slot) and returns its
        coalescing key plus the executor thunk. The thunk takes the
        request's cancellation token."""
        if op == "synthesize":
            key = SynthesizeSpec.parse(message).canonical()
            thunk = lambda cancel: execute_synthesize(
                message,
                memo=self.memo,
                cache=self.store.cache_for(
                    ProgramSpec.parse(message).context()
                ),
                workers=self.config.workers,
                cancel=cancel,
            )
        elif op == "simulate":
            key = SimulateSpec.parse(message).canonical()
            thunk = lambda cancel: execute_simulate(
                message,
                memo=self.memo,
                cache=self.store.cache_for(
                    ProgramSpec.parse(message).context()
                ),
                cancel=cancel,
            )
        elif op == "compile":
            key = ProgramSpec.parse(message).canonical()
            thunk = lambda cancel: execute_compile(
                message, memo=self.memo, cancel=cancel
            )
        else:  # profile
            key = ProgramSpec.parse(message).canonical()
            thunk = lambda cancel: execute_profile(
                message, memo=self.memo, cancel=cancel
            )
        return request_key(op, key), thunk

    async def _heavy(self, op, message) -> Dict[str, object]:
        if self._draining:
            self._count("serve_draining_rejected")
            return error_response(
                message,
                E_DRAINING,
                "daemon is draining for shutdown; heavy operations are "
                "no longer admitted",
                retry_after_ms=RETRY_AFTER_DRAINING_MS,
            )
        key, thunk = self._heavy_plan(op, message)
        deadline = self._deadline_for(message)

        existing = self._inflight.get(key)
        if existing is not None:
            # Coalesce: ride the in-flight execution; no admission slot.
            # The follower keeps its own deadline — a slow leader cannot
            # hold a tighter-budgeted follower hostage.
            self._count("serve_coalesced")
            try:
                result, telemetry = await asyncio.wait_for(
                    asyncio.shield(existing), timeout=deadline
                )
            except asyncio.TimeoutError:
                self._count("serve_deadline_exceeded")
                return error_response(
                    message,
                    E_DEADLINE,
                    f"coalesced request exceeded its {deadline:.3f}s "
                    f"deadline",
                )
            telemetry = dict(telemetry)
            telemetry["coalesced"] = True
            return ok_response(message, result, telemetry)

        capacity = self.config.max_concurrency + self.config.queue_limit
        if self._admitted >= capacity:
            self._count("serve_shed")
            return error_response(
                message,
                E_OVERLOADED,
                f"daemon at capacity ({self._admitted} heavy requests "
                f"admitted, limit {capacity}); retry later",
                retry_after_ms=RETRY_AFTER_OVERLOADED_MS,
            )

        loop = asyncio.get_event_loop()
        future: "asyncio.Future" = loop.create_future()
        # Abandoned futures (deadline-exceeded leaders, cancelled
        # followers) must not mark their exception unretrieved; this
        # no-op retrieval keeps asyncio's GC warnings quiet.
        future.add_done_callback(
            lambda f: f.exception() if not f.cancelled() else None
        )
        cancel = threading.Event()
        self._inflight[key] = future
        self._admitted += 1
        self._cancels.add(cancel)
        self._set_pressure_gauges()
        asyncio.ensure_future(self._run_admitted(key, thunk, cancel, future))
        try:
            outcome = await asyncio.wait_for(
                asyncio.shield(future), timeout=deadline
            )
        except asyncio.TimeoutError:
            # Answer now; fire the token so the thread is reclaimed at
            # its next cooperative boundary. Detach the key so a fresh
            # identical request starts a fresh execution instead of
            # riding a dying one.
            cancel.set()
            self._count("serve_deadline_exceeded")
            if self._inflight.get(key) is future:
                self._inflight.pop(key)
            return error_response(
                message,
                E_DEADLINE,
                f"request exceeded its {deadline:.3f}s deadline "
                f"(execution cancelled at the next search boundary)",
            )
        result, telemetry = outcome
        if op in ("synthesize", "simulate"):
            self.store.mark_dirty()
            self.registry.counter("serve_evaluations").inc(
                int(telemetry.get("evaluations", 0))
            )
            self.registry.counter("serve_cache_hits").inc(
                int(telemetry.get("cache_hits", 0))
            )
        return ok_response(message, result, dict(telemetry))

    async def _run_admitted(self, key, thunk, cancel, future) -> None:
        """Owns one admitted execution: runs the thunk on the pool,
        publishes its outcome to the coalescing future, and releases the
        admission slot when the thread *actually* finishes — a cancelled
        request frees capacity only once its thread is reclaimed, so
        `max_concurrency` stays an honest bound on live threads."""
        loop = asyncio.get_event_loop()
        try:
            outcome = await loop.run_in_executor(
                self._executor, lambda: thunk(cancel)
            )
        except BaseException as exc:
            if cancel.is_set():
                # The answer was already an error (deadline or drain);
                # the thread coming home is bookkeeping, not a response.
                self._count("serve_cancelled_reclaimed")
            if not future.done():
                future.set_exception(exc)
        else:
            if not future.done():
                future.set_result(outcome)
        finally:
            if self._inflight.get(key) is future:
                self._inflight.pop(key)
            self._admitted -= 1
            self._cancels.discard(cancel)
            self._set_pressure_gauges()

    # -- metrics --------------------------------------------------------------

    def _count(self, name: str) -> None:
        self.registry.counter(name).inc()

    def _set_pressure_gauges(self) -> None:
        executing = min(self._admitted, self.config.max_concurrency)
        self.registry.gauge("serve_inflight").set(float(executing))
        self.registry.gauge("serve_queue_depth").set(
            float(self._admitted - executing)
        )

    def metrics_snapshot(self) -> Dict[str, object]:
        return build_serve_metrics(
            registry=self.registry,
            store=self.store.stats(),
            memo=self.memo.stats(),
            load_report={
                "loaded": self.load_report.loaded,
                "refused": self.load_report.refused,
                "error": self.load_report.error,
                "contexts": self.load_report.contexts,
                "entries": self.load_report.entries,
            },
            uptime_seconds=time.monotonic() - self._started_monotonic,
            admitted=self._admitted,
            capacity=self.config.max_concurrency + self.config.queue_limit,
            degraded=self.degraded,
            draining=self._draining,
            last_flush_error=self.last_flush_error,
        )


async def _serve_main(config: ServeConfig, announce) -> None:
    server = SynthesisServer(config)
    await server.start()
    if announce is not None:
        announce(server)
    try:
        import signal

        loop = asyncio.get_event_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.request_shutdown)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass
    except ImportError:  # pragma: no cover - no signal module
        pass
    await server.serve_until_shutdown()


def run_server(config: Optional[ServeConfig] = None, announce=None) -> int:
    """Blocking daemon entry point (the ``repro serve`` command).

    ``announce(server)`` is called once the socket is listening — the CLI
    prints the bound address there so scripts can wait for readiness.
    """
    try:
        asyncio.run(_serve_main(config or ServeConfig(), announce))
    except KeyboardInterrupt:  # pragma: no cover - direct Ctrl-C race
        return 130
    return 0
