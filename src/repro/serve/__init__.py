"""repro.serve — the synthesis service with a persistent, shared SimCache.

An asyncio daemon (:mod:`repro.serve.server`) exposes the offline
pipeline's compile/profile/synthesize/simulate operations over a
newline-delimited-JSON socket protocol (:mod:`repro.serve.protocol`),
backed by a disk-persistent simulation cache shared across requests,
connections, and daemon restarts (:mod:`repro.serve.store`).

The load-bearing guarantee is **serving transparency**: a served
synthesize result is bit-identical to the same request run through the
offline pipeline, with a warm or a cold cache. The cache only changes
how fast an answer arrives, never which answer arrives.

Entry points: ``repro serve`` / ``repro request`` on the CLI,
:class:`repro.serve.client.ServeClient` as a library, and
:class:`repro.serve.testing.ServerThread` for in-process tests.
"""

from .client import ServeClient, ServeError, wait_for_server
from .protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL,
    ProtocolError,
    context_key,
    request_key,
)
from .server import ServeConfig, SynthesisServer, run_server
from .service import (
    ProgramMemo,
    ProgramSpec,
    SimulateSpec,
    SynthesizeSpec,
    execute_compile,
    execute_profile,
    execute_simulate,
    execute_synthesize,
)
from .store import SIMCACHE_FORMAT, SimCacheStore, StoreLoadReport
from .testing import ServerThread

__all__ = [
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL",
    "ProgramMemo",
    "ProgramSpec",
    "ProtocolError",
    "SIMCACHE_FORMAT",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServerThread",
    "SimCacheStore",
    "SimulateSpec",
    "StoreLoadReport",
    "SynthesisServer",
    "SynthesizeSpec",
    "context_key",
    "execute_compile",
    "execute_profile",
    "execute_simulate",
    "execute_synthesize",
    "request_key",
    "run_server",
    "wait_for_server",
]
