"""repro.serve — the synthesis service with a persistent, shared SimCache.

An asyncio daemon (:mod:`repro.serve.server`) exposes the offline
pipeline's compile/profile/synthesize/simulate operations over a
newline-delimited-JSON socket protocol (:mod:`repro.serve.protocol`),
backed by a disk-persistent simulation cache shared across requests,
connections, and daemon restarts (:mod:`repro.serve.store`).

The load-bearing guarantee is **serving transparency**: a served
synthesize result is bit-identical to the same request run through the
offline pipeline, with a warm or a cold cache. The cache only changes
how fast an answer arrives, never which answer arrives.

The failure story rides on the same determinism: a
:class:`ClientRetryPolicy` makes the client survive connection drops and
overloaded/draining daemons (a re-sent request can only *recover* the
answer, never change it); the server enforces per-request deadlines with
cooperative cancellation, drains gracefully on shutdown, and reports
``degraded`` when it can no longer persist its cache; and
:mod:`repro.serve.netchaos` machine-checks the whole contract under
seeded network and daemon-process faults.

Entry points: ``repro serve`` / ``repro request`` / ``repro serve-chaos``
on the CLI, :class:`repro.serve.client.ServeClient` as a library, and
:class:`repro.serve.testing.ServerThread` for in-process tests.
"""

from .client import (
    ClientRetryPolicy,
    ServeClient,
    ServeError,
    ServeUnavailable,
    wait_for_server,
)
from .netchaos import (
    ChaosProxy,
    NetChaosPlan,
    NetChaosReport,
    NetFault,
    run_net_chaos,
)
from .protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL,
    RETRYABLE_CODES,
    TRACE_FIELD,
    ProtocolError,
    context_key,
    request_key,
)
from .server import ServeConfig, SynthesisServer, run_server
from .service import (
    ProgramMemo,
    ProgramSpec,
    SimulateSpec,
    SynthesizeSpec,
    execute_compile,
    execute_profile,
    execute_simulate,
    execute_synthesize,
)
from .store import SIMCACHE_FORMAT, SimCacheStore, StoreLoadReport
from .testing import ServerThread

__all__ = [
    "ChaosProxy",
    "ClientRetryPolicy",
    "MAX_LINE_BYTES",
    "NetChaosPlan",
    "NetChaosReport",
    "NetFault",
    "OPS",
    "PROTOCOL",
    "ProgramMemo",
    "ProgramSpec",
    "ProtocolError",
    "RETRYABLE_CODES",
    "SIMCACHE_FORMAT",
    "ServeClient",
    "ServeConfig",
    "ServeError",
    "ServeUnavailable",
    "ServerThread",
    "SimCacheStore",
    "SimulateSpec",
    "StoreLoadReport",
    "SynthesisServer",
    "SynthesizeSpec",
    "TRACE_FIELD",
    "context_key",
    "execute_compile",
    "execute_profile",
    "execute_simulate",
    "execute_synthesize",
    "request_key",
    "run_net_chaos",
    "run_server",
    "wait_for_server",
]
