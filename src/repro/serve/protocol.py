"""The wire protocol of the synthesis service.

Newline-delimited JSON over a stream socket: each request is one JSON
object on one line, each response one JSON object on one line, in order.
The framing is deliberately primitive — any language (or ``nc``) can
speak it, and one TCP connection can pipeline many requests.

Request::

    {"op": "synthesize", "id": "optional-echo", ...op parameters}

Response::

    {"id": ..., "ok": true,  "result": {...}, "telemetry": {...}}
    {"id": ..., "ok": false, "error": {"code": "...", "message": "..."}}

``result`` carries only *deterministic* fields — everything a served
operation computes that must be bit-identical to the same request run
through the offline pipeline, warm or cold cache. Wall-clock, cache-hit
counts, and coalescing flags live in ``telemetry``, which no determinism
contract covers.

Request tracing: a heavy request may carry a ``trace_id`` (any string,
:data:`TRACE_FIELD`). The daemon echoes it in ``telemetry["trace"]``
together with a server-generated ``span_id`` and the wall-clock spans its
pipeline closed while answering, so one request is followable
client → daemon → search → simulator in a single exported trace
(``repro obs``/:func:`repro.obs.prof.build_request_trace`). The field is
deliberately excluded from request canonicalization — two requests that
differ only in ``trace_id`` still coalesce, and a coalesced follower
receives the leader's trace.

Two derived keys organize the server's state:

* :func:`request_key` — sha256 over the canonicalized request; identical
  in-flight requests coalesce onto one execution.
* :func:`context_key` — sha256 over the *simulation context* (program
  source, profiling arguments, optimization flag). Layout fingerprints
  are only meaningful within one context, so the persistent SimCache is
  namespaced by it: two programs never share entries, while every
  request against the same program+workload does.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Optional, Sequence

from ..lang.errors import BambooError

PROTOCOL = "repro.serve/protocol-v1"
SYNTHESIS_FORMAT = "repro.serve/synthesis-v1"

#: a request or response line larger than this is refused — the protocol
#: carries sources and layouts, not bulk data
MAX_LINE_BYTES = 8 * 1024 * 1024

#: every operation the daemon answers
OPS = (
    "ping",
    "compile",
    "profile",
    "synthesize",
    "simulate",
    "metrics",
    "flush",
    "shutdown",
)

#: operations that run on the worker pool (and are subject to admission
#: control and coalescing); the rest are answered on the event loop
HEAVY_OPS = ("compile", "profile", "synthesize", "simulate")

#: optional request field naming a client-chosen trace id; echoed (with
#: the server's span slice) in ``telemetry["trace"]``, never in ``result``
TRACE_FIELD = "trace_id"

# -- error codes ---------------------------------------------------------------

E_BAD_REQUEST = "bad_request"
E_UNKNOWN_OP = "unknown_op"
E_OVERLOADED = "overloaded"
E_DRAINING = "draining"
E_DEADLINE = "deadline_exceeded"
E_PROGRAM = "program_error"
E_INTERNAL = "internal_error"

#: error codes a client may retry: the daemon refused to *start* the work
#: (capacity or lifecycle), so nothing was computed and nothing can differ
#: on a retry. ``deadline_exceeded`` is deliberately absent — execution is
#: deterministic, so an operation that overran once will overrun again.
RETRYABLE_CODES = (E_OVERLOADED, E_DRAINING)


class ProtocolError(BambooError):
    """A malformed request or response line."""


def encode(message: Dict[str, object]) -> bytes:
    """One message as one JSON line (sorted keys, ASCII — byte-stable)."""
    return (
        json.dumps(message, sort_keys=True, ensure_ascii=True).encode("ascii")
        + b"\n"
    )


def decode(line: bytes) -> Dict[str, object]:
    """Parses one received line; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(
            f"message of {len(line)} bytes exceeds the "
            f"{MAX_LINE_BYTES}-byte line limit"
        )
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"not a JSON line: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("message must be a JSON object")
    return message


def ok_response(
    request: Dict[str, object],
    result: Dict[str, object],
    telemetry: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    response: Dict[str, object] = {"ok": True, "result": result}
    if telemetry is not None:
        response["telemetry"] = telemetry
    if "id" in request:
        response["id"] = request["id"]
    return response


def error_response(
    request: Dict[str, object],
    code: str,
    message: str,
    retry_after_ms: Optional[int] = None,
) -> Dict[str, object]:
    error: Dict[str, object] = {"code": code, "message": message}
    if retry_after_ms is not None:
        # A server-supplied backoff hint for retryable errors; clients
        # treat it as advisory and cap it with their own policy.
        error["retry_after_ms"] = int(retry_after_ms)
    response: Dict[str, object] = {"ok": False, "error": error}
    if isinstance(request, dict) and "id" in request:
        response["id"] = request["id"]
    return response


# -- derived keys --------------------------------------------------------------


def _digest(payload: Dict[str, object]) -> str:
    return hashlib.sha256(
        json.dumps(payload, sort_keys=True, ensure_ascii=True).encode("ascii")
    ).hexdigest()


def request_key(op: str, canonical_params: Dict[str, object]) -> str:
    """The coalescing key: identical in-flight requests share one run."""
    return _digest({"op": op, "params": canonical_params})


def context_key(source: str, args: Sequence[str], optimize: bool) -> str:
    """The SimCache namespace: one per (program, workload, optimize).

    A layout fingerprint keys a simulation outcome only *within* a fixed
    compiled program and profile; the profile is a deterministic function
    of (source, args), so this digest is exactly the validity domain of a
    cache entry.
    """
    return _digest(
        {
            "source_sha256": hashlib.sha256(source.encode("utf-8")).hexdigest(),
            "args": list(args),
            "optimize": bool(optimize),
        }
    )
