"""Directed simulated annealing over candidate layouts (paper §4.5).

Each iteration simulates the current candidate set, probabilistically prunes
it (best layouts survive with high probability, poor ones with a small
probability), runs the critical path analysis on the survivors' traces, and
spawns new candidates implementing the suggested migrations. The loop stops
at diminishing returns, with a probabilistic chance to keep searching past a
local maximum. Setting ``use_critical_path=False`` degenerates to plain
undirected annealing (random moves only) — the ablation baseline.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import CompiledProgram

from ..lang.errors import ScheduleError
from ..runtime.profiler import ProfileData
from .coregroup import GroupGraph, build_group_graph, task_is_replicable
from .critpath import compute_critical_path, suggest_moves
from .layout import Layout
from .mapping import (
    random_layouts,
    seed_layouts,
    with_instance_added,
    with_instance_moved,
)
from .rules import replica_choice_sets, suggest_replicas
from .simulator import SchedulingSimulator, SimResult


@dataclass
class AnnealConfig:
    seed: int = 0
    initial_candidates: int = 8
    keep_best: int = 4
    keep_poor_probability: float = 0.15
    moves_per_candidate: int = 4
    random_moves_per_candidate: int = 2
    patience: int = 2
    continue_probability: float = 0.75
    max_iterations: int = 40
    max_evaluations: int = 600
    use_critical_path: bool = True


@dataclass
class AnnealResult:
    best_layout: Layout
    best_cycles: int
    evaluations: int
    iterations: int
    history: List[int] = field(default_factory=list)  # best estimate per iter
    initial_layouts: List[Layout] = field(default_factory=list)


class DirectedSimulatedAnnealing:
    """The search driver."""

    def __init__(
        self,
        compiled: "CompiledProgram",
        profile: ProfileData,
        num_cores: int,
        config: Optional[AnnealConfig] = None,
        hints: Optional[Dict[str, str]] = None,
        group_graph: Optional[GroupGraph] = None,
        mesh_width: Optional[int] = None,
        core_speeds: Optional[Dict[int, float]] = None,
    ):
        self.compiled = compiled
        self.profile = profile
        self.num_cores = num_cores
        self.config = config or AnnealConfig()
        self.hints = hints
        self.mesh_width = mesh_width
        self.core_speeds = core_speeds
        self.rng = random.Random(self.config.seed)
        if group_graph is None:
            from ..core.api import annotated_cstg

            cstg = annotated_cstg(compiled, profile)
            group_graph = build_group_graph(compiled.info, cstg, profile)
        self.graph = group_graph
        self._cache: Dict[Tuple, Tuple[int, SimResult]] = {}
        self.evaluations = 0

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, layout: Layout) -> Tuple[int, SimResult]:
        if self.core_speeds:
            # Heterogeneous cores break core-renaming symmetry: the exact
            # assignment matters, so cache on it.
            key: Tuple = layout.instances
        else:
            key = (layout.canonical_key(), tuple(layout.cores_used()))
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        self.evaluations += 1
        sim = SchedulingSimulator(
            self.compiled, layout, self.profile, hints=self.hints,
            core_speeds=self.core_speeds,
        )
        result = sim.run()
        cycles = result.total_cycles if result.finished else 1 << 62
        self._cache[key] = (cycles, result)
        return cycles, result

    # -- neighbor generation ----------------------------------------------------------

    def _critical_path_neighbors(
        self, layout: Layout, result: SimResult
    ) -> List[Layout]:
        neighbors: List[Layout] = []
        path = compute_critical_path(result)
        for move in suggest_moves(
            result, layout, path, max_moves=self.config.moves_per_candidate
        ):
            neighbors.extend(self._apply_move(layout, move.task, move.from_core,
                                              move.to_core))
        return neighbors

    def _apply_move(
        self, layout: Layout, task: str, from_core: int, to_core: int
    ) -> List[Layout]:
        out: List[Layout] = []
        try:
            if from_core in layout.cores_of(task):
                out.append(with_instance_moved(layout, task, from_core, to_core))
                if task_is_replicable(self.compiled.info, task):
                    out.append(with_instance_added(layout, task, to_core))
        except ScheduleError:
            pass
        valid = []
        for candidate in out:
            try:
                candidate.validate(self.compiled.info)
                valid.append(candidate)
            except ScheduleError:
                continue
        return valid

    def _random_neighbors(self, layout: Layout) -> List[Layout]:
        neighbors: List[Layout] = []
        tasks = layout.tasks()
        for _ in range(self.config.random_moves_per_candidate):
            task = self.rng.choice(tasks)
            cores = layout.cores_of(task)
            from_core = self.rng.choice(cores)
            to_core = self.rng.randrange(self.num_cores)
            neighbors.extend(self._apply_move(layout, task, from_core, to_core))
        return neighbors

    # -- initial candidates ---------------------------------------------------------

    def initial_layouts(self, extra: Optional[List[Layout]] = None) -> List[Layout]:
        suggestions = suggest_replicas(
            self.compiled.info, self.graph, self.profile, self.num_cores
        )
        choices = replica_choice_sets(suggestions, self.graph, self.num_cores)
        layouts = seed_layouts(
            self.compiled.info,
            self.graph,
            suggestions,
            self.num_cores,
            mesh_width=self.mesh_width,
        )
        layouts += random_layouts(
            self.compiled.info,
            self.graph,
            choices,
            self.num_cores,
            count=self.config.initial_candidates,
            rng=self.rng,
            mesh_width=self.mesh_width,
        )
        if extra:
            layouts = list(extra) + layouts
        if not layouts:
            layouts = [Layout.make(
                self.num_cores,
                {task: [0] for task in self.compiled.info.tasks},
                self.mesh_width,
            )]
        return layouts

    # -- main loop ----------------------------------------------------------------------

    def run(self, initial: Optional[List[Layout]] = None) -> AnnealResult:
        config = self.config
        candidates = self.initial_layouts(initial)
        initial_snapshot = list(candidates)
        best_layout = candidates[0]
        best_cycles = 1 << 62
        history: List[int] = []
        patience = config.patience
        iterations = 0

        while iterations < config.max_iterations:
            iterations += 1
            scored: List[Tuple[int, Layout, SimResult]] = []
            for layout in candidates:
                cycles, result = self.evaluate(layout)
                scored.append((cycles, layout, result))
                if self.evaluations >= config.max_evaluations:
                    break
            scored.sort(key=lambda item: item[0])
            improved = scored and scored[0][0] < best_cycles
            if improved:
                best_cycles, best_layout = scored[0][0], scored[0][1]
            history.append(best_cycles)

            if self.evaluations >= config.max_evaluations:
                break

            # Probabilistic pruning: keep the best layouts with certainty,
            # poor layouts with a small probability.
            kept = scored[: config.keep_best]
            for item in scored[config.keep_best :]:
                if self.rng.random() < config.keep_poor_probability:
                    kept.append(item)

            # Generate the next candidate set.
            next_candidates: List[Layout] = []
            seen = set()

            def push(layout: Layout) -> None:
                key = (layout.canonical_key(), tuple(layout.cores_used()))
                if key not in seen:
                    seen.add(key)
                    next_candidates.append(layout)

            for cycles, layout, result in kept:
                push(layout)
                if config.use_critical_path:
                    for neighbor in self._critical_path_neighbors(layout, result):
                        push(neighbor)
                for neighbor in self._random_neighbors(layout):
                    push(neighbor)

            if not improved:
                patience -= 1
                if patience <= 0:
                    # Possibly a local maximum: continue with high
                    # probability (paper §4.5), otherwise stop.
                    if self.rng.random() < config.continue_probability:
                        patience = config.patience
                    else:
                        break
            else:
                patience = config.patience
            candidates = next_candidates
            if not candidates:
                break

        return AnnealResult(
            best_layout=best_layout,
            best_cycles=best_cycles,
            evaluations=self.evaluations,
            iterations=iterations,
            history=history,
            initial_layouts=initial_snapshot,
        )


def directed_simulated_annealing(
    compiled: "CompiledProgram",
    profile: ProfileData,
    num_cores: int,
    config: Optional[AnnealConfig] = None,
    hints: Optional[Dict[str, str]] = None,
    initial: Optional[List[Layout]] = None,
    mesh_width: Optional[int] = None,
    core_speeds: Optional[Dict[int, float]] = None,
) -> AnnealResult:
    """Runs DSA and returns the best layout found."""
    dsa = DirectedSimulatedAnnealing(
        compiled, profile, num_cores, config=config, hints=hints,
        mesh_width=mesh_width, core_speeds=core_speeds,
    )
    return dsa.run(initial)
