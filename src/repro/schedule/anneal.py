"""Directed simulated annealing over candidate layouts (paper §4.5).

Each iteration simulates the current candidate set, probabilistically prunes
it (best layouts survive with high probability, poor ones with a small
probability), runs the critical path analysis on the survivors' traces, and
spawns new candidates implementing the suggested migrations. The loop stops
at diminishing returns, with a probabilistic chance to keep searching past a
local maximum. Setting ``use_critical_path=False`` degenerates to plain
undirected annealing (random moves only) — the ablation baseline.

Candidate evaluation is delegated to :mod:`repro.search`: each iteration's
candidate set is scored as one batch through an
:class:`~repro.search.Evaluator` (serial in process, or fanned out across
worker processes — bit-identical either way), memoized in a
:class:`~repro.search.SimCache` keyed by exact layout fingerprint, and
optionally cut off early once a candidate's simulated clock passes the
incumbent best (``AnnealConfig.early_cutoff``). Cache hits do **not**
consume the ``max_evaluations`` budget — only real simulations do; both
tallies are reported on :class:`AnnealResult`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import CompiledProgram
    from ..search import Evaluator, SimCache

from ..lang.errors import ScheduleError
from ..runtime.profiler import ProfileData
from .coregroup import GroupGraph, build_group_graph, task_is_replicable
from .critpath import compute_critical_path, suggest_moves
from .layout import Layout
from .mapping import (
    random_layouts,
    seed_layouts,
    with_instance_added,
    with_instance_moved,
)
from .rules import replica_choice_sets, suggest_replicas
from .simulator import SimResult


@dataclass
class AnnealConfig:
    seed: int = 0
    initial_candidates: int = 8
    keep_best: int = 4
    keep_poor_probability: float = 0.15
    moves_per_candidate: int = 4
    random_moves_per_candidate: int = 2
    patience: int = 2
    continue_probability: float = 0.75
    max_iterations: int = 40
    #: real simulations only — cache hits are free (see AnnealResult)
    max_evaluations: int = 600
    use_critical_path: bool = True
    #: stop a candidate's simulation as soon as its clock passes the
    #: incumbent best entering the iteration (the candidate already lost).
    #: Off by default: pruned candidates carry truncated traces, which
    #: perturbs the critical-path move suggestions for kept-poor layouts.
    early_cutoff: bool = False


@dataclass
class AnnealResult:
    best_layout: Layout
    best_cycles: int
    #: real simulations performed (what ``max_evaluations`` budgets)
    evaluations: int
    iterations: int
    history: List[int] = field(default_factory=list)  # best estimate per iter
    initial_layouts: List[Layout] = field(default_factory=list)
    #: evaluation requests answered from the simulation cache
    cache_hits: int = 0
    #: all evaluation requests: ``evaluations + cache_hits``
    requested_evaluations: int = 0
    #: simulations stopped early by the incumbent cutoff
    pruned_evaluations: int = 0
    #: snapshot of the simulation cache counters (None with the cache off)
    cache_stats: Optional[Dict[str, object]] = None


class DirectedSimulatedAnnealing:
    """The search driver."""

    def __init__(
        self,
        compiled: "CompiledProgram",
        profile: ProfileData,
        num_cores: int,
        config: Optional[AnnealConfig] = None,
        hints: Optional[Dict[str, str]] = None,
        group_graph: Optional[GroupGraph] = None,
        mesh_width: Optional[int] = None,
        core_speeds: Optional[Dict[int, float]] = None,
        evaluator: Optional["Evaluator"] = None,
        cache: Optional["SimCache"] = None,
        workers: int = 1,
        use_cache: bool = True,
    ):
        self.compiled = compiled
        self.profile = profile
        self.num_cores = num_cores
        self.config = config or AnnealConfig()
        self.hints = hints
        self.mesh_width = mesh_width
        self.core_speeds = core_speeds
        self.rng = random.Random(self.config.seed)
        if group_graph is None:
            from ..core.api import annotated_cstg

            cstg = annotated_cstg(compiled, profile)
            group_graph = build_group_graph(compiled.info, cstg, profile)
        self.graph = group_graph
        from ..search import SimCache, make_evaluator

        if cache is None and use_cache:
            cache = SimCache()
        self.cache = cache if use_cache else None
        self._owns_evaluator = evaluator is None
        if evaluator is None:
            evaluator = make_evaluator(
                compiled,
                profile,
                hints=hints,
                core_speeds=core_speeds,
                cache=self.cache,
                workers=workers,
            )
        self.evaluator = evaluator
        self.evaluations = 0
        self.cache_hits = 0
        self.pruned_evaluations = 0

    def close(self) -> None:
        """Releases the evaluator's workers, if this search created them."""
        if self._owns_evaluator:
            self.evaluator.close()

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, layout: Layout) -> Tuple[int, SimResult]:
        """Scores one layout (budget-free convenience used by tests and the
        Figure 10 driver; the main loop scores whole batches)."""
        outcome = self.evaluator.evaluate([layout])
        self.evaluations += outcome.simulations
        self.cache_hits += outcome.cache_hits
        scored = outcome.scored[0]
        return scored.cycles, scored.result

    # -- neighbor generation ----------------------------------------------------------

    def _critical_path_neighbors(
        self, layout: Layout, result: SimResult
    ) -> List[Layout]:
        neighbors: List[Layout] = []
        path = compute_critical_path(result)
        for move in suggest_moves(
            result, layout, path, max_moves=self.config.moves_per_candidate
        ):
            neighbors.extend(self._apply_move(layout, move.task, move.from_core,
                                              move.to_core))
        return neighbors

    def _apply_move(
        self, layout: Layout, task: str, from_core: int, to_core: int
    ) -> List[Layout]:
        out: List[Layout] = []
        try:
            if from_core in layout.cores_of(task):
                out.append(with_instance_moved(layout, task, from_core, to_core))
                if task_is_replicable(self.compiled.info, task):
                    out.append(with_instance_added(layout, task, to_core))
        except ScheduleError:
            pass
        valid = []
        for candidate in out:
            try:
                candidate.validate(self.compiled.info)
                valid.append(candidate)
            except ScheduleError:
                continue
        return valid

    def _random_neighbors(self, layout: Layout) -> List[Layout]:
        neighbors: List[Layout] = []
        tasks = layout.tasks()
        for _ in range(self.config.random_moves_per_candidate):
            task = self.rng.choice(tasks)
            cores = layout.cores_of(task)
            from_core = self.rng.choice(cores)
            to_core = self.rng.randrange(self.num_cores)
            neighbors.extend(self._apply_move(layout, task, from_core, to_core))
        return neighbors

    # -- initial candidates ---------------------------------------------------------

    def initial_layouts(self, extra: Optional[List[Layout]] = None) -> List[Layout]:
        suggestions = suggest_replicas(
            self.compiled.info, self.graph, self.profile, self.num_cores
        )
        choices = replica_choice_sets(suggestions, self.graph, self.num_cores)
        layouts = seed_layouts(
            self.compiled.info,
            self.graph,
            suggestions,
            self.num_cores,
            mesh_width=self.mesh_width,
        )
        layouts += random_layouts(
            self.compiled.info,
            self.graph,
            choices,
            self.num_cores,
            count=self.config.initial_candidates,
            rng=self.rng,
            mesh_width=self.mesh_width,
        )
        if extra:
            layouts = list(extra) + layouts
        if not layouts:
            layouts = [Layout.make(
                self.num_cores,
                {task: [0] for task in self.compiled.info.tasks},
                self.mesh_width,
            )]
        return layouts

    # -- main loop ----------------------------------------------------------------------

    def run(self, initial: Optional[List[Layout]] = None) -> AnnealResult:
        config = self.config
        candidates = self.initial_layouts(initial)
        initial_snapshot = list(candidates)
        best_layout = candidates[0]
        best_cycles = 1 << 62
        history: List[int] = []
        patience = config.patience
        iterations = 0

        while iterations < config.max_iterations:
            iterations += 1
            # Score the whole candidate set as one batch. The cutoff is the
            # incumbent best *entering* the iteration — fixed for the batch,
            # so the outcome cannot depend on evaluation order or worker
            # count. Budget counts real simulations only.
            cutoff = (
                best_cycles
                if config.early_cutoff and best_cycles < (1 << 62)
                else None
            )
            outcome = self.evaluator.evaluate(
                candidates,
                cutoff=cutoff,
                budget=config.max_evaluations - self.evaluations,
            )
            self.evaluations += outcome.simulations
            self.cache_hits += outcome.cache_hits
            self.pruned_evaluations += outcome.pruned
            scored: List[Tuple[int, Layout, SimResult]] = [
                (item.cycles, item.layout, item.result)
                for item in outcome.scored
            ]
            scored.sort(key=lambda item: item[0])
            improved = scored and scored[0][0] < best_cycles
            if improved:
                best_cycles, best_layout = scored[0][0], scored[0][1]
            history.append(best_cycles)

            if self.evaluations >= config.max_evaluations:
                break

            # Probabilistic pruning: keep the best layouts with certainty,
            # poor layouts with a small probability.
            kept = scored[: config.keep_best]
            for item in scored[config.keep_best :]:
                if self.rng.random() < config.keep_poor_probability:
                    kept.append(item)

            # Generate the next candidate set.
            next_candidates: List[Layout] = []
            seen = set()

            def push(layout: Layout) -> None:
                key = (layout.canonical_key(), tuple(layout.cores_used()))
                if key not in seen:
                    seen.add(key)
                    next_candidates.append(layout)

            for cycles, layout, result in kept:
                push(layout)
                if config.use_critical_path:
                    for neighbor in self._critical_path_neighbors(layout, result):
                        push(neighbor)
                for neighbor in self._random_neighbors(layout):
                    push(neighbor)

            if not improved:
                patience -= 1
                if patience <= 0:
                    # Possibly a local maximum: continue with high
                    # probability (paper §4.5), otherwise stop.
                    if self.rng.random() < config.continue_probability:
                        patience = config.patience
                    else:
                        break
            else:
                patience = config.patience
            candidates = next_candidates
            if not candidates:
                break

        return AnnealResult(
            best_layout=best_layout,
            best_cycles=best_cycles,
            evaluations=self.evaluations,
            iterations=iterations,
            history=history,
            initial_layouts=initial_snapshot,
            cache_hits=self.cache_hits,
            requested_evaluations=self.evaluations + self.cache_hits,
            pruned_evaluations=self.pruned_evaluations,
            cache_stats=self.cache.stats() if self.cache is not None else None,
        )


def directed_simulated_annealing(
    compiled: "CompiledProgram",
    profile: ProfileData,
    num_cores: int,
    config: Optional[AnnealConfig] = None,
    hints: Optional[Dict[str, str]] = None,
    initial: Optional[List[Layout]] = None,
    mesh_width: Optional[int] = None,
    core_speeds: Optional[Dict[int, float]] = None,
    workers: int = 1,
    cache: Optional["SimCache"] = None,
    use_cache: bool = True,
) -> AnnealResult:
    """Runs DSA and returns the best layout found."""
    dsa = DirectedSimulatedAnnealing(
        compiled, profile, num_cores, config=config, hints=hints,
        mesh_width=mesh_width, core_speeds=core_speeds,
        workers=workers, cache=cache, use_cache=use_cache,
    )
    try:
        return dsa.run(initial)
    finally:
        dsa.close()
