"""Directed simulated annealing over candidate layouts (paper §4.5).

Each iteration simulates the current candidate set, probabilistically prunes
it (best layouts survive with high probability, poor ones with a small
probability), runs the critical path analysis on the survivors' traces, and
spawns new candidates implementing the suggested migrations. The loop stops
at diminishing returns, with a probabilistic chance to keep searching past a
local maximum. Setting ``use_critical_path=False`` degenerates to plain
undirected annealing (random moves only) — the ablation baseline.

Candidate evaluation is delegated to :mod:`repro.search`: each iteration's
candidate set is scored as one batch through an
:class:`~repro.search.Evaluator` (serial in process, or fanned out across
worker processes — bit-identical either way), memoized in a
:class:`~repro.search.SimCache` keyed by exact layout fingerprint, and
optionally cut off early once a candidate's simulated clock passes the
incumbent best (``AnnealConfig.early_cutoff``). Cache hits do **not**
consume the ``max_evaluations`` budget — only real simulations do; both
tallies are reported on :class:`AnnealResult`.

Host-level fault tolerance (this layer's :mod:`repro.resilience`
counterpart) comes in two halves:

* **Supervision** — with ``workers > 1`` the evaluator is wrapped in
  :class:`repro.search.SupervisedEvaluator`: per-dispatch deadlines,
  bounded retries, pool rebuilds, and serial degradation, all
  result-transparent (see :mod:`repro.search.supervise`).
* **Checkpoint/resume** — ``checkpoint_path`` +
  ``AnnealConfig.checkpoint_every`` periodically serialize the *full*
  annealing state (RNG, incumbent, candidates, budget counters, cache) at
  iteration boundaries (:mod:`repro.search.checkpoint`);
  ``resume=`` restores one, and the resumed run is bit-identical to an
  uninterrupted one. ``KeyboardInterrupt`` mid-iteration writes a final
  checkpoint of the last completed boundary before propagating.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.api import CompiledProgram
    from ..search import Evaluator, SimCache

from ..lang.errors import ScheduleError
from ..obs import prof
from ..runtime.profiler import ProfileData
from .coregroup import GroupGraph, build_group_graph, task_is_replicable
from .critpath import compute_critical_path, suggest_moves
from .layout import Layout
from .mapping import (
    random_layouts,
    seed_layouts,
    with_instance_added,
    with_instance_moved,
)
from .rules import replica_choice_sets, suggest_replicas
from .simulator import DeltaMove, SimResult

_P_ITERATION = prof.intern_phase("anneal.iteration")
_P_EVALUATE = prof.intern_phase("anneal.evaluate")
_P_CANDIDATES = prof.intern_phase("anneal.candidates")
_P_CHECKPOINT = prof.intern_phase("anneal.checkpoint")


class SearchCancelled(ScheduleError):
    """A cooperative cancellation fired between search iterations.

    Raised when the ``cancel_check`` callback installed by the caller
    (the serving layer's request deadlines and graceful drain) returns
    true at an iteration boundary. The search stops cleanly — no partial
    iteration escapes, and the worker thread running it is reclaimed —
    without this being a program error or a crash.
    """


@dataclass
class AnnealConfig:
    seed: int = 0
    initial_candidates: int = 8
    keep_best: int = 4
    keep_poor_probability: float = 0.15
    moves_per_candidate: int = 4
    random_moves_per_candidate: int = 2
    patience: int = 2
    continue_probability: float = 0.75
    max_iterations: int = 40
    #: real simulations only — cache hits are free (see AnnealResult)
    max_evaluations: int = 600
    use_critical_path: bool = True
    #: stop a candidate's simulation as soon as its clock passes the
    #: incumbent best entering the iteration (the candidate already lost).
    #: Off by default: pruned candidates carry truncated traces, which
    #: perturbs the critical-path move suggestions for kept-poor layouts.
    early_cutoff: bool = False
    #: charge the ``max_evaluations`` budget per evaluation *request*
    #: (cache hits included) instead of per real simulation. Off by
    #: default — offline searches want hits to be budget-free. The serving
    #: layer (:mod:`repro.serve`) turns it on so a search against a warm
    #: persistent cache follows the exact trajectory of the cold run:
    #: with hits budget-free, a warm cache would leave the budget
    #: unspent and let the search run longer, breaking the served
    #: warm/cold bit-identity contract.
    budget_charges_hits: bool = False
    #: iterations between periodic checkpoint writes, when the search was
    #: given a checkpoint path; 0 keeps only the interrupt-time write
    checkpoint_every: int = 1


@dataclass
class AnnealResult:
    best_layout: Layout
    best_cycles: int
    #: real simulations performed (what ``max_evaluations`` budgets)
    evaluations: int
    iterations: int
    history: List[int] = field(default_factory=list)  # best estimate per iter
    initial_layouts: List[Layout] = field(default_factory=list)
    #: evaluation requests answered from the simulation cache
    cache_hits: int = 0
    #: all evaluation requests: ``evaluations + cache_hits``
    requested_evaluations: int = 0
    #: simulations stopped early by the incumbent cutoff
    pruned_evaluations: int = 0
    #: snapshot of the simulation cache counters (None with the cache off)
    cache_stats: Optional[Dict[str, object]] = None
    #: host-level supervision counters (None when the evaluator was not
    #: supervised — serial searches, or ``supervise=False``)
    supervision: Optional[Dict[str, object]] = None
    #: periodic checkpoints written (including any restored-from history)
    checkpoints_written: int = 0
    #: typed host-level events (WorkerRetry / PoolRebuild /
    #: CheckpointWritten) in emission order
    host_events: List[object] = field(default_factory=list)


class DirectedSimulatedAnnealing:
    """The search driver."""

    def __init__(
        self,
        compiled: "CompiledProgram",
        profile: ProfileData,
        num_cores: int,
        config: Optional[AnnealConfig] = None,
        hints: Optional[Dict[str, str]] = None,
        group_graph: Optional[GroupGraph] = None,
        mesh_width: Optional[int] = None,
        core_speeds: Optional[Dict[int, float]] = None,
        evaluator: Optional["Evaluator"] = None,
        cache: Optional["SimCache"] = None,
        workers: int = 1,
        use_cache: bool = True,
        supervise: bool = True,
        retry_policy=None,
        host_chaos=None,
        checkpoint_path: Optional[str] = None,
        resume: Optional[str] = None,
        cancel_check=None,
        delta: bool = True,
    ):
        self.compiled = compiled
        self.profile = profile
        self.num_cores = num_cores
        self.config = config or AnnealConfig()
        self.hints = hints
        self.mesh_width = mesh_width
        self.core_speeds = core_speeds
        self.checkpoint_path = checkpoint_path
        self.resume = resume
        #: feed the evaluator delta-resimulation hints (candidate = parent
        #: plus one move). Purely a cost knob: delta-on results are
        #: bit-identical to delta-off (test-enforced per benchmark).
        self.delta = delta
        #: zero-argument callable polled at iteration boundaries; a true
        #: return raises :class:`SearchCancelled`. Purely an early-exit
        #: hook — it cannot alter the result of a run it does not stop.
        self.cancel_check = cancel_check
        self.rng = random.Random(self.config.seed)
        if group_graph is None:
            from ..core.api import annotated_cstg

            cstg = annotated_cstg(compiled, profile)
            group_graph = build_group_graph(compiled.info, cstg, profile)
        self.graph = group_graph
        from ..search import SimCache, make_evaluator

        if cache is None and use_cache:
            cache = SimCache()
        self.cache = cache if use_cache else None
        self._owns_evaluator = evaluator is None
        if evaluator is None:
            evaluator = make_evaluator(
                compiled,
                profile,
                hints=hints,
                core_speeds=core_speeds,
                cache=self.cache,
                workers=workers,
                supervise=supervise,
                policy=retry_policy,
                chaos=host_chaos,
                delta=delta,
            )
        self.evaluator = evaluator
        #: candidate layout -> DeltaMove hint for the *next* evaluation
        #: batch (rebuilt every iteration, checkpointed alongside the
        #: candidate set so a resumed search stays warm)
        self._pending_hints: Dict[Layout, DeltaMove] = {}
        #: lazily probed: does the (possibly caller-supplied) evaluator's
        #: ``evaluate`` accept the ``deltas`` keyword?
        self._supports_deltas: Optional[bool] = None
        self.evaluations = 0
        self.cache_hits = 0
        self.pruned_evaluations = 0
        self.checkpoints_written = 0
        #: CheckpointWritten events, restored across resumes
        self._checkpoint_events: List[object] = []
        #: last completed-iteration boundary state (interrupt target)
        self._boundary = None

    def close(self) -> None:
        """Releases the evaluator's workers, if this search created them."""
        if self._owns_evaluator:
            self.evaluator.close()

    def __enter__(self) -> "DirectedSimulatedAnnealing":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- evaluation ---------------------------------------------------------------

    def evaluate(self, layout: Layout) -> Tuple[int, SimResult]:
        """Scores one layout (budget-free convenience used by tests and the
        Figure 10 driver; the main loop scores whole batches)."""
        outcome = self.evaluator.evaluate([layout])
        self.evaluations += outcome.simulations
        self.cache_hits += outcome.cache_hits
        scored = outcome.scored[0]
        return scored.cycles, scored.result

    def _delta_kwargs(self, candidates: List[Layout]) -> Dict[str, object]:
        """The ``deltas=`` keyword for the batch evaluation, or nothing.

        Caller-supplied evaluators may predate the keyword (the
        :class:`~repro.search.Evaluator` protocol added it with the
        session API), so it is probed once and the hints are silently
        dropped when unsupported — hints are advice, not semantics.
        """
        if not self._pending_hints or not self.delta:
            return {}
        if self._supports_deltas is None:
            import inspect

            try:
                parameters = inspect.signature(
                    self.evaluator.evaluate
                ).parameters
            except (TypeError, ValueError):  # pragma: no cover - exotic
                self._supports_deltas = False
            else:
                self._supports_deltas = "deltas" in parameters
        if not self._supports_deltas:
            return {}
        return {
            "deltas": [
                self._pending_hints.get(layout) for layout in candidates
            ]
        }

    # -- neighbor generation ----------------------------------------------------------

    def _critical_path_neighbors(
        self, layout: Layout, result: SimResult
    ) -> List[Tuple[Layout, str]]:
        """Yields ``(neighbor, moved_task)`` pairs — the moved task names
        the delta against the parent layout for incremental re-simulation."""
        neighbors: List[Tuple[Layout, str]] = []
        path = compute_critical_path(result)
        for move in suggest_moves(
            result, layout, path, max_moves=self.config.moves_per_candidate
        ):
            for neighbor in self._apply_move(
                layout, move.task, move.from_core, move.to_core
            ):
                neighbors.append((neighbor, move.task))
        return neighbors

    def _apply_move(
        self, layout: Layout, task: str, from_core: int, to_core: int
    ) -> List[Layout]:
        out: List[Layout] = []
        try:
            if from_core in layout.cores_of(task):
                out.append(with_instance_moved(layout, task, from_core, to_core))
                if task_is_replicable(self.compiled.info, task):
                    out.append(with_instance_added(layout, task, to_core))
        except ScheduleError:
            pass
        valid = []
        for candidate in out:
            try:
                candidate.validate(self.compiled.info)
                valid.append(candidate)
            except ScheduleError:
                continue
        return valid

    def _random_neighbors(self, layout: Layout) -> List[Tuple[Layout, str]]:
        neighbors: List[Tuple[Layout, str]] = []
        tasks = layout.tasks()
        for _ in range(self.config.random_moves_per_candidate):
            task = self.rng.choice(tasks)
            cores = layout.cores_of(task)
            from_core = self.rng.choice(cores)
            to_core = self.rng.randrange(self.num_cores)
            for neighbor in self._apply_move(layout, task, from_core, to_core):
                neighbors.append((neighbor, task))
        return neighbors

    # -- initial candidates ---------------------------------------------------------

    def initial_layouts(self, extra: Optional[List[Layout]] = None) -> List[Layout]:
        suggestions = suggest_replicas(
            self.compiled.info, self.graph, self.profile, self.num_cores
        )
        choices = replica_choice_sets(suggestions, self.graph, self.num_cores)
        layouts = seed_layouts(
            self.compiled.info,
            self.graph,
            suggestions,
            self.num_cores,
            mesh_width=self.mesh_width,
        )
        layouts += random_layouts(
            self.compiled.info,
            self.graph,
            choices,
            self.num_cores,
            count=self.config.initial_candidates,
            rng=self.rng,
            mesh_width=self.mesh_width,
        )
        if extra:
            layouts = list(extra) + layouts
        if not layouts:
            layouts = [Layout.make(
                self.num_cores,
                {task: [0] for task in self.compiled.info.tasks},
                self.mesh_width,
            )]
        return layouts

    # -- checkpointing ------------------------------------------------------------------

    def _capture_boundary(
        self, iterations, best_layout, best_cycles, candidates, history,
        patience, initial_snapshot,
    ) -> None:
        """Snapshots the completed-iteration state. Cheap (references plus
        RNG/counter copies), so it runs every iteration while
        checkpointing is active — an interrupt mid-iteration then saves
        the last *boundary*, never a half-mutated state."""
        from ..search.checkpoint import SearchCheckpoint, config_digest

        self._boundary = SearchCheckpoint(
            iteration=iterations,
            rng_state=self.rng.getstate(),
            best_layout=best_layout,
            best_cycles=best_cycles,
            candidates=list(candidates),
            history=list(history),
            patience=patience,
            evaluations=self.evaluations,
            cache_hits=self.cache_hits,
            pruned_evaluations=self.pruned_evaluations,
            initial_layouts=list(initial_snapshot),
            cache_state=(
                self.cache.state(include_sessions=True)
                if self.cache is not None
                else None
            ),
            checkpoints_written=self.checkpoints_written,
            checkpoint_events=list(self._checkpoint_events),
            config_digest=config_digest(self.config),
            candidate_deltas=[
                self._pending_hints.get(layout) for layout in candidates
            ],
        )

    def write_final_checkpoint(self) -> Optional[str]:
        """Writes the last completed iteration boundary (the interrupt
        path); returns the path, or None when checkpointing is off or no
        iteration has completed yet."""
        if self.checkpoint_path is None or self._boundary is None:
            return None
        from ..search.checkpoint import write_checkpoint

        write_checkpoint(self.checkpoint_path, self._boundary)
        return self.checkpoint_path

    def _restore(self, config: AnnealConfig):
        """Restores the state a ``resume=`` checkpoint captured."""
        from ..search.checkpoint import (
            CheckpointError,
            config_digest,
            read_checkpoint,
        )

        state = read_checkpoint(self.resume)
        digest = config_digest(config)
        if state.config_digest and state.config_digest != digest:
            raise CheckpointError(
                f"checkpoint {self.resume!r} was written under a different "
                "anneal schedule; resuming would diverge from both runs "
                "(only max_iterations and the checkpoint cadence may change)"
            )
        self.rng.setstate(state.rng_state)
        self.evaluations = state.evaluations
        self.cache_hits = state.cache_hits
        self.pruned_evaluations = state.pruned_evaluations
        self.checkpoints_written = state.checkpoints_written
        self._checkpoint_events = list(state.checkpoint_events)
        if self.cache is not None and state.cache_state is not None:
            self.cache.restore(state.cache_state)
        if state.candidate_deltas is not None:
            self._pending_hints = {
                layout: hint
                for layout, hint in zip(
                    state.candidates, state.candidate_deltas
                )
                if hint is not None
            }
        return state

    # -- main loop ----------------------------------------------------------------------

    def run(self, initial: Optional[List[Layout]] = None) -> AnnealResult:
        config = self.config
        if self.resume is not None:
            state = self._restore(config)
            candidates = list(state.candidates)
            initial_snapshot = list(state.initial_layouts)
            best_layout = state.best_layout
            best_cycles = state.best_cycles
            history = list(state.history)
            patience = state.patience
            iterations = state.iteration
        else:
            candidates = self.initial_layouts(initial)
            initial_snapshot = list(candidates)
            best_layout = candidates[0]
            best_cycles = 1 << 62
            history = []
            patience = config.patience
            iterations = 0

        checkpointing = self.checkpoint_path is not None
        if checkpointing and self.resume is not None:
            # An interrupt before the first post-resume boundary must
            # still have something to save.
            self._capture_boundary(
                iterations, best_layout, best_cycles, candidates, history,
                patience, initial_snapshot,
            )
        try:
            return self._search(
                config, candidates, initial_snapshot, best_layout,
                best_cycles, history, patience, iterations, checkpointing,
            )
        except KeyboardInterrupt:
            if checkpointing:
                self.write_final_checkpoint()
            raise

    def _search(
        self, config, candidates, initial_snapshot, best_layout, best_cycles,
        history, patience, iterations, checkpointing,
    ) -> AnnealResult:
        charge_hits = config.budget_charges_hits
        while iterations < config.max_iterations:
            if self.cancel_check is not None and self.cancel_check():
                raise SearchCancelled(
                    f"layout search cancelled after {iterations} "
                    f"iteration(s) / {self.evaluations} simulation(s)"
                )
            iterations += 1
            with prof.phase(_P_ITERATION):
                # Score the whole candidate set as one batch. The cutoff is
                # the incumbent best *entering* the iteration — fixed for the
                # batch, so the outcome cannot depend on evaluation order or
                # worker count. Budget counts real simulations only, unless
                # ``budget_charges_hits`` charges every request (the serve
                # mode's cache-state-independent budget).
                cutoff = (
                    best_cycles
                    if config.early_cutoff and best_cycles < (1 << 62)
                    else None
                )
                spent = self.evaluations + (
                    self.cache_hits if charge_hits else 0
                )
                with prof.phase(_P_EVALUATE):
                    outcome = self.evaluator.evaluate(
                        candidates,
                        cutoff=cutoff,
                        budget=config.max_evaluations - spent,
                        charge_hits=charge_hits,
                        **self._delta_kwargs(candidates),
                    )
                self.evaluations += outcome.simulations
                self.cache_hits += outcome.cache_hits
                self.pruned_evaluations += outcome.pruned
                scored: List[Tuple[int, Layout, SimResult]] = [
                    (item.cycles, item.layout, item.result)
                    for item in outcome.scored
                ]
                scored.sort(key=lambda item: item[0])
                improved = scored and scored[0][0] < best_cycles
                if improved:
                    best_cycles, best_layout = scored[0][0], scored[0][1]
                history.append(best_cycles)

                spent = self.evaluations + (
                    self.cache_hits if charge_hits else 0
                )
                if spent >= config.max_evaluations:
                    break

                # Probabilistic pruning: keep the best layouts with
                # certainty, poor layouts with a small probability.
                kept = scored[: config.keep_best]
                for item in scored[config.keep_best :]:
                    if self.rng.random() < config.keep_poor_probability:
                        kept.append(item)

                # Generate the next candidate set. Each neighbor is its
                # parent plus one migration, so it carries a DeltaMove
                # hint (parent fingerprint + moved task) for the
                # evaluator's incremental re-simulation. Hints never
                # affect scores — only how much of the parent's event
                # timeline the simulator gets to skip.
                next_candidates: List[Layout] = []
                seen = set()
                hints: Dict[Layout, DeltaMove] = {}
                fingerprint = (
                    getattr(self.evaluator, "fingerprint", None)
                    if self.delta
                    else None
                )

                def push(layout: Layout, hint: Optional[DeltaMove] = None):
                    key = (layout.canonical_key(), tuple(layout.cores_used()))
                    if key not in seen:
                        seen.add(key)
                        next_candidates.append(layout)
                        if hint is not None:
                            hints[layout] = hint

                with prof.phase(_P_CANDIDATES):
                    for cycles, layout, result in kept:
                        push(layout)
                        parent = (
                            fingerprint(layout)
                            if fingerprint is not None
                            else None
                        )
                        if config.use_critical_path:
                            for neighbor, moved in self._critical_path_neighbors(
                                layout, result
                            ):
                                push(
                                    neighbor,
                                    DeltaMove(parent, moved)
                                    if parent is not None
                                    else None,
                                )
                        for neighbor, moved in self._random_neighbors(layout):
                            push(
                                neighbor,
                                DeltaMove(parent, moved)
                                if parent is not None
                                else None,
                            )
                self._pending_hints = hints

                if not improved:
                    patience -= 1
                    if patience <= 0:
                        # Possibly a local maximum: continue with high
                        # probability (paper §4.5), otherwise stop.
                        if self.rng.random() < config.continue_probability:
                            patience = config.patience
                        else:
                            break
                else:
                    patience = config.patience
                candidates = next_candidates
                if not candidates:
                    break
                if checkpointing:
                    with prof.phase(_P_CHECKPOINT):
                        self._checkpoint_boundary(
                            config, iterations, best_layout, best_cycles,
                            candidates, history, patience, initial_snapshot,
                        )

        stats = getattr(self.evaluator, "stats", None)
        return AnnealResult(
            best_layout=best_layout,
            best_cycles=best_cycles,
            evaluations=self.evaluations,
            iterations=iterations,
            history=history,
            initial_layouts=initial_snapshot,
            cache_hits=self.cache_hits,
            requested_evaluations=self.evaluations + self.cache_hits,
            pruned_evaluations=self.pruned_evaluations,
            cache_stats=self.cache.stats() if self.cache is not None else None,
            supervision=stats.snapshot() if stats is not None else None,
            checkpoints_written=self.checkpoints_written,
            host_events=(
                (list(stats.events) if stats is not None else [])
                + list(self._checkpoint_events)
            ),
        )

    def _checkpoint_boundary(
        self, config, iterations, best_layout, best_cycles, candidates,
        history, patience, initial_snapshot,
    ) -> None:
        """End-of-iteration bookkeeping: count a due periodic write
        *before* capturing, so the checkpoint's own counters include it —
        that is what makes a resumed run's accounting bit-identical."""
        from ..obs.events import CheckpointWritten

        due = (
            config.checkpoint_every > 0
            and iterations % config.checkpoint_every == 0
        )
        if due:
            self.checkpoints_written += 1
            self._checkpoint_events.append(
                CheckpointWritten(
                    time=iterations,
                    iteration=iterations,
                    evaluations=self.evaluations,
                )
            )
        self._capture_boundary(
            iterations, best_layout, best_cycles, candidates, history,
            patience, initial_snapshot,
        )
        if due:
            from ..search.checkpoint import write_checkpoint

            write_checkpoint(self.checkpoint_path, self._boundary)


def directed_simulated_annealing(
    compiled: "CompiledProgram",
    profile: ProfileData,
    num_cores: int,
    config: Optional[AnnealConfig] = None,
    hints: Optional[Dict[str, str]] = None,
    initial: Optional[List[Layout]] = None,
    mesh_width: Optional[int] = None,
    core_speeds: Optional[Dict[int, float]] = None,
    workers: int = 1,
    cache: Optional["SimCache"] = None,
    use_cache: bool = True,
    supervise: bool = True,
    retry_policy=None,
    host_chaos=None,
    checkpoint_path: Optional[str] = None,
    resume: Optional[str] = None,
    delta: bool = True,
) -> AnnealResult:
    """Runs DSA and returns the best layout found. ``resume=`` restores a
    checkpoint written by an earlier (interrupted) run with the same
    schedule; the resumed result is bit-identical to an uninterrupted
    run's. ``delta=False`` disables incremental re-simulation (full
    simulations only — same results, more wall clock)."""
    with DirectedSimulatedAnnealing(
        compiled, profile, num_cores, config=config, hints=hints,
        mesh_width=mesh_width, core_speeds=core_speeds,
        workers=workers, cache=cache, use_cache=use_cache,
        supervise=supervise, retry_policy=retry_policy,
        host_chaos=host_chaos, checkpoint_path=checkpoint_path,
        resume=resume, delta=delta,
    ) as dsa:
        return dsa.run(initial)
