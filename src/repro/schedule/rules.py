"""Parallelizing transformation rules (paper §4.3.3).

Three rules transform the core-group graph to expose parallelism:

* **Data locality rule** — the default: tasks stay on the same core unless
  another rule applies (one replica per group).
* **Data parallelization rule** — if a producer invocation allocates ``m``
  objects consumed by another group, replicate the consumer group to ``m``
  copies so the new objects can be processed in parallel.
* **Rate matching rule** — a short producer *cycle* can overwhelm a
  consumer: with ``m`` objects allocated per cycle of length ``t_cycle`` and
  consumer processing time ``t_process``, the consumer needs
  ``n = ceil(m * t_process / t_cycle)`` replicas. Applied when the producer
  group is cyclic and lies in a different SCC; the larger of the two rules'
  counts wins.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List

from ..runtime.profiler import ProfileData
from ..sema.symbols import ProgramInfo
from .coregroup import GroupGraph


@dataclass
class ReplicaSuggestion:
    """The replica count the rules recommend for one core group."""

    group_id: int
    replicas: int
    rule: str  # "locality" | "data-parallel" | "rate-match" | "pinned"
    #: raw (uncapped) count, for diagnostics
    raw: float = 0.0


def group_processing_time(
    graph: GroupGraph, profile: ProfileData, group_id: int
) -> float:
    """Expected cycles one object spends being processed by a group —
    the weighted-average task time over the group's tasks."""
    tasks = sorted(graph.group(group_id).tasks)
    times = [profile.avg_task_cycles(task) for task in tasks]
    invocations = [profile.invocations(task) for task in tasks]
    total_inv = sum(invocations)
    if total_inv == 0:
        return 0.0
    # Per delivered object the group runs each of its tasks in proportion to
    # the observed invocation mix.
    reference = max(invocations)
    if reference == 0:
        return 0.0
    return sum(
        t * (inv / reference) for t, inv in zip(times, invocations)
    )


def group_cycle_time(
    graph: GroupGraph, profile: ProfileData, group_id: int
) -> float:
    """Approximate ``t_cycle`` of a cyclic producer group: the sum of its
    tasks' expected times (the shortest trip around the SCC visits each
    task once)."""
    tasks = sorted(graph.group(group_id).tasks)
    return sum(profile.avg_task_cycles(task) for task in tasks)


def suggest_replicas(
    info: ProgramInfo,
    graph: GroupGraph,
    profile: ProfileData,
    num_cores: int,
    enable_data_parallel: bool = True,
    enable_rate_match: bool = True,
) -> Dict[int, ReplicaSuggestion]:
    """Computes the per-group replica counts the rules recommend.

    The two boolean switches support the ablation benches (locality-only
    placement corresponds to both rules disabled).
    """
    suggestions: Dict[int, ReplicaSuggestion] = {}
    for group in _topo_groups(graph):
        gid = group.group_id
        if not group.replicable:
            suggestions[gid] = ReplicaSuggestion(gid, 1, "pinned")
            continue
        best = ReplicaSuggestion(gid, 1, "locality", raw=1.0)
        # Transition edges move existing objects 1:1 between groups, so a
        # replicated producer stage needs an equally replicated consumer
        # stage (the data-locality rule keeps per-object pipelines wide).
        for edge in graph.producers_of(gid):
            if edge.kind != "transition" or edge.objects_per_invocation <= 0:
                continue
            producer = suggestions.get(edge.src_group)
            if producer is not None and producer.replicas > best.replicas:
                best = ReplicaSuggestion(
                    gid, producer.replicas, "locality-chain",
                    raw=float(producer.replicas),
                )
        for edge in graph.producers_of(gid):
            if edge.kind != "new":
                continue
            producer = graph.group(edge.src_group)
            # Expected objects per producer invocation reaching this group.
            m = edge.objects_per_invocation
            if m <= 0:
                continue
            if enable_data_parallel:
                dp_count = int(round(m))
                if dp_count > best.replicas:
                    best = ReplicaSuggestion(gid, dp_count, "data-parallel", raw=m)
            if enable_rate_match and producer.cyclic:
                t_cycle = group_cycle_time(graph, profile, edge.src_group)
                t_process = group_processing_time(graph, profile, gid)
                if t_cycle > 0:
                    n = math.ceil(m * t_process / t_cycle)
                    if n > best.replicas:
                        best = ReplicaSuggestion(gid, n, "rate-match", raw=float(n))
        best.replicas = max(1, min(best.replicas, num_cores))
        suggestions[gid] = best
    return suggestions


def _topo_groups(graph: GroupGraph):
    """Groups in topological order of the condensation (ties by id)."""
    indegree = {g.group_id: 0 for g in graph.groups}
    for edge in graph.edges:
        if edge.src_group != edge.dst_group:
            indegree[edge.dst_group] += 1
    ready = sorted(g for g, deg in indegree.items() if deg == 0)
    order = []
    while ready:
        gid = ready.pop(0)
        order.append(graph.group(gid))
        for edge in sorted(graph.consumers_of(gid), key=lambda e: e.dst_group):
            if edge.src_group == edge.dst_group:
                continue
            indegree[edge.dst_group] -= 1
            if indegree[edge.dst_group] == 0:
                ready.append(edge.dst_group)
        ready.sort()
    # Any leftover groups (condensation is a DAG, so only on bugs) append.
    seen = {g.group_id for g in order}
    order.extend(g for g in graph.groups if g.group_id not in seen)
    return order


def replica_choice_sets(
    suggestions: Dict[int, ReplicaSuggestion],
    graph: GroupGraph,
    num_cores: int,
) -> Dict[int, List[int]]:
    """Candidate replica counts per group for the mapping search.

    The suggested count anchors each set; 1 (no replication) and the full
    machine width are included so the search space contains both the
    locality-maximizing and the parallelism-maximizing extremes.
    """
    choices: Dict[int, List[int]] = {}
    for group in graph.groups:
        suggestion = suggestions[group.group_id]
        if not group.replicable:
            choices[group.group_id] = [1]
            continue
        options = {1, suggestion.replicas}
        if suggestion.replicas > 1:
            options.add(max(1, suggestion.replicas // 2))
            options.add(min(num_cores, suggestion.replicas * 2))
        options.add(min(num_cores, max(1, num_cores - 1)))
        choices[group.group_id] = sorted(
            c for c in options if 1 <= c <= num_cores
        )
    return choices
