"""Core groups: the unit of task placement (paper §4.3).

The compiler derives a task-level dependence graph from the CSTG: an edge
from task A to task B means A's execution hands objects to B — either by
*transitioning* a parameter object into a state B consumes, or by
*allocating* new objects in such a state. Tasks in the same strongly
connected component mutually feed each other and are kept together as one
**core group** (they will always be mapped onto the same core, and a group
is replicated as a unit).

Edges carry the profile statistics the parallelization rules need: the
expected number of objects flowing per producer invocation, the producer's
cycle time around its SCC (``t_cycle``), and the consumer's expected
processing time (``t_process``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from ..analysis.astate import guard_matches
from ..analysis.cstg import CSTG
from ..runtime.profiler import ProfileData
from ..sema.symbols import ProgramInfo
from .layout import common_tag_binding


@dataclass(frozen=True)
class TaskEdge:
    """Task-level dataflow edge."""

    src: str
    dst: str
    kind: str  # "transition" | "new"
    #: expected objects delivered to dst per src invocation
    objects_per_invocation: float = 0.0


@dataclass
class CoreGroup:
    """A set of tasks that must be co-located."""

    group_id: int
    tasks: FrozenSet[str]
    #: False when the group contains a task that cannot be instantiated on
    #: several cores (multi-parameter without a common tag guard, §4.3.4)
    replicable: bool = True
    #: True when the group's tasks form a cycle (SCC of size > 1 or a task
    #: with a self-edge) — the producer shape the rate-matching rule targets
    cyclic: bool = False

    def label(self) -> str:
        return "{" + ",".join(sorted(self.tasks)) + "}"


@dataclass
class GroupEdge:
    src_group: int
    dst_group: int
    objects_per_invocation: float
    kind: str


@dataclass
class GroupGraph:
    """Condensation of the task dependence graph into core groups."""

    groups: List[CoreGroup] = field(default_factory=list)
    edges: List[GroupEdge] = field(default_factory=list)
    group_of_task: Dict[str, int] = field(default_factory=dict)

    def group(self, group_id: int) -> CoreGroup:
        return self.groups[group_id]

    def producers_of(self, group_id: int) -> List[GroupEdge]:
        return [e for e in self.edges if e.dst_group == group_id]

    def consumers_of(self, group_id: int) -> List[GroupEdge]:
        return [e for e in self.edges if e.src_group == group_id]

    def roots(self) -> List[int]:
        have_producers = {e.dst_group for e in self.edges}
        return [g.group_id for g in self.groups if g.group_id not in have_producers]

    def format(self) -> str:
        lines = ["GroupGraph:"]
        for group in self.groups:
            marker = "" if group.replicable else " (pinned)"
            lines.append(f"  G{group.group_id}: {group.label()}{marker}")
        for edge in self.edges:
            lines.append(
                f"    G{edge.src_group} --{edge.kind}:{edge.objects_per_invocation:.2f}--> "
                f"G{edge.dst_group}"
            )
        return "\n".join(lines)


def task_is_replicable(info: ProgramInfo, task: str) -> bool:
    task_info = info.task_info(task)
    if len(task_info.decl.params) <= 1:
        return True
    return common_tag_binding(task_info.decl) is not None


def build_task_edges(
    info: ProgramInfo, cstg: CSTG, profile: Optional[ProfileData] = None
) -> List[TaskEdge]:
    """Derives task-level dataflow edges from the CSTG."""
    edges: Dict[Tuple[str, str, str], float] = {}

    def consumers_of_node(key) -> Set[str]:
        node = cstg.nodes[key]
        out: Set[str] = set()
        for task_name, task_info in info.tasks.items():
            for param in task_info.decl.params:
                if param.param_type.name != node.class_name:
                    continue
                if guard_matches(param, node.state):
                    out.add(task_name)
        return out

    for edge in cstg.transitions:
        weight = edge.probability if profile is not None else 1.0
        for consumer in consumers_of_node(edge.dst):
            key = (edge.task, consumer, "transition")
            edges[key] = edges.get(key, 0.0) + weight
    for new_edge in cstg.new_edges:
        if profile is not None:
            prob = profile.exit_probability(new_edge.task, new_edge.exit_id)
            weight = new_edge.avg_count * prob
        else:
            weight = 1.0
        for consumer in consumers_of_node(new_edge.dst):
            key = (new_edge.task, consumer, "new")
            edges[key] = edges.get(key, 0.0) + weight

    return [
        TaskEdge(src=s, dst=d, kind=k, objects_per_invocation=w)
        for (s, d, k), w in sorted(edges.items())
    ]


def _tarjan_sccs(nodes: List[str], adjacency: Dict[str, Set[str]]) -> List[List[str]]:
    index: Dict[str, int] = {}
    lowlink: Dict[str, int] = {}
    on_stack: Set[str] = set()
    stack: List[str] = []
    sccs: List[List[str]] = []
    counter = [0]

    def strongconnect(node: str) -> None:
        index[node] = lowlink[node] = counter[0]
        counter[0] += 1
        stack.append(node)
        on_stack.add(node)
        for succ in sorted(adjacency.get(node, ())):
            if succ not in index:
                strongconnect(succ)
                lowlink[node] = min(lowlink[node], lowlink[succ])
            elif succ in on_stack:
                lowlink[node] = min(lowlink[node], index[succ])
        if lowlink[node] == index[node]:
            component = []
            while True:
                member = stack.pop()
                on_stack.discard(member)
                component.append(member)
                if member == node:
                    break
            sccs.append(sorted(component))

    for node in sorted(nodes):
        if node not in index:
            strongconnect(node)
    return sccs


def build_group_graph(
    info: ProgramInfo,
    cstg: CSTG,
    profile: Optional[ProfileData] = None,
    granularity: str = "group",
) -> GroupGraph:
    """Builds the core-group graph: SCC condensation of the task graph
    followed by the data-locality merge.

    ``granularity="task"`` skips both merges and yields one group per task —
    the finest placement space, used by the Figure 10 exhaustive candidate
    enumeration (where every assignment of individual tasks to core pools is
    a distinct candidate implementation).
    """
    tasks = sorted(info.tasks)
    task_edges = build_task_edges(info, cstg, profile)
    if granularity == "task":
        return _task_granularity_graph(info, tasks, task_edges)
    adjacency: Dict[str, Set[str]] = {}
    for edge in task_edges:
        if edge.src != edge.dst:
            adjacency.setdefault(edge.src, set()).add(edge.dst)
        else:
            # self-loop: still an SCC membership signal handled by tarjan
            adjacency.setdefault(edge.src, set()).add(edge.dst)

    self_edges = {e.src for e in task_edges if e.src == e.dst}
    sccs = _tarjan_sccs(tasks, adjacency)

    # Data locality rule (§4.3.3): tasks linked by *transition* edges keep
    # processing the same object, so their SCCs merge into one core group —
    # the per-object pipeline stays on one core. New-object edges are the
    # fan-out points and keep groups separate.
    scc_of_task = {}
    for index, component in enumerate(sccs):
        for task in component:
            scc_of_task[task] = index
    parent = list(range(len(sccs)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for edge in task_edges:
        if edge.kind == "transition" and edge.objects_per_invocation > 0:
            a, b = find(scc_of_task[edge.src]), find(scc_of_task[edge.dst])
            if a != b:
                parent[max(a, b)] = min(a, b)

    merged_components: Dict[int, List[str]] = {}
    for index, component in enumerate(sccs):
        merged_components.setdefault(find(index), []).extend(component)

    graph = GroupGraph()
    for root in sorted(merged_components):
        component = sorted(merged_components[root])
        group_id = len(graph.groups)
        replicable = any(task_is_replicable(info, t) for t in component)
        cyclic = any(
            scc_len > 1
            for scc_len in (
                len(sccs[i]) for i in range(len(sccs)) if find(i) == root
            )
        ) or any(task in self_edges for task in component)
        graph.groups.append(
            CoreGroup(
                group_id=group_id,
                tasks=frozenset(component),
                replicable=replicable,
                cyclic=cyclic,
            )
        )
        for task in component:
            graph.group_of_task[task] = group_id

    merged: Dict[Tuple[int, int, str], float] = {}
    for edge in task_edges:
        src_group = graph.group_of_task[edge.src]
        dst_group = graph.group_of_task[edge.dst]
        if src_group == dst_group:
            continue
        key = (src_group, dst_group, edge.kind)
        merged[key] = merged.get(key, 0.0) + edge.objects_per_invocation
    graph.edges = [
        GroupEdge(src_group=s, dst_group=d, kind=k, objects_per_invocation=w)
        for (s, d, k), w in sorted(merged.items())
    ]
    return graph


def _task_granularity_graph(
    info: ProgramInfo, tasks: List[str], task_edges: List[TaskEdge]
) -> GroupGraph:
    """One core group per task (see build_group_graph granularity='task')."""
    self_edges = {e.src for e in task_edges if e.src == e.dst}
    graph = GroupGraph()
    for task in tasks:
        group_id = len(graph.groups)
        graph.groups.append(
            CoreGroup(
                group_id=group_id,
                tasks=frozenset([task]),
                replicable=task_is_replicable(info, task),
                cyclic=task in self_edges,
            )
        )
        graph.group_of_task[task] = group_id
    merged: Dict[Tuple[int, int, str], float] = {}
    for edge in task_edges:
        src_group = graph.group_of_task[edge.src]
        dst_group = graph.group_of_task[edge.dst]
        if src_group == dst_group:
            continue
        key = (src_group, dst_group, edge.kind)
        merged[key] = merged.get(key, 0.0) + edge.objects_per_invocation
    graph.edges = [
        GroupEdge(src_group=s, dst_group=d, kind=k, objects_per_invocation=w)
        for (s, d, k), w in sorted(merged.items())
    ]
    return graph
