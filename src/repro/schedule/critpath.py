"""Critical path analysis over simulated execution traces (paper §4.5.1).

The trace of a scheduling simulation is a DAG: task-invocation events linked
by *data* edges (a producer's output object travels to a consumer, weighted
by transfer latency) and *resource* edges (an invocation waited for its core
to free up). The critical path is the longest chain explaining the final
finish time; it accounts for both data dependencies and scheduling
(resource) constraints.

For each event on the path the analysis computes when its data dependencies
resolved; events that start later than that were delayed by resource
conflicts and are the migration candidates §4.5.2 exploits. *Key* events
produce data the next critical event consumes — moving a non-key event off
a core that delays a key event is the second kind of move.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from .layout import Layout
from .simulator import SimResult, TraceEvent


@dataclass
class PathStep:
    """One event on the critical path."""

    event: TraceEvent
    #: what bound this event's start: "data" (waited for an input transfer),
    #: "resource" (waited for the core), or "start" (first event)
    bound: str
    #: resource-conflict delay: start - data_ready when positive
    delay: int

    @property
    def is_delayed(self) -> bool:
        return self.delay > 0


@dataclass
class CriticalPath:
    steps: List[PathStep]
    total: int  # finish time of the last event

    def events(self) -> List[TraceEvent]:
        return [step.event for step in self.steps]

    def length(self) -> int:
        return len(self.steps)

    def key_event_ids(self) -> Set[int]:
        """Events whose produced data the *next* critical event consumes."""
        keys: Set[int] = set()
        for current, nxt in zip(self.steps, self.steps[1:]):
            producer_ids = {p for p, _ in nxt.event.inputs if p is not None}
            if current.event.event_id in producer_ids:
                keys.add(current.event.event_id)
        return keys

    def format(self) -> str:
        lines = [f"critical path ({self.total} cycles):"]
        keys = self.key_event_ids()
        for step in self.steps:
            event = step.event
            marker = "*" if event.event_id in keys else " "
            lines.append(
                f"  {marker} [{event.start:>8}-{event.end:>8}] core {event.core:>3} "
                f"{event.task} (bound={step.bound}, delay={step.delay})"
            )
        return "\n".join(lines)


def compute_critical_path(result: SimResult) -> CriticalPath:
    """Backtracks from the last-finishing event through binding constraints."""
    if not result.trace:
        return CriticalPath(steps=[], total=result.total_cycles)
    events_by_id: Dict[int, TraceEvent] = {
        e.event_id: e for e in result.trace
    }
    prev_on_core: Dict[int, Optional[TraceEvent]] = {}
    by_core: Dict[int, List[TraceEvent]] = {}
    for event in result.trace:
        by_core.setdefault(event.core, []).append(event)
    for core_events in by_core.values():
        core_events.sort(key=lambda e: (e.start, e.event_id))
        previous = None
        for event in core_events:
            prev_on_core[event.event_id] = previous
            previous = event

    last = max(result.trace, key=lambda e: (e.end, e.event_id))
    steps: List[PathStep] = []
    current: Optional[TraceEvent] = last
    seen: Set[int] = set()
    while current is not None and current.event_id not in seen:
        seen.add(current.event_id)
        delay = max(0, current.start - current.data_ready)
        predecessor: Optional[TraceEvent] = None
        bound = "start"
        previous = prev_on_core.get(current.event_id)
        if previous is not None and previous.end >= current.start - 0:
            # The core was occupied right up to our start: resource-bound.
            if current.start == previous.end and delay > 0:
                predecessor = previous
                bound = "resource"
        if predecessor is None:
            # Data-bound: find the input whose arrival defined data_ready.
            best: Optional[TraceEvent] = None
            for producer_id, _latency in current.inputs:
                if producer_id is None:
                    continue
                producer = events_by_id[producer_id]
                if best is None or producer.end > best.end:
                    best = producer
            if best is not None:
                predecessor = best
                bound = "data"
        steps.append(PathStep(event=current, bound=bound, delay=delay))
        current = predecessor
    steps.reverse()
    if steps:
        steps[0] = PathStep(event=steps[0].event, bound="start", delay=steps[0].delay)
    return CriticalPath(steps=steps, total=last.end)


@dataclass(frozen=True)
class Move:
    """A layout edit suggested by the critical path analysis."""

    kind: str  # "migrate" | "replicate"
    task: str
    from_core: int
    to_core: int
    reason: str


def _core_busy_intervals(
    result: SimResult,
) -> Dict[int, List[Tuple[int, int]]]:
    intervals: Dict[int, List[Tuple[int, int]]] = {}
    for event in result.trace:
        intervals.setdefault(event.core, []).append((event.start, event.end))
    for core in intervals:
        intervals[core].sort()
    return intervals


def spare_cores_during(
    result: SimResult, layout: Layout, start: int, end: int
) -> List[int]:
    """Cores with no simulated activity overlapping [start, end)."""
    intervals = _core_busy_intervals(result)
    spare: List[int] = []
    for core in range(layout.num_cores):
        overlapping = any(
            s < end and start < e for s, e in intervals.get(core, ())
        )
        if not overlapping:
            spare.append(core)
    return spare


def suggest_moves(
    result: SimResult,
    layout: Layout,
    path: Optional[CriticalPath] = None,
    max_moves: int = 8,
) -> List[Move]:
    """Derives migration moves from the critical path (paper §4.5.2).

    Resource-delayed critical events migrate to cores that were spare in
    their delay window; when no core is spare, non-key critical events that
    delay key events are pushed elsewhere (to the least-loaded cores).
    """
    if path is None:
        path = compute_critical_path(result)
    moves: List[Move] = []
    seen: Set[Tuple[str, int, int]] = set()
    keys = path.key_event_ids()

    def add(kind: str, task: str, from_core: int, to_core: int, reason: str):
        if from_core == to_core:
            return
        signature = (task, from_core, to_core)
        if signature in seen:
            return
        seen.add(signature)
        moves.append(Move(kind, task, from_core, to_core, reason))

    # 1. Resource-delayed events -> spare cores during the delay window.
    delayed = sorted(
        (s for s in path.steps if s.is_delayed),
        key=lambda s: -s.delay,
    )
    for step in delayed:
        event = step.event
        window_start = max(0, event.data_ready)
        spare = spare_cores_during(result, layout, window_start, event.start)
        for core in spare[:2]:
            add(
                "migrate",
                event.task,
                event.core,
                core,
                f"delayed {step.delay} cycles waiting for core {event.core}",
            )
        if len(moves) >= max_moves:
            return moves[:max_moves]

    # 2. Non-key events that precede key events on the same core.
    least_loaded = sorted(
        range(layout.num_cores),
        key=lambda c: sum(
            e.duration for e in result.trace if e.core == c
        ),
    )
    for current, nxt in zip(path.steps, path.steps[1:]):
        if (
            nxt.event.event_id in keys
            and current.event.event_id not in keys
            and current.event.core == nxt.event.core
        ):
            for core in least_loaded[:2]:
                add(
                    "migrate",
                    current.event.task,
                    current.event.core,
                    core,
                    "non-key task delaying a key task",
                )
        if len(moves) >= max_moves:
            break
    return moves[:max_moves]
