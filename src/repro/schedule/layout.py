"""Candidate layouts: the mapping of task instantiations to cores.

A layout is the unit the synthesis pipeline searches over (paper §4.3.4):
it specifies which tasks run on which cores (a task may be instantiated on
several cores — the data-parallelization and rate-matching rules create
replicas) and, implicitly, the routing tables — for each abstract object
state produced on a core, where to send the object. Multiple destinations
for the same state are served round-robin; multi-parameter tasks with a
common tag guard hash the tag to pick the instance, and other multi-
parameter tasks get exactly one instantiation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from ..lang import ast
from ..lang.errors import ScheduleError
from ..analysis.astate import AState, guard_matches
from ..sema.symbols import ProgramInfo


def core_speed(speeds: Optional[Mapping[int, float]], core: int) -> float:
    """Relative speed of a core (1.0 = baseline; 2.0 executes a task in half
    the cycles). Supports the paper's §4.6 heterogeneous-cores extension —
    both the machine and the scheduling simulator scale task durations by
    this factor, so synthesis naturally steers work toward fast cores."""
    if not speeds:
        return 1.0
    return max(1e-3, float(speeds.get(core, 1.0)))


def scale_duration(cycles: int, speed: float) -> int:
    """Deterministically scales a cycle count by a core's speed."""
    if speed == 1.0:
        return cycles
    return max(1, int(round(cycles / speed)))


def mesh_coords(core: int, mesh_width: int) -> Tuple[int, int]:
    return core % mesh_width, core // mesh_width


def mesh_hops(a: int, b: int, mesh_width: int) -> int:
    ax, ay = mesh_coords(a, mesh_width)
    bx, by = mesh_coords(b, mesh_width)
    return abs(ax - bx) + abs(ay - by)


def torus_hops(a: int, b: int, mesh_width: int, num_cores: int) -> int:
    """2-D torus: each dimension wraps around."""
    height = max(1, (num_cores + mesh_width - 1) // mesh_width)
    ax, ay = mesh_coords(a, mesh_width)
    bx, by = mesh_coords(b, mesh_width)
    dx = abs(ax - bx)
    dy = abs(ay - by)
    return min(dx, mesh_width - dx) + min(dy, height - dy)


def ring_hops(a: int, b: int, num_cores: int) -> int:
    """1-D ring interconnect."""
    d = abs(a - b)
    return min(d, num_cores - d)


#: Supported interconnects (the paper's §4.6 "new network topologies"
#: extension: the simulation models the topology, and synthesis follows).
TOPOLOGIES = ("mesh", "torus", "ring")


def common_tag_binding(task_decl: ast.TaskDecl) -> Optional[str]:
    """The tag binding name shared by *all* parameters, if any.

    Such a task can be replicated across cores: the runtime hashes the tag
    instance to pick the core, so parameter objects carrying the same tag
    meet at the same instance (paper §4.3.4).
    """
    if not task_decl.params:
        return None
    shared: Optional[set] = None
    for param in task_decl.params:
        bindings = {g.binding for g in param.tag_guards}
        shared = bindings if shared is None else (shared & bindings)
        if not shared:
            return None
    return sorted(shared)[0]


@dataclass(frozen=True)
class Layout:
    """An immutable mapping of task names to the cores hosting them."""

    num_cores: int
    mesh_width: int
    instances: Tuple[Tuple[str, Tuple[int, ...]], ...]
    #: interconnect shape; see TOPOLOGIES
    topology: str = "mesh"

    # -- constructors --------------------------------------------------------

    @staticmethod
    def make(
        num_cores: int,
        mapping: Mapping[str, Iterable[int]],
        mesh_width: Optional[int] = None,
        topology: str = "mesh",
    ) -> "Layout":
        if mesh_width is None:
            mesh_width = _default_mesh_width(num_cores)
        if topology not in TOPOLOGIES:
            raise ScheduleError(f"unknown topology '{topology}'")
        items = tuple(
            (task, tuple(sorted(set(cores))))
            for task, cores in sorted(mapping.items())
        )
        return Layout(
            num_cores=num_cores,
            mesh_width=mesh_width,
            instances=items,
            topology=topology,
        )

    # -- interconnect ---------------------------------------------------------

    def hops(self, a: int, b: int) -> int:
        """Network distance between two cores under this layout's topology."""
        if self.topology == "torus":
            return torus_hops(a, b, self.mesh_width, self.num_cores)
        if self.topology == "ring":
            return ring_hops(a, b, self.num_cores)
        return mesh_hops(a, b, self.mesh_width)

    @staticmethod
    def single_core(task_names: Iterable[str]) -> "Layout":
        return Layout.make(1, {task: [0] for task in task_names})

    # -- accessors ------------------------------------------------------------

    def cores_of(self, task: str) -> Tuple[int, ...]:
        for name, cores in self.instances:
            if name == task:
                return cores
        return ()

    def tasks(self) -> List[str]:
        return [name for name, _ in self.instances]

    def tasks_on_core(self, core: int) -> List[str]:
        return [name for name, cores in self.instances if core in cores]

    def cores_used(self) -> Tuple[int, ...]:
        used = set()
        for _, cores in self.instances:
            used.update(cores)
        return tuple(sorted(used))

    def as_dict(self) -> Dict[str, Tuple[int, ...]]:
        return {name: cores for name, cores in self.instances}

    def total_instances(self) -> int:
        return sum(len(cores) for _, cores in self.instances)

    # -- isomorphism ------------------------------------------------------------

    def canonical_key(self) -> Tuple:
        """A key identical exactly for layouts that differ only by a
        renaming of cores (used to generate *non-isomorphic* mappings,
        §4.3.4). Cores are interchangeable, so a layout is characterized —
        up to renaming — by the multiset of per-core task sets."""
        per_core: Dict[int, List[str]] = {}
        for task, cores in self.instances:
            for core in cores:
                per_core.setdefault(core, []).append(task)
        return tuple(sorted(tuple(sorted(tasks)) for tasks in per_core.values()))

    # -- validation ----------------------------------------------------------------

    def validate(self, info: ProgramInfo) -> None:
        """Raises :class:`ScheduleError` if the layout is malformed."""
        mapped = set(self.tasks())
        declared = set(info.tasks)
        if mapped != declared:
            missing = declared - mapped
            extra = mapped - declared
            raise ScheduleError(
                f"layout task set mismatch (missing={sorted(missing)}, "
                f"unknown={sorted(extra)})"
            )
        for task, cores in self.instances:
            if not cores:
                raise ScheduleError(f"task '{task}' has no instances")
            for core in cores:
                if not (0 <= core < self.num_cores):
                    raise ScheduleError(
                        f"task '{task}' mapped to invalid core {core}"
                    )
            task_info = info.task_info(task)
            if len(cores) > 1 and len(task_info.decl.params) > 1:
                if common_tag_binding(task_info.decl) is None:
                    raise ScheduleError(
                        f"multi-parameter task '{task}' without a common tag "
                        "guard cannot be replicated"
                    )

    def describe(self) -> str:
        lines = [f"Layout on {self.num_cores} cores "
                 f"(mesh width {self.mesh_width}):"]
        for core in self.cores_used():
            tasks = ", ".join(self.tasks_on_core(core))
            lines.append(f"  core {core:3d}: {tasks}")
        return "\n".join(lines)


def _default_mesh_width(num_cores: int) -> int:
    width = 1
    while width * width < num_cores:
        width += 1
    return width


class Router:
    """Maps an object's (class, abstract state) to consuming task instances.

    Shared by the real runtime (:mod:`repro.runtime.machine`) and the
    high-level scheduling simulator (:mod:`repro.schedule.simulator`) so
    both see identical routing decisions.
    """

    def __init__(self, info: ProgramInfo, layout: Layout):
        self.info = info
        self.layout = layout
        self._match_cache: Dict[Tuple[str, AState], List[Tuple[str, int]]] = {}
        #: task -> cores, so per-object routing skips the linear scan in
        #: Layout.cores_of
        self._cores: Dict[str, Tuple[int, ...]] = dict(layout.instances)

    def consumers(self, class_name: str, state: AState) -> List[Tuple[str, int]]:
        """Returns (task, param_index) pairs whose guards the state satisfies."""
        key = (class_name, state)
        cached = self._match_cache.get(key)
        if cached is not None:
            return cached
        matches: List[Tuple[str, int]] = []
        for task_name in sorted(self.info.tasks):
            task_info = self.info.tasks[task_name]
            for param_index, param in enumerate(task_info.decl.params):
                if param.param_type.name != class_name:
                    continue
                if guard_matches(param, state):
                    matches.append((task_name, param_index))
        self._match_cache[key] = matches
        return matches

    def instance_cores(self, task: str) -> Tuple[int, ...]:
        return self.layout.cores_of(task)

    def pick_core(
        self,
        task: str,
        rr_state: Dict[Tuple[int, str], int],
        sender_core: int,
        tag_hash: Optional[int] = None,
    ) -> int:
        """Chooses the destination instance of ``task`` for one object.

        Tag-constrained tasks hash the tag instance so related objects meet;
        otherwise destinations rotate round-robin per sending core (§4.3.4).
        """
        cores = self._cores.get(task, ())
        if len(cores) == 1:
            return cores[0]
        if tag_hash is not None:
            return cores[tag_hash % len(cores)]
        key = (sender_core, task)
        index = rr_state.get(key)
        if index is None:
            # Stagger each sender's rotation so its first send goes to its
            # own instance when it hosts one (the data-locality rule: an
            # object continuing its pipeline stays put), and different
            # senders fan out to different instances instead of all hitting
            # instance 0.
            if sender_core in cores:
                index = cores.index(sender_core)
            else:
                index = sender_core % len(cores)
        rr_state[key] = index + 1
        return cores[index % len(cores)]
