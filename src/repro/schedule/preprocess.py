"""CSTG preprocessing: the tree-of-SCCs transformation (paper §4.3.2).

Core groups with more than one incident new-object edge receive work from
several disjoint sources; the paper duplicates such SCCs until every core
group (except the startup group) has exactly one incident new-object edge,
turning the graph into a tree. With round-robin routing, duplicating a
group is equivalent to granting it one replica per work source, so this
module computes the duplication factors that seed the mapping search and
the resulting tree structure (used by tests and visualization).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from .coregroup import GroupEdge, GroupGraph


@dataclass
class TreeNode:
    """One duplicated instance of a core group in the SCC tree."""

    node_id: int
    group_id: int
    #: the new-object edge feeding this instance (None for roots)
    work_source: Optional[GroupEdge] = None
    children: List[int] = field(default_factory=list)


@dataclass
class GroupTree:
    graph: GroupGraph
    nodes: List[TreeNode] = field(default_factory=list)
    roots: List[int] = field(default_factory=list)

    def duplication_factor(self, group_id: int) -> int:
        return sum(1 for node in self.nodes if node.group_id == group_id)

    def format(self) -> str:
        lines = ["GroupTree:"]

        def visit(node_id: int, depth: int) -> None:
            node = self.nodes[node_id]
            label = self.graph.group(node.group_id).label()
            lines.append("  " * (depth + 1) + f"N{node.node_id} {label}")
            for child in node.children:
                visit(child, depth + 1)

        for root in self.roots:
            visit(root, 0)
        return "\n".join(lines)


def build_group_tree(graph: GroupGraph) -> GroupTree:
    """Duplicates multi-source groups into a tree of SCC instances.

    Non-replicable groups cannot be duplicated; they keep a single instance
    that merges all their work sources (the runtime routes every source to
    the one instantiation, as §4.3.4 requires).
    """
    tree = GroupTree(graph=graph)
    instances: Dict[int, List[int]] = {}

    def new_node(group_id: int, source: Optional[GroupEdge]) -> int:
        node = TreeNode(
            node_id=len(tree.nodes), group_id=group_id, work_source=source
        )
        tree.nodes.append(node)
        instances.setdefault(group_id, []).append(node.node_id)
        return node.node_id

    for root_group in graph.roots():
        tree.roots.append(new_node(root_group, None))

    # Process groups in topological order of the condensation.
    order = _topo_order(graph)
    for group_id in order:
        new_edges = [
            e
            for e in graph.producers_of(group_id)
            if e.kind == "new" and e.src_group != group_id
        ]
        if not new_edges:
            continue
        group = graph.group(group_id)
        if group.replicable and len(new_edges) > 1:
            sources = new_edges
        else:
            sources = new_edges[:1]
        for edge in sources:
            node_id = new_node(group_id, edge)
            for producer_node in instances.get(edge.src_group, []):
                tree.nodes[producer_node].children.append(node_id)
    return tree


def duplication_factors(graph: GroupGraph) -> Dict[int, int]:
    """Per-group duplication factor implied by the tree transformation."""
    tree = build_group_tree(graph)
    return {
        group.group_id: max(1, tree.duplication_factor(group.group_id))
        for group in graph.groups
    }


def _topo_order(graph: GroupGraph) -> List[int]:
    indegree: Dict[int, int] = {g.group_id: 0 for g in graph.groups}
    for edge in graph.edges:
        if edge.src_group != edge.dst_group:
            indegree[edge.dst_group] += 1
    ready = sorted(g for g, deg in indegree.items() if deg == 0)
    order: List[int] = []
    while ready:
        group_id = ready.pop(0)
        order.append(group_id)
        for edge in sorted(
            graph.consumers_of(group_id), key=lambda e: e.dst_group
        ):
            if edge.src_group == edge.dst_group:
                continue
            indegree[edge.dst_group] -= 1
            if indegree[edge.dst_group] == 0:
                ready.append(edge.dst_group)
        ready.sort()
    return order
